//! The `liar` command-line tool: optimize IR expressions from the shell.
//!
//! ```text
//! # Optimize an expression for a target and show the per-step solutions
//! # (--threads N parallelizes e-matching; results are bit-identical):
//! liar optimize --target blas --threads 4 '(ifold #64 0 (lam (lam (+ (get xs %1) %0))))'
//!
//! # Optimize one of the paper's kernels by name:
//! liar kernel --target pytorch gemv
//!
//! # Emit C for the best solution of a kernel:
//! liar emit-c gemv
//!
//! # List the kernels of table I:
//! liar kernels
//! ```

use std::process::ExitCode;

use liar::codegen::{emit_kernel, CInput};
use liar::core::{Liar, Target};
use liar::ir::Expr;
use liar::kernels::Kernel;

fn parse_target(args: &[String]) -> Target {
    match args
        .iter()
        .position(|a| a == "--target")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("blas") | None => Target::Blas,
        Some("pytorch") | Some("torch") => Target::Torch,
        Some("pure-c") | Some("purec") | Some("c") => Target::PureC,
        Some(other) => {
            eprintln!("unknown target {other} (expected blas | pytorch | pure-c)");
            std::process::exit(2);
        }
    }
}

fn parse_steps(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--steps")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

fn parse_threads(args: &[String]) -> usize {
    match args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
    {
        None => 1,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("--threads expects a number, got {s}");
            std::process::exit(2);
        }),
    }
}

fn report(expr: &Expr, target: Target, steps: usize, threads: usize) {
    let pipeline = Liar::new(target).with_iter_limit(steps).with_threads(threads);
    let report = pipeline.optimize(expr);
    println!("target: {target}");
    for step in &report.steps {
        println!(
            "step {:>2}: {:>7} e-nodes  cost {:>12.1}  {}",
            step.step,
            step.n_nodes,
            step.cost,
            step.solution_summary()
        );
    }
    println!("stopped: {}", report.stop_reason);
    println!("\nbest expression:\n{}", report.best().best);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("optimize") => {
            let Some(expr_text) = args.iter().skip(1).find(|a| !a.starts_with("--")
                && args.iter().position(|x| x == *a).is_none_or(|i| {
                    !matches!(
                        args.get(i.wrapping_sub(1)).map(String::as_str),
                        Some("--target" | "--steps" | "--threads")
                    )
                }))
            else {
                eprintln!(
                    "usage: liar optimize [--target blas|pytorch|pure-c] [--steps N] [--threads N] '<expr>'"
                );
                return ExitCode::from(2);
            };
            let expr: Expr = match expr_text.parse() {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("parse error: {e}");
                    return ExitCode::from(2);
                }
            };
            report(&expr, parse_target(&args), parse_steps(&args), parse_threads(&args));
            ExitCode::SUCCESS
        }
        Some("kernel") => {
            let Some(kernel) = args
                .iter()
                .skip(1)
                .filter(|a| !a.starts_with("--"))
                .find_map(|n| Kernel::from_name(n))
            else {
                eprintln!("usage: liar kernel [--target …] [--steps N] [--threads N] <kernel-name>");
                return ExitCode::from(2);
            };
            let expr = kernel.expr(kernel.search_size());
            println!("kernel {}: {}\n", kernel.name(), kernel.description());
            report(&expr, parse_target(&args), parse_steps(&args), parse_threads(&args));
            ExitCode::SUCCESS
        }
        Some("emit-c") => {
            let Some(kernel) = args
                .iter()
                .skip(1)
                .filter(|a| !a.starts_with("--"))
                .find_map(|n| Kernel::from_name(n))
            else {
                eprintln!("usage: liar emit-c [--steps N] <kernel-name>");
                return ExitCode::from(2);
            };
            let n = kernel.search_size();
            let pipeline = Liar::new(Target::Blas).with_iter_limit(parse_steps(&args));
            let best = pipeline.optimize(&kernel.expr(n)).best().best.clone();
            let inputs: Vec<CInput> = kernel
                .inputs(n, 0)
                .iter()
                .map(|(name, value)| {
                    let t = value.to_tensor().expect("tensor input");
                    if t.shape().is_empty() {
                        CInput::scalar(name)
                    } else {
                        CInput::tensor(name, t.shape().to_vec())
                    }
                })
                .collect();
            match emit_kernel(kernel.name().replace('-', "_").as_str(), &best, &inputs) {
                Ok(c) => {
                    println!("{c}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("codegen failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("kernels") => {
            for k in Kernel::ALL {
                println!("{:<10} {:<10} {}", k.name(), k.suite().to_string(), k.description());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: liar <optimize|kernel|emit-c|kernels> [--target blas|pytorch|pure-c] [--steps N] [--threads N]"
            );
            ExitCode::from(2)
        }
    }
}
