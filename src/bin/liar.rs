//! The `liar` command-line tool: optimize IR expressions from the shell,
//! or run the optimization service.
//!
//! ```text
//! # Optimize an expression for a target and show the per-step solutions
//! # (--threads N parallelizes e-matching; results are bit-identical):
//! liar optimize --target blas --threads 4 '(ifold #64 0 (lam (lam (+ (get xs %1) %0))))'
//!
//! # Saturate ONCE and extract for every target from the same e-graph:
//! liar optimize --all-targets '(ifold #64 0 (lam (lam (+ (get xs %1) %0))))'
//! liar kernel --targets blas,pytorch gemv
//!
//! # Emit C for the best solution of a kernel (or every target's variant):
//! liar emit-c gemv
//! liar emit-c --all-targets gemv
//!
//! # Prove a lifting: print the rewrite certificate and replay it
//! # (exit 1 if the proof fails to check):
//! liar explain gemv --target blas
//!
//! # Render the saturated e-graph (optionally with the proof path lit):
//! liar dot '(ifold #4 0 (lam (lam (+ (get xs %1) %0))))' --explain
//!
//! # Profile a kernel (self-time per phase and per rule), or export a
//! # Chrome trace-event JSON of any optimization run:
//! liar profile gemv
//! liar profile gemv --json                     # machine-readable tables
//! liar kernel gemv --trace gemv-trace.json     # open in chrome://tracing
//!
//! # Growth attribution: which rule built the e-graph? Prints the
//! # per-rule funnel (candidates → matches → applied → nodes created)
//! # and the e-graph's composition by operator:
//! liar inspect gemv
//! liar inspect gemv --json
//!
//! # Run the optimization daemon, and submit programs to it:
//! liar serve --addr 127.0.0.1:4004 --workers 2
//! liar submit --addr 127.0.0.1:4004 --kernel gemv
//! liar stats --addr 127.0.0.1:4004 --prometheus
//! liar stats --inspect                         # live tables + flight tail
//!
//! # Discover commands and flags:
//! liar help
//! liar help submit
//! ```
//!
//! Exit codes: `0` success, `1` runtime failure (e.g. the daemon is not
//! reachable), `2` usage or input error.

use std::process::ExitCode;
use std::sync::Arc;

use liar::codegen::{emit_kernel, emit_kernel_variants, CInput};
use liar::core::pipeline::count_lib_calls;
use liar::core::rules::rules_for;
use liar::core::{InspectReport, Liar, MachineProfile, RuleConfig, Target, TargetCost};
use liar::egraph::{DagExtractor, Dot, ExactExtractor, Extractor};
use liar::ir::Expr;
use liar::kernels::Kernel;
use liar::serve::json::Json;
use liar::serve::protocol::target_from_wire;
use liar::serve::{Client, OptimizeRequest, Server, ServerConfig, StatsResponse};
use liar::trace::{self_times, Recorder};

// ---------------------------------------------------------------------------
// The arg table: one declarative spec per command, one parser for all.

/// One `--flag` a command accepts.
struct FlagSpec {
    /// The flag, with leading dashes (e.g. `--steps`).
    name: &'static str,
    /// `Some(metavar)` when the flag takes a value, `None` for switches.
    metavar: Option<&'static str>,
    /// One-line help.
    help: &'static str,
}

/// One subcommand.
struct CommandSpec {
    name: &'static str,
    /// Positional-argument usage, e.g. `'<expr>'`.
    positional: &'static str,
    about: &'static str,
    flags: &'static [FlagSpec],
    run: fn(&Parsed) -> Result<ExitCode, String>,
}

/// Parsed arguments of one command invocation.
struct Parsed {
    values: Vec<(&'static str, String)>,
    switches: Vec<&'static str>,
    positionals: Vec<String>,
}

impl Parsed {
    fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.switches.contains(&name) || self.value(name).is_some()
    }

    fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{name} expects a number, got {v:?}")),
        }
    }
}

/// Parse `args` against a command's flag table. Unknown flags and
/// missing flag values are errors; `--` ends flag parsing.
fn parse_flags(spec: &CommandSpec, args: &[String]) -> Result<Parsed, String> {
    let mut parsed = Parsed {
        values: Vec::new(),
        switches: Vec::new(),
        positionals: Vec::new(),
    };
    let mut i = 0;
    let mut flags_done = false;
    while i < args.len() {
        let arg = &args[i];
        if flags_done || !arg.starts_with("--") {
            parsed.positionals.push(arg.clone());
            i += 1;
            continue;
        }
        if arg == "--" {
            flags_done = true;
            i += 1;
            continue;
        }
        let Some(flag) = spec.flags.iter().find(|f| f.name == arg) else {
            return Err(format!(
                "unknown flag {arg} for `liar {}` (see `liar help {}`)",
                spec.name, spec.name
            ));
        };
        match flag.metavar {
            None => parsed.switches.push(flag.name),
            Some(metavar) => {
                let value = args
                    .get(i + 1)
                    .ok_or(format!("{} expects a value <{metavar}>", flag.name))?;
                parsed.values.push((flag.name, value.clone()));
                i += 1;
            }
        }
        i += 1;
    }
    Ok(parsed)
}

// ---------------------------------------------------------------------------
// Shared flag groups and helpers.

const TARGET_FLAGS: [FlagSpec; 9] = [
    FlagSpec {
        name: "--verbose",
        metavar: None,
        help: "also print the top-10 most-applied rules (single-target mode)",
    },
    FlagSpec {
        name: "--trace",
        metavar: Some("FILE"),
        help: "record phase/rule spans; write Chrome trace-event JSON to FILE",
    },
    FlagSpec {
        name: "--target",
        metavar: Some("T"),
        help: "single target: blas | pytorch | pure-c (default blas)",
    },
    FlagSpec {
        name: "--targets",
        metavar: Some("A,B"),
        help: "comma-separated targets; saturate once, extract each",
    },
    FlagSpec {
        name: "--all-targets",
        metavar: None,
        help: "shorthand for --targets pure-c,blas,pytorch",
    },
    FlagSpec {
        name: "--steps",
        metavar: Some("N"),
        help: "saturation-step limit (default 8)",
    },
    FlagSpec {
        name: "--threads",
        metavar: Some("N"),
        help: "e-matching worker threads (results are bit-identical)",
    },
    FlagSpec {
        name: "--profile",
        metavar: Some("P,Q"),
        help: "machine profiles to extract under: default | gpu | simd",
    },
    FlagSpec {
        name: "--extractor",
        metavar: Some("E"),
        help: "extractor: tree | dag | exact (default: greedy tree+dag report)",
    },
];

fn parse_target_name(name: &str) -> Result<Target, String> {
    target_from_wire(name)
        .ok_or_else(|| format!("unknown target {name:?} (expected blas | pytorch | pure-c)"))
}

/// The multi-extraction target list (`--all-targets` / `--targets`), or
/// `None` in single-target mode.
fn multi_targets(p: &Parsed) -> Result<Option<Vec<Target>>, String> {
    if p.has("--all-targets") {
        return Ok(Some(Target::ALL.to_vec()));
    }
    let Some(list) = p.value("--targets") else {
        return Ok(None);
    };
    let mut targets: Vec<Target> = Vec::new();
    for name in list.split(',') {
        let t = parse_target_name(name)?;
        // Dedupe: a repeated target would extract twice and emit-c would
        // emit two identical function definitions.
        if !targets.contains(&t) {
            targets.push(t);
        }
    }
    Ok(Some(targets))
}

fn single_target(p: &Parsed) -> Result<Target, String> {
    p.value("--target").map_or(Ok(Target::Blas), parse_target_name)
}

/// The `--profile` list (default: the identity profile alone).
fn parse_profiles(p: &Parsed) -> Result<Vec<MachineProfile>, String> {
    let Some(list) = p.value("--profile") else {
        return Ok(vec![MachineProfile::default()]);
    };
    let mut profiles: Vec<MachineProfile> = Vec::new();
    for name in list.split(',') {
        let profile = MachineProfile::by_name(name).ok_or_else(|| {
            format!(
                "unknown machine profile {name:?} (expected one of {:?})",
                MachineProfile::ALL_NAMES
            )
        })?;
        if !profiles.contains(&profile) {
            profiles.push(profile);
        }
    }
    Ok(profiles)
}

/// Which extraction algorithm `--extractor` asked for, if any.
#[derive(Clone, Copy)]
enum ExtractorKind {
    Tree,
    Dag,
    Exact,
}

impl ExtractorKind {
    fn name(self) -> &'static str {
        match self {
            ExtractorKind::Tree => "tree",
            ExtractorKind::Dag => "dag",
            ExtractorKind::Exact => "exact",
        }
    }
}

fn parse_extractor(p: &Parsed) -> Result<Option<ExtractorKind>, String> {
    match p.value("--extractor") {
        None => Ok(None),
        Some("tree") => Ok(Some(ExtractorKind::Tree)),
        Some("dag") => Ok(Some(ExtractorKind::Dag)),
        Some("exact") => Ok(Some(ExtractorKind::Exact)),
        Some(other) => Err(format!(
            "unknown extractor {other:?} (expected tree | dag | exact)"
        )),
    }
}

fn usage_err(message: String) -> Result<ExitCode, String> {
    Err(message)
}

// ---------------------------------------------------------------------------
// optimize / kernel / emit-c / kernels

fn report(
    expr: &Expr,
    target: Target,
    steps: usize,
    threads: usize,
    verbose: bool,
    recorder: Option<&Arc<Recorder>>,
) {
    let mut pipeline = Liar::new(target).with_iter_limit(steps).with_threads(threads);
    if let Some(rec) = recorder {
        pipeline = pipeline.with_trace(Arc::clone(rec));
    }
    let report = pipeline.optimize(expr);
    println!("target: {target}");
    for step in &report.steps {
        println!(
            "step {:>2}: {:>7} e-nodes  cost {:>12.1}  {}",
            step.step,
            step.n_nodes,
            step.cost,
            step.solution_summary()
        );
    }
    println!("stopped: {}", report.stop_reason);
    if verbose {
        print_top_rules(&report, recorder.map(|r| r.as_ref()));
    }
    println!("\nbest expression:\n{}", report.best().best);
}

/// Sum per-rule self-time (µs) from a recorder's `search/<rule>` and
/// `apply/<rule>` spans. Per-rule *search* spans exist only under the
/// serial engine; apply spans are recorded either way.
fn rule_self_times(recorder: &Recorder) -> std::collections::BTreeMap<String, u64> {
    let events = recorder.events();
    let mut by_rule: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for row in self_times(&events) {
        if let Some(rule) = row
            .name
            .strip_prefix("search/")
            .or_else(|| row.name.strip_prefix("apply/"))
        {
            *by_rule.entry(rule.to_string()).or_insert(0) += row.self_us;
        }
    }
    by_rule
}

/// The `--verbose` provenance summary: per-rule application counts
/// aggregated over every saturation step, top ten by count. When a trace
/// recorder was attached, each row also shows the rule's self-time
/// (search + apply span time, excluding children).
fn print_top_rules(report: &liar::core::OptimizationReport, recorder: Option<&Recorder>) {
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for step in &report.steps {
        for (rule, n) in &step.applied {
            if *n > 0 {
                *counts.entry(rule.as_str()).or_insert(0) += n;
            }
        }
    }
    let mut ranked: Vec<_> = counts.into_iter().collect();
    // Count descending, name ascending for a stable order.
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let total: usize = ranked.iter().map(|(_, n)| n).sum();
    let times = recorder.map(rule_self_times);
    println!("\nrule applications ({total} total, top {}):", ranked.len().min(10));
    for (rule, n) in ranked.iter().take(10) {
        match &times {
            Some(map) => {
                let ms = *map.get(*rule).unwrap_or(&0) as f64 / 1000.0;
                println!("  {n:>7} × {rule:<40} {ms:>9.3} ms self");
            }
            None => println!("  {n:>7} × {rule}"),
        }
    }
}

/// Run the "saturate once, extract everywhere" pipeline and print its
/// report.
fn report_multi(
    expr: &Expr,
    targets: &[Target],
    steps: usize,
    threads: usize,
    profiles: Vec<MachineProfile>,
    recorder: Option<&Arc<Recorder>>,
) -> Result<(), String> {
    let mut pipeline = Liar::new(targets[0])
        .with_iter_limit(steps)
        .with_threads(threads)
        .with_profiles(profiles);
    if let Some(rec) = recorder {
        pipeline = pipeline.with_trace(Arc::clone(rec));
    }
    let report = pipeline
        .optimize_multi(expr, targets, &[1.0])
        .map_err(|e| e.to_string())?;
    let names: Vec<&str> = targets.iter().map(|t| t.name()).collect();
    println!("targets: {} (one shared saturation)", names.join(", "));
    for step in &report.steps {
        println!(
            "step {:>2}: {:>7} e-nodes {:>6} classes  step {:>9.3?}  search {:>9.3?}",
            step.step, step.n_nodes, step.n_classes, step.step_time, step.search_time,
        );
    }
    println!(
        "stopped: {} (saturation {:.3?}, extraction {:.3?})\n",
        report.stop_reason,
        report.saturation_time,
        report.total_extract_time(),
    );
    println!(
        "{:<8} {:<8} {:>12} {:>12} {:>8} {:>10}  solution",
        "target", "profile", "tree cost", "dag cost", "shared", "extract"
    );
    for s in &report.solutions {
        println!(
            "{:<8} {:<8} {:>12.1} {:>12.1} {:>7.1}% {:>10.3?}  {}",
            s.target.name(),
            s.profile,
            s.cost,
            s.dag_cost,
            100.0 * s.sharing_discount(),
            s.extract_time,
            s.solution_summary(),
        );
    }
    for s in &report.solutions {
        println!(
            "\nbest expression ({}, {}):\n{}",
            s.target.name(),
            s.profile,
            s.best
        );
    }
    Ok(())
}

/// Saturate once, then run one *chosen* extractor (`--extractor`) per
/// `target × profile` over the shared e-graph.
fn report_extract(
    expr: &Expr,
    targets: &[Target],
    steps: usize,
    threads: usize,
    profiles: &[MachineProfile],
    kind: ExtractorKind,
    recorder: Option<&Arc<Recorder>>,
) -> Result<(), String> {
    let mut pipeline = Liar::new(targets[0])
        .with_iter_limit(steps)
        .with_threads(threads);
    if let Some(rec) = recorder {
        pipeline = pipeline.with_trace(Arc::clone(rec));
    }
    let start = std::time::Instant::now();
    let (egraph, root) = pipeline.saturate_for_targets(expr, targets);
    let names: Vec<&str> = targets.iter().map(|t| t.name()).collect();
    println!(
        "targets: {} (one shared saturation: {} e-nodes, {} classes, {:.3?}; extractor: {})",
        names.join(", "),
        egraph.num_nodes(),
        egraph.num_classes(),
        start.elapsed(),
        kind.name(),
    );
    println!(
        "\n{:<8} {:<8} {:>12} {:>10}  {:<22} solution",
        "target", "profile", "cost", "extract", "detail"
    );
    let mut bests: Vec<(String, Expr)> = Vec::new();
    for &target in targets {
        for profile in profiles {
            let cost_fn = TargetCost::new(target).with_profile(*profile);
            let err = || {
                format!(
                    "no extractable solution for target {} under profile {} — every \
                     equivalent term costs infinity",
                    target.name(),
                    profile.name
                )
            };
            let t0 = std::time::Instant::now();
            let (cost, best, detail) = match kind {
                ExtractorKind::Tree => {
                    let ex = Extractor::new(&egraph, cost_fn);
                    let (cost, best) = ex.try_find_best(root).map_err(|_| err())?;
                    let stats = ex.stats();
                    (cost, best, format!("{} relaxations", stats.relaxations))
                }
                ExtractorKind::Dag => {
                    let ex = DagExtractor::new(&egraph, cost_fn);
                    let (cost, best) = ex.try_find_best(root).map_err(|_| err())?;
                    let selected = ex.selected_classes(root).unwrap_or(0);
                    (cost, best, format!("{selected} classes selected"))
                }
                ExtractorKind::Exact => {
                    let ex = ExactExtractor::new(&egraph, cost_fn);
                    let report = ex.solve(root).ok_or_else(err)?;
                    let detail = format!(
                        "{} ({} steps, {} classes)",
                        report.outcome, report.steps, report.reachable_classes
                    );
                    (report.cost, report.expr, detail)
                }
            };
            let elapsed = t0.elapsed();
            let calls = count_lib_calls(&best);
            let solution = if calls.is_empty() {
                "—".to_string()
            } else {
                calls
                    .iter()
                    .map(|(name, count)| format!("{count} × {name}"))
                    .collect::<Vec<_>>()
                    .join(" + ")
            };
            println!(
                "{:<8} {:<8} {:>12.1} {:>10.3?}  {:<22} {}",
                target.name(),
                profile.name,
                cost,
                elapsed,
                detail,
                solution,
            );
            bests.push((format!("{}, {}", target.name(), profile.name), best));
        }
    }
    for (label, best) in &bests {
        println!("\nbest expression ({label}):\n{best}");
    }
    Ok(())
}

fn run_optimize(p: &Parsed) -> Result<ExitCode, String> {
    let [expr_text] = p.positionals.as_slice() else {
        return usage_err("optimize expects exactly one '<expr>' argument".to_string());
    };
    let expr: Expr = expr_text
        .parse()
        .map_err(|e| format!("parse error: {e}"))?;
    let steps = p.usize_or("--steps", 8)?;
    let threads = p.usize_or("--threads", 1)?;
    run_optimization(p, &expr, steps, threads)?;
    Ok(ExitCode::SUCCESS)
}

/// Shared routing for `optimize` and `kernel`: the classic per-step
/// report in single-target mode, the multi-extraction report otherwise —
/// `--profile` and `--extractor` imply the multi machinery even for a
/// single target.
fn run_optimization(p: &Parsed, expr: &Expr, steps: usize, threads: usize) -> Result<(), String> {
    let profiles = parse_profiles(p)?;
    let extractor = parse_extractor(p)?;
    let targets = match multi_targets(p)? {
        Some(t) => Some(t),
        None if extractor.is_some() || p.has("--profile") => Some(vec![single_target(p)?]),
        None => None,
    };
    let trace_path = p.value("--trace");
    let verbose = p.has("--verbose");
    // One recorder powers both `--trace` (the Chrome export) and the
    // `--verbose` per-rule self-time column. Tracing is observational:
    // reports and solutions are bit-identical with it on or off.
    let recorder = (trace_path.is_some() || verbose).then(Recorder::new);
    match (targets, extractor) {
        (Some(targets), Some(kind)) => {
            report_extract(expr, &targets, steps, threads, &profiles, kind, recorder.as_ref())?
        }
        (Some(targets), None) => {
            report_multi(expr, &targets, steps, threads, profiles, recorder.as_ref())?
        }
        (None, _) => report(
            expr,
            single_target(p)?,
            steps,
            threads,
            verbose,
            recorder.as_ref(),
        ),
    }
    if let Some(path) = trace_path {
        let rec = recorder.as_ref().expect("--trace implies a recorder");
        std::fs::write(path, rec.chrome_trace_json())
            .map_err(|e| format!("cannot write trace file {path}: {e}"))?;
        eprintln!("trace: wrote {path} (open in chrome://tracing or Perfetto)");
    }
    Ok(())
}

fn kernel_arg(p: &Parsed) -> Result<Kernel, String> {
    let [name] = p.positionals.as_slice() else {
        return Err("expected exactly one <kernel-name> argument (see `liar kernels`)".to_string());
    };
    Kernel::from_name(name).ok_or_else(|| format!("unknown kernel {name:?} (see `liar kernels`)"))
}

fn run_kernel(p: &Parsed) -> Result<ExitCode, String> {
    let kernel = kernel_arg(p)?;
    let expr = kernel.expr(kernel.search_size());
    let steps = p.usize_or("--steps", 8)?;
    let threads = p.usize_or("--threads", 1)?;
    println!("kernel {}: {}\n", kernel.name(), kernel.description());
    run_optimization(p, &expr, steps, threads)?;
    Ok(ExitCode::SUCCESS)
}

/// `liar profile <kernel>`: run the kernel through the full pipeline with
/// the trace recorder attached and print where the wall-clock went —
/// per phase (saturate / search / apply / rebuild / extraction) and per
/// rule, as self-time (span time minus child spans).
fn run_profile(p: &Parsed) -> Result<ExitCode, String> {
    let kernel = kernel_arg(p)?;
    let target = single_target(p)?;
    let steps = p.usize_or("--steps", 8)?;
    let threads = p.usize_or("--threads", 1)?;
    let top = p.usize_or("--top", 15)?;
    let expr = kernel.expr(kernel.search_size());

    let recorder = Recorder::new();
    let pipeline = Liar::new(target)
        .with_iter_limit(steps)
        .with_threads(threads)
        .with_trace(Arc::clone(&recorder));
    let report = pipeline
        .optimize_multi(&expr, &[target], &[1.0])
        .map_err(|e| e.to_string())?;

    let events = recorder.events();
    let rows = self_times(&events);
    let is_rule = |name: &str| name.starts_with("search/") || name.starts_with("apply/");
    let ms = |us: u64| us as f64 / 1000.0;

    // Fold `search/<rule>` and `apply/<rule>` into one row per rule.
    let mut by_rule: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
    for r in rows.iter().filter(|r| is_rule(&r.name)) {
        if let Some(rule) = r.name.strip_prefix("search/") {
            by_rule.entry(rule).or_default().0 += r.self_us;
        } else if let Some(rule) = r.name.strip_prefix("apply/") {
            by_rule.entry(rule).or_default().1 += r.self_us;
        }
    }
    let mut ranked: Vec<(&str, (u64, u64))> = by_rule.into_iter().collect();
    ranked.sort_by(|a, b| {
        let (sa, sb) = (a.1 .0 + a.1 .1, b.1 .0 + b.1 .1);
        sb.cmp(&sa).then(a.0.cmp(b.0))
    });

    if p.has("--json") {
        // Stable key order, rows in the same deterministic sort the
        // tables print — scripts can diff two runs directly.
        let json = Json::obj([
            ("kernel", Json::Str(kernel.name().to_string())),
            ("target", Json::Str(target.name().to_string())),
            ("steps", Json::Num((report.steps.len() - 1) as f64)),
            ("n_nodes", Json::Num(report.n_nodes as f64)),
            ("n_classes", Json::Num(report.n_classes as f64)),
            ("stop_reason", Json::Str(report.stop_reason.to_string())),
            (
                "solution",
                Json::Str(report.solutions[0].solution_summary()),
            ),
            (
                "phases",
                Json::Arr(
                    rows.iter()
                        .filter(|r| !is_rule(&r.name))
                        .map(|r| {
                            Json::obj([
                                ("name", Json::Str(r.name.clone())),
                                ("count", Json::Num(r.count as f64)),
                                ("total_ms", Json::Num(ms(r.total_us))),
                                ("self_ms", Json::Num(ms(r.self_us))),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "rules",
                Json::Arr(
                    ranked
                        .iter()
                        .map(|(rule, (search_us, apply_us))| {
                            Json::obj([
                                ("rule", Json::Str(rule.to_string())),
                                ("search_ms", Json::Num(ms(*search_us))),
                                ("apply_ms", Json::Num(ms(*apply_us))),
                                ("self_ms", Json::Num(ms(search_us + apply_us))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", json.to_json());
        if let Some(path) = p.value("--trace") {
            std::fs::write(path, recorder.chrome_trace_json())
                .map_err(|e| format!("cannot write trace file {path}: {e}"))?;
            eprintln!("trace: wrote {path} (open in chrome://tracing or Perfetto)");
        }
        return Ok(ExitCode::SUCCESS);
    }

    println!(
        "profile {} → {} ({} saturation steps, {} e-nodes, {} classes, stopped: {})",
        kernel.name(),
        target.name(),
        report.steps.len() - 1,
        report.n_nodes,
        report.n_classes,
        report.stop_reason,
    );
    println!("solution: {}", report.solutions[0].solution_summary());
    if threads > 1 {
        println!("note: per-rule search spans are recorded by the serial engine only");
    }

    println!("\n{:<28} {:>7} {:>12} {:>12}", "phase", "count", "total ms", "self ms");
    for r in rows.iter().filter(|r| !is_rule(&r.name)) {
        println!(
            "{:<28} {:>7} {:>12.3} {:>12.3}",
            r.name,
            r.count,
            ms(r.total_us),
            ms(r.self_us)
        );
    }

    println!(
        "\nper-rule self-time (top {} of {}):",
        top.min(ranked.len()),
        ranked.len()
    );
    println!("{:<40} {:>12} {:>12} {:>12}", "rule", "search ms", "apply ms", "self ms");
    for (rule, (search_us, apply_us)) in ranked.iter().take(top) {
        println!(
            "{:<40} {:>12.3} {:>12.3} {:>12.3}",
            rule,
            ms(*search_us),
            ms(*apply_us),
            ms(search_us + apply_us)
        );
    }

    if let Some(path) = p.value("--trace") {
        std::fs::write(path, recorder.chrome_trace_json())
            .map_err(|e| format!("cannot write trace file {path}: {e}"))?;
        eprintln!("trace: wrote {path} (open in chrome://tracing or Perfetto)");
    }
    Ok(ExitCode::SUCCESS)
}

/// Render an [`InspectReport`] as JSON with a stable key order (struct
/// order; rows keep the report's deterministic sort).
fn inspect_json(report: &InspectReport) -> Json {
    Json::obj([
        ("n_nodes", Json::Num(report.n_nodes as f64)),
        ("n_classes", Json::Num(report.n_classes as f64)),
        ("nodes_retired", Json::Num(report.nodes_retired as f64)),
        ("steps", Json::Num(report.steps as f64)),
        (
            "rules",
            Json::Arr(
                report
                    .rules
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::Str(r.name.clone())),
                            ("candidates", Json::Num(r.candidates as f64)),
                            ("matches", Json::Num(r.matches as f64)),
                            ("applied", Json::Num(r.applied as f64)),
                            ("nodes_created", Json::Num(r.nodes_created as f64)),
                            ("classes_created", Json::Num(r.classes_created as f64)),
                            ("classes_merged", Json::Num(r.classes_merged as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "ops",
            Json::Arr(
                report
                    .ops
                    .iter()
                    .map(|o| {
                        Json::obj([
                            ("op", Json::Str(o.op.clone())),
                            ("nodes", Json::Num(o.nodes as f64)),
                            ("classes", Json::Num(o.classes as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Print the two introspection tables (shared by `liar inspect` and
/// `liar stats --inspect`).
fn print_inspect_report(report: &InspectReport, top: usize) {
    println!(
        "e-graph: {} e-nodes in {} classes after {} steps ({} nodes retired by rebuild)",
        report.n_nodes, report.n_classes, report.steps, report.nodes_retired
    );
    match report.check() {
        Ok(()) => println!("conservation: ok (every node and class is charged to exactly one origin)"),
        Err(e) => println!("conservation: VIOLATED — {e}"),
    }

    println!(
        "\nrule funnel (top {} of {} origins by nodes created):",
        top.min(report.rules.len()),
        report.rules.len()
    );
    println!(
        "{:<40} {:>10} {:>9} {:>8} {:>8} {:>8} {:>7}",
        "rule", "candidates", "matches", "applied", "nodes", "classes", "merges"
    );
    for r in report.rules.iter().take(top) {
        println!(
            "{:<40} {:>10} {:>9} {:>8} {:>8} {:>8} {:>7}",
            r.name, r.candidates, r.matches, r.applied, r.nodes_created, r.classes_created,
            r.classes_merged
        );
    }

    println!(
        "\ncomposition by operator (top {} of {}):",
        top.min(report.ops.len()),
        report.ops.len()
    );
    println!("{:<24} {:>8} {:>8}", "op", "nodes", "classes");
    for o in report.ops.iter().take(top) {
        println!("{:<24} {:>8} {:>8}", o.op, o.nodes, o.classes);
    }
}

/// `liar inspect <kernel-or-expr>`: saturate once with the union ruleset
/// under growth attribution and print who built the e-graph (per-rule
/// funnel) and what it is made of (composition by operator).
fn run_inspect(p: &Parsed) -> Result<ExitCode, String> {
    let (label, expr) = kernel_or_expr(p)?;
    let targets = multi_targets(p)?.unwrap_or_else(|| Target::ALL.to_vec());
    let steps = p.usize_or("--steps", 8)?;
    let threads = p.usize_or("--threads", 1)?;
    let top = p.usize_or("--top", 20)?;

    let pipeline = Liar::new(targets[0])
        .with_iter_limit(steps)
        .with_threads(threads);
    let report = pipeline.inspect(&expr, &targets);
    // The conservation invariant is the whole point of the ledger: a
    // violation is a bug worth a non-zero exit, not a footnote.
    report
        .check()
        .map_err(|e| format!("attribution conservation violated: {e}"))?;

    if p.has("--json") {
        println!("{}", inspect_json(&report).to_json());
        return Ok(ExitCode::SUCCESS);
    }
    let target_names: Vec<&str> = targets.iter().map(|t| t.name()).collect();
    println!("inspect {label} (targets {})", target_names.join(","));
    print_inspect_report(&report, top);
    Ok(ExitCode::SUCCESS)
}

/// The positional of `explain`/`dot`: a paper kernel by name, or any IR
/// expression.
fn kernel_or_expr(p: &Parsed) -> Result<(String, Expr), String> {
    let [text] = p.positionals.as_slice() else {
        return Err("expected exactly one <kernel-or-expr> argument".to_string());
    };
    if let Some(kernel) = Kernel::from_name(text) {
        return Ok((kernel.name().to_string(), kernel.expr(kernel.search_size())));
    }
    let expr: Expr = text
        .parse()
        .map_err(|e| format!("{text:?} is neither a kernel name (see `liar kernels`) nor a parseable expression: {e}"))?;
    Ok(("<expr>".to_string(), expr))
}

fn run_explain(p: &Parsed) -> Result<ExitCode, String> {
    let (label, expr) = kernel_or_expr(p)?;
    let target = single_target(p)?;
    let steps = p.usize_or("--steps", 8)?;
    let threads = p.usize_or("--threads", 1)?;

    let pipeline = Liar::new(target).with_iter_limit(steps).with_threads(threads);
    let (report, proof) = pipeline.optimize_explained(&expr);
    let best = &report.best().best;
    println!("explain {label} (target {target}, {} steps)", report.steps.len() - 1);
    println!("source:   {expr}");
    println!("solution: {best}  [{}]", report.best().solution_summary());
    println!("\nproof ({} rewrite steps):", proof.len());
    print!("{proof}");

    let rules = rules_for(target, &RuleConfig::default());
    match proof.check(&rules) {
        Ok(()) => {
            println!("\nproof replayed OK against {} rules", rules.len());
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("\nPROOF FAILED TO REPLAY: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn run_dot(p: &Parsed) -> Result<ExitCode, String> {
    let (_, expr) = kernel_or_expr(p)?;
    let target = single_target(p)?;
    let steps = p.usize_or("--steps", 8)?;
    let pipeline = Liar::new(target)
        .with_iter_limit(steps)
        .with_explanations(p.has("--explain"));
    let (report, mut egraph) = pipeline.optimize_with_egraph(&expr);
    if !p.has("--explain") {
        println!("{}", Dot::new(&egraph));
        return Ok(ExitCode::SUCCESS);
    }
    // Highlight the certificate path: the e-classes whose terms the
    // proof rewrites through (each step's rewritten subterm, plus the
    // root class the whole chain lives in).
    let proof = egraph.explain_equivalence(&expr, &report.best().best);
    let mut classes: Vec<liar::egraph::Id> = Vec::new();
    classes.extend(egraph.lookup_expr(&expr));
    for step in &proof.steps {
        classes.extend(egraph.lookup_expr(&step.before_subtree()));
        classes.extend(egraph.lookup_expr(&step.after_subtree()));
    }
    println!("{}", Dot::new(&egraph).with_highlights(classes));
    Ok(ExitCode::SUCCESS)
}

fn run_emit_c(p: &Parsed) -> Result<ExitCode, String> {
    let kernel = kernel_arg(p)?;
    let steps = p.usize_or("--steps", 8)?;
    let n = kernel.search_size();
    let inputs: Vec<CInput> = kernel
        .inputs(n, 0)
        .iter()
        .map(|(name, value)| {
            let t = value.to_tensor().expect("tensor input");
            if t.shape().is_empty() {
                CInput::scalar(name)
            } else {
                CInput::tensor(name, t.shape().to_vec())
            }
        })
        .collect();
    let c_name = kernel.name().replace('-', "_");
    if let Some(targets) = multi_targets(p)? {
        // One saturation, one C function per target's variant.
        let pipeline = Liar::new(targets[0]).with_iter_limit(steps);
        let report = pipeline
            .optimize_multi(&kernel.expr(n), &targets, &[1.0])
            .map_err(|e| e.to_string())?;
        let variants: Vec<(String, &Expr)> = report
            .solutions
            .iter()
            .map(|s| (s.target.name().replace('-', "_"), &s.best))
            .collect();
        println!("{}", emit_kernel_variants(&c_name, &variants, &inputs));
        return Ok(ExitCode::SUCCESS);
    }
    let pipeline = Liar::new(Target::Blas).with_iter_limit(steps);
    let best = pipeline.optimize(&kernel.expr(n)).best().best.clone();
    match emit_kernel(&c_name, &best, &inputs) {
        Ok(c) => {
            println!("{c}");
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("codegen failed: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn run_kernels(_p: &Parsed) -> Result<ExitCode, String> {
    for k in Kernel::ALL {
        println!("{:<10} {:<10} {}", k.name(), k.suite().to_string(), k.description());
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// serve / submit

fn run_serve(p: &Parsed) -> Result<ExitCode, String> {
    let mut config = ServerConfig::default();
    config.addr = p.value("--addr").unwrap_or("127.0.0.1:4004").to_string();
    config.workers = p.usize_or("--workers", config.workers)?;
    config.queue_cap = p.usize_or("--queue-cap", config.queue_cap)?;
    config.cache_bytes = p.usize_or("--cache-mb", config.cache_bytes >> 20)? << 20;
    config.default_steps = p.usize_or("--steps", config.default_steps)?;
    config.max_steps = p.usize_or("--max-steps", config.max_steps)?;
    config.search_threads = p.usize_or("--threads", config.search_threads)?;
    config.warm_dir = p.value("--warm").map(std::path::PathBuf::from);
    config.trace_dir = p.value("--trace-dir").map(std::path::PathBuf::from);
    let prewarm = config.warm_dir.is_some() && !p.has("--no-prewarm");
    let server = Server::start(config).map_err(|e| format!("cannot start: {e}"))?;
    println!("liar-serve listening on {}", server.local_addr());
    // Make the line visible to parents that pipe our stdout (CI smoke,
    // the integration tests).
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if prewarm {
        // Pre-saturate the kernel corpus so first requests are answered
        // warm (restore + extraction, zero saturation steps). Kernels
        // already in the store restore instead of re-saturating.
        let boot = std::time::Instant::now();
        let (saturated, warm) = server.prewarm_kernels();
        println!(
            "liar-serve warm store ready: {saturated} kernels saturated, \
             {warm} restored ({:.2}s)",
            boot.elapsed().as_secs_f64()
        );
        let _ = std::io::stdout().flush();
    }
    server.wait();
    eprintln!("liar-serve: shutdown requested, draining");
    server.shutdown();
    Ok(ExitCode::SUCCESS)
}

/// The human-readable counter dump shared by `liar stats` and
/// `liar submit --stats`.
fn print_stats(stats: &StatsResponse) {
    println!(
        "cache: {} hits, {} misses, {} insertions, {} evictions, {} rejected",
        stats.cache_hits, stats.cache_misses, stats.cache_insertions,
        stats.cache_evictions, stats.cache_rejected
    );
    println!("cache: {} entries, {} bytes", stats.cache_entries, stats.cache_bytes);
    println!(
        "serve: {} requests, {} errors, {} coalesced, {} batched",
        stats.requests, stats.errors, stats.coalesced, stats.batched
    );
    println!("queue: {} queued, {} in flight", stats.queue_depth, stats.inflight);
    println!(
        "latency: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        stats.latency_p50_ms, stats.latency_p95_ms, stats.latency_p99_ms
    );
}

/// `liar stats --json` payload: the counters in declaration order.
fn stats_json(stats: &StatsResponse) -> Json {
    Json::obj([
        ("cache_hits", Json::Num(stats.cache_hits as f64)),
        ("cache_misses", Json::Num(stats.cache_misses as f64)),
        ("cache_insertions", Json::Num(stats.cache_insertions as f64)),
        ("cache_evictions", Json::Num(stats.cache_evictions as f64)),
        ("cache_rejected", Json::Num(stats.cache_rejected as f64)),
        ("cache_entries", Json::Num(stats.cache_entries as f64)),
        ("cache_bytes", Json::Num(stats.cache_bytes as f64)),
        ("requests", Json::Num(stats.requests as f64)),
        ("errors", Json::Num(stats.errors as f64)),
        ("coalesced", Json::Num(stats.coalesced as f64)),
        ("batched", Json::Num(stats.batched as f64)),
        ("queue_depth", Json::Num(stats.queue_depth as f64)),
        ("inflight", Json::Num(stats.inflight as f64)),
        ("latency_p50_ms", Json::Num(stats.latency_p50_ms)),
        ("latency_p95_ms", Json::Num(stats.latency_p95_ms)),
        ("latency_p99_ms", Json::Num(stats.latency_p99_ms)),
    ])
}

/// `liar stats`: scrape a running daemon's counters — human-readable by
/// default, Prometheus text exposition under `--prometheus`, growth
/// tables + flight-recorder tail under `--inspect`, machine-readable
/// under `--json`.
fn run_stats(p: &Parsed) -> Result<ExitCode, String> {
    let addr = p.value("--addr").unwrap_or("127.0.0.1:4004").to_string();
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    if p.has("--prometheus") {
        match client.metrics() {
            Ok(m) => {
                print!("{}", m.prometheus);
                Ok(ExitCode::SUCCESS)
            }
            Err(e) => {
                eprintln!("{e}");
                Ok(ExitCode::FAILURE)
            }
        }
    } else if p.has("--inspect") {
        let tail = p.usize_or("--tail", liar::serve::protocol::DEFAULT_INTROSPECT_TAIL)?;
        let resp = match client.introspect(tail) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return Ok(ExitCode::FAILURE);
            }
        };
        if p.has("--json") {
            // The wire payload already has stable key order; print it
            // verbatim rather than re-encoding.
            println!("{}", resp.to_json().to_json());
            return Ok(ExitCode::SUCCESS);
        }
        match &resp.report {
            Some(report) => {
                println!("latest cold saturation:");
                print_inspect_report(report, 20);
            }
            None => println!(
                "no growth tables yet (no cold saturation has completed, \
                 or the daemon runs with introspection off)"
            ),
        }
        println!(
            "\nflight recorder: {} events recorded, {} dropped, showing last {}:",
            resp.flight_total,
            resp.flight_dropped,
            resp.flight.len()
        );
        for ev in &resp.flight {
            println!(
                "  #{:<8} {:<18} {:<44} {}",
                ev.seq,
                ev.kind.name(),
                ev.detail,
                ev.value
            );
        }
        Ok(ExitCode::SUCCESS)
    } else {
        match client.stats() {
            Ok(stats) => {
                if p.has("--json") {
                    println!("{}", stats_json(&stats).to_json());
                } else {
                    print_stats(&stats);
                }
                Ok(ExitCode::SUCCESS)
            }
            Err(e) => {
                eprintln!("{e}");
                Ok(ExitCode::FAILURE)
            }
        }
    }
}

/// What one `liar submit` invocation asks of the daemon.
enum SubmitAction {
    Ping,
    Stats,
    Shutdown,
    Optimize(OptimizeRequest),
}

fn run_submit(p: &Parsed) -> Result<ExitCode, String> {
    let addr = p.value("--addr").unwrap_or("127.0.0.1:4004").to_string();

    // Validate the whole invocation before connecting: usage errors are
    // exit 2, runtime failures (unreachable daemon, server errors) are
    // exit 1.
    let action = if p.has("--ping") {
        SubmitAction::Ping
    } else if p.has("--stats") {
        SubmitAction::Stats
    } else if p.has("--shutdown") {
        SubmitAction::Shutdown
    } else {
        // The program: a positional s-expression or --kernel <name>.
        let program = match (p.value("--kernel"), p.positionals.as_slice()) {
            (Some(name), []) => {
                let kernel = Kernel::from_name(name)
                    .ok_or_else(|| format!("unknown kernel {name:?} (see `liar kernels`)"))?;
                kernel.expr(kernel.search_size()).to_string()
            }
            (None, [expr]) => expr.clone(),
            _ => {
                return usage_err(
                    "submit expects exactly one '<expr>' argument or --kernel <name>".to_string(),
                )
            }
        };
        let mut req = OptimizeRequest::new(program);
        req.id = p.value("--id").map(str::to_string);
        req.explain = p.has("--explain");
        if let Some(list) = p.value("--targets") {
            req.targets = list.split(',').map(str::to_string).collect();
        }
        if let Some(list) = p.value("--profile") {
            // Names only here; the server validates against its built-in
            // profile table and answers `unknown-profile`.
            req.profiles = list.split(',').map(str::to_string).collect();
        }
        if p.value("--steps").is_some() {
            req.steps = Some(p.usize_or("--steps", 0)?);
        }
        SubmitAction::Optimize(req)
    };

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let fail = |e: liar::serve::ClientError| {
        eprintln!("{e}");
        Ok(ExitCode::FAILURE)
    };

    let req = match action {
        SubmitAction::Ping => match client.ping() {
            Ok(()) => {
                println!("pong");
                return Ok(ExitCode::SUCCESS);
            }
            Err(e) => return fail(e),
        },
        SubmitAction::Stats => match client.stats() {
            Ok(stats) => {
                print_stats(&stats);
                return Ok(ExitCode::SUCCESS);
            }
            Err(e) => return fail(e),
        },
        SubmitAction::Shutdown => match client.shutdown() {
            Ok(()) => {
                println!("shutdown acknowledged");
                return Ok(ExitCode::SUCCESS);
            }
            Err(e) => return fail(e),
        },
        SubmitAction::Optimize(req) => req,
    };

    let resp = match client.optimize(req) {
        Ok(resp) => resp,
        Err(e) => return fail(e),
    };
    println!("fingerprint: {}", resp.fingerprint);
    println!("cache: {}", resp.cache);
    println!(
        "stopped: {} ({} e-nodes, {} e-classes, {} steps run, saturation {:.3}s, server {:.1}ms)",
        resp.stop_reason,
        resp.n_nodes,
        resp.n_classes,
        resp.saturation_steps,
        resp.saturation_s,
        resp.server_ms
    );
    println!(
        "\n{:<8} {:>8} {:<8} {:>12} {:>12}  solution",
        "target", "scale", "profile", "tree cost", "dag cost"
    );
    for s in &resp.solutions {
        println!(
            "{:<8} {:>8} {:<8} {:>12.1} {:>12.1}  {}",
            s.target, s.discount_scale, s.profile, s.cost, s.dag_cost, s.solution
        );
    }
    for s in &resp.solutions {
        println!("\nbest expression ({}, {}):\n{}", s.target, s.profile, s.best);
        if let Some(proof) = &s.proof {
            println!("proof ({} rewrite steps):", proof.steps.len());
            println!("   0: {}", proof.source);
            for (i, step) in proof.steps.iter().enumerate() {
                println!("{:>4}: {}    [{} {}]", i + 1, step.after, step.rule, step.direction);
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// The command table + help.

const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "optimize",
        positional: "'<expr>'",
        about: "optimize an IR expression and print per-step solutions",
        flags: &TARGET_FLAGS,
        run: run_optimize,
    },
    CommandSpec {
        name: "kernel",
        positional: "<kernel-name>",
        about: "optimize one of the paper's kernels by name",
        flags: &TARGET_FLAGS,
        run: run_kernel,
    },
    CommandSpec {
        name: "profile",
        positional: "<kernel-name>",
        about: "self-time breakdown per phase and per rule (trace spans)",
        flags: &[
            FlagSpec {
                name: "--target",
                metavar: Some("T"),
                help: "single target: blas | pytorch | pure-c (default blas)",
            },
            FlagSpec {
                name: "--steps",
                metavar: Some("N"),
                help: "saturation-step limit (default 8)",
            },
            FlagSpec {
                name: "--threads",
                metavar: Some("N"),
                help: "e-matching worker threads (per-rule search spans need 1)",
            },
            FlagSpec {
                name: "--top",
                metavar: Some("N"),
                help: "rows in the per-rule table (default 15)",
            },
            FlagSpec {
                name: "--trace",
                metavar: Some("FILE"),
                help: "also write the Chrome trace-event JSON to FILE",
            },
            FlagSpec {
                name: "--json",
                metavar: None,
                help: "print the phase + per-rule tables as JSON (stable key order)",
            },
        ],
        run: run_profile,
    },
    CommandSpec {
        name: "inspect",
        positional: "<kernel-or-expr>",
        about: "growth attribution: per-rule funnel and e-graph composition",
        flags: &[
            FlagSpec {
                name: "--targets",
                metavar: Some("A,B"),
                help: "comma-separated targets (default: all three)",
            },
            FlagSpec {
                name: "--all-targets",
                metavar: None,
                help: "shorthand for --targets pure-c,blas,pytorch",
            },
            FlagSpec {
                name: "--steps",
                metavar: Some("N"),
                help: "saturation-step limit (default 8)",
            },
            FlagSpec {
                name: "--threads",
                metavar: Some("N"),
                help: "e-matching worker threads (tables are thread-invariant)",
            },
            FlagSpec {
                name: "--top",
                metavar: Some("N"),
                help: "rows in the per-rule funnel (default 20)",
            },
            FlagSpec {
                name: "--json",
                metavar: None,
                help: "print the report as JSON (stable key order)",
            },
        ],
        run: run_inspect,
    },
    CommandSpec {
        name: "emit-c",
        positional: "<kernel-name>",
        about: "emit C for the best solution of a kernel",
        flags: &[
            FlagSpec {
                name: "--steps",
                metavar: Some("N"),
                help: "saturation-step limit (default 8)",
            },
            FlagSpec {
                name: "--targets",
                metavar: Some("A,B"),
                help: "emit one C function per target's variant",
            },
            FlagSpec {
                name: "--all-targets",
                metavar: None,
                help: "shorthand for --targets pure-c,blas,pytorch",
            },
        ],
        run: run_emit_c,
    },
    CommandSpec {
        name: "kernels",
        positional: "",
        about: "list the evaluation kernels (table I)",
        flags: &[],
        run: run_kernels,
    },
    CommandSpec {
        name: "explain",
        positional: "<kernel-or-expr>",
        about: "prove a lifting: print + replay the rewrite certificate",
        flags: &[
            FlagSpec {
                name: "--target",
                metavar: Some("T"),
                help: "single target: blas | pytorch | pure-c (default blas)",
            },
            FlagSpec {
                name: "--steps",
                metavar: Some("N"),
                help: "saturation-step limit (default 8)",
            },
            FlagSpec {
                name: "--threads",
                metavar: Some("N"),
                help: "e-matching worker threads",
            },
        ],
        run: run_explain,
    },
    CommandSpec {
        name: "dot",
        positional: "<kernel-or-expr>",
        about: "render the saturated e-graph in Graphviz dot format",
        flags: &[
            FlagSpec {
                name: "--target",
                metavar: Some("T"),
                help: "single target: blas | pytorch | pure-c (default blas)",
            },
            FlagSpec {
                name: "--steps",
                metavar: Some("N"),
                help: "saturation-step limit (default 8)",
            },
            FlagSpec {
                name: "--explain",
                metavar: None,
                help: "highlight the e-classes on the proof path (bold red)",
            },
        ],
        run: run_dot,
    },
    CommandSpec {
        name: "serve",
        positional: "",
        about: "run the optimization daemon (see docs/SERVING.md)",
        flags: &[
            FlagSpec {
                name: "--addr",
                metavar: Some("HOST:PORT"),
                help: "bind address (default 127.0.0.1:4004; port 0 picks one)",
            },
            FlagSpec {
                name: "--workers",
                metavar: Some("N"),
                help: "optimization worker threads (default 2)",
            },
            FlagSpec {
                name: "--queue-cap",
                metavar: Some("N"),
                help: "bounded job-queue capacity (default 64)",
            },
            FlagSpec {
                name: "--cache-mb",
                metavar: Some("MB"),
                help: "saturation-cache byte budget in MiB (default 64)",
            },
            FlagSpec {
                name: "--steps",
                metavar: Some("N"),
                help: "default saturation-step limit (default 8)",
            },
            FlagSpec {
                name: "--max-steps",
                metavar: Some("N"),
                help: "ceiling on a request's steps (default 24)",
            },
            FlagSpec {
                name: "--threads",
                metavar: Some("N"),
                help: "e-matching threads per optimization (default 1)",
            },
            FlagSpec {
                name: "--warm",
                metavar: Some("DIR"),
                help: "durable snapshot store: persist saturations, answer repeats warm",
            },
            FlagSpec {
                name: "--no-prewarm",
                metavar: None,
                help: "with --warm: skip pre-saturating the kernel corpus at boot",
            },
            FlagSpec {
                name: "--trace-dir",
                metavar: Some("DIR"),
                help: "record per-request spans; write DIR/serve-trace.json at shutdown",
            },
        ],
        run: run_serve,
    },
    CommandSpec {
        name: "submit",
        positional: "['<expr>']",
        about: "submit a program (or admin op) to a running daemon",
        flags: &[
            FlagSpec {
                name: "--addr",
                metavar: Some("HOST:PORT"),
                help: "daemon address (default 127.0.0.1:4004)",
            },
            FlagSpec {
                name: "--kernel",
                metavar: Some("NAME"),
                help: "submit a named paper kernel instead of an expression",
            },
            FlagSpec {
                name: "--targets",
                metavar: Some("A,B"),
                help: "comma-separated targets (default: all three)",
            },
            FlagSpec {
                name: "--profile",
                metavar: Some("P,Q"),
                help: "machine profiles to extract under: default | gpu | simd",
            },
            FlagSpec {
                name: "--steps",
                metavar: Some("N"),
                help: "saturation-step limit (server default if omitted)",
            },
            FlagSpec {
                name: "--id",
                metavar: Some("ID"),
                help: "client-chosen request id, echoed in the response",
            },
            FlagSpec {
                name: "--explain",
                metavar: None,
                help: "request proof production; solutions carry certificates",
            },
            FlagSpec {
                name: "--stats",
                metavar: None,
                help: "print the daemon's cache/service counters and exit",
            },
            FlagSpec {
                name: "--ping",
                metavar: None,
                help: "liveness probe",
            },
            FlagSpec {
                name: "--shutdown",
                metavar: None,
                help: "ask the daemon to drain and exit",
            },
        ],
        run: run_submit,
    },
    CommandSpec {
        name: "stats",
        positional: "",
        about: "scrape a running daemon's counters and latency percentiles",
        flags: &[
            FlagSpec {
                name: "--addr",
                metavar: Some("HOST:PORT"),
                help: "daemon address (default 127.0.0.1:4004)",
            },
            FlagSpec {
                name: "--prometheus",
                metavar: None,
                help: "print the full metric set as Prometheus text exposition",
            },
            FlagSpec {
                name: "--inspect",
                metavar: None,
                help: "print the latest growth tables + flight-recorder tail",
            },
            FlagSpec {
                name: "--tail",
                metavar: Some("N"),
                help: "with --inspect: flight-recorder events to fetch (default 64)",
            },
            FlagSpec {
                name: "--json",
                metavar: None,
                help: "machine-readable output (stable key order)",
            },
        ],
        run: run_stats,
    },
];

fn print_global_help() {
    println!("liar — latent idiom recognition via equality saturation\n");
    println!("usage: liar <command> [flags] [args]\n");
    println!("commands:");
    for cmd in COMMANDS {
        println!("  {:<10} {}", cmd.name, cmd.about);
    }
    println!("  {:<10} show this help, or `liar help <command>`", "help");
    println!("\nExit codes: 0 success, 1 runtime failure, 2 usage/input error.");
}

fn print_command_help(cmd: &CommandSpec) {
    println!("liar {} — {}\n", cmd.name, cmd.about);
    let positional = if cmd.positional.is_empty() {
        String::new()
    } else {
        format!(" {}", cmd.positional)
    };
    let flags = if cmd.flags.is_empty() { "" } else { " [flags]" };
    println!("usage: liar {}{}{}", cmd.name, flags, positional);
    if !cmd.flags.is_empty() {
        println!("\nflags:");
        for f in cmd.flags {
            let left = match f.metavar {
                Some(m) => format!("{} <{m}>", f.name),
                None => f.name.to_string(),
            };
            println!("  {left:<22} {}", f.help);
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(first) = args.first().map(String::as_str) else {
        print_global_help();
        return ExitCode::from(2);
    };
    match first {
        "help" | "--help" | "-h" => {
            match args.get(1) {
                None => print_global_help(),
                Some(name) => match COMMANDS.iter().find(|c| c.name == name) {
                    Some(cmd) => print_command_help(cmd),
                    None => {
                        eprintln!("unknown command {name:?} (see `liar help`)");
                        return ExitCode::from(2);
                    }
                },
            }
            ExitCode::SUCCESS
        }
        name => {
            let Some(cmd) = COMMANDS.iter().find(|c| c.name == name) else {
                eprintln!("unknown command {name:?} (see `liar help`)");
                return ExitCode::from(2);
            };
            match parse_flags(cmd, &args[1..]).and_then(|parsed| (cmd.run)(&parsed)) {
                Ok(code) => code,
                Err(message) => {
                    eprintln!("{message}");
                    eprintln!("usage: see `liar help {}`", cmd.name);
                    ExitCode::from(2)
                }
            }
        }
    }
}
