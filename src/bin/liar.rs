//! The `liar` command-line tool: optimize IR expressions from the shell.
//!
//! ```text
//! # Optimize an expression for a target and show the per-step solutions
//! # (--threads N parallelizes e-matching; results are bit-identical):
//! liar optimize --target blas --threads 4 '(ifold #64 0 (lam (lam (+ (get xs %1) %0))))'
//!
//! # Saturate ONCE and extract for every target from the same e-graph
//! # (tree + DAG costs, per-target extraction times):
//! liar optimize --all-targets '(ifold #64 0 (lam (lam (+ (get xs %1) %0))))'
//! liar kernel --targets blas,pytorch gemv
//!
//! # Optimize one of the paper's kernels by name:
//! liar kernel --target pytorch gemv
//!
//! # Emit C for the best solution of a kernel (or every target's variant):
//! liar emit-c gemv
//! liar emit-c --all-targets gemv
//!
//! # List the kernels of table I:
//! liar kernels
//! ```

use std::process::ExitCode;

use liar::codegen::{emit_kernel, emit_kernel_variants, CInput};
use liar::core::{Liar, Target};
use liar::ir::Expr;
use liar::kernels::Kernel;

fn target_from_name(name: &str) -> Target {
    match name {
        "blas" => Target::Blas,
        "pytorch" | "torch" => Target::Torch,
        "pure-c" | "purec" | "c" => Target::PureC,
        other => {
            eprintln!("unknown target {other} (expected blas | pytorch | pure-c)");
            std::process::exit(2);
        }
    }
}

/// The multi-extraction target list: `--all-targets`, or `--targets` with
/// a comma-separated list. `None` when neither flag is present
/// (single-target mode).
fn parse_multi_targets(args: &[String]) -> Option<Vec<Target>> {
    if args.iter().any(|a| a == "--all-targets") {
        return Some(Target::ALL.to_vec());
    }
    let flag = args.iter().position(|a| a == "--targets")?;
    let Some(list) = args.get(flag + 1) else {
        eprintln!("--targets expects a comma-separated list (e.g. --targets blas,pytorch)");
        std::process::exit(2);
    };
    let mut targets: Vec<Target> = Vec::new();
    for t in list.split(',').map(target_from_name) {
        // Dedupe: a repeated target would extract twice and emit-c would
        // emit two identical function definitions.
        if !targets.contains(&t) {
            targets.push(t);
        }
    }
    Some(targets)
}

fn parse_target(args: &[String]) -> Target {
    args.iter()
        .position(|a| a == "--target")
        .and_then(|i| args.get(i + 1))
        .map_or(Target::Blas, |s| target_from_name(s))
}

fn parse_steps(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--steps")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

fn parse_threads(args: &[String]) -> usize {
    match args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
    {
        None => 1,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("--threads expects a number, got {s}");
            std::process::exit(2);
        }),
    }
}

fn report(expr: &Expr, target: Target, steps: usize, threads: usize) {
    let pipeline = Liar::new(target).with_iter_limit(steps).with_threads(threads);
    let report = pipeline.optimize(expr);
    println!("target: {target}");
    for step in &report.steps {
        println!(
            "step {:>2}: {:>7} e-nodes  cost {:>12.1}  {}",
            step.step,
            step.n_nodes,
            step.cost,
            step.solution_summary()
        );
    }
    println!("stopped: {}", report.stop_reason);
    println!("\nbest expression:\n{}", report.best().best);
}

/// Run the "saturate once, extract everywhere" pipeline and print its
/// report.
fn report_multi(expr: &Expr, targets: &[Target], steps: usize, threads: usize) {
    let pipeline = Liar::new(targets[0])
        .with_iter_limit(steps)
        .with_threads(threads);
    let report = pipeline.optimize_multi(expr, targets, &[1.0]);
    let names: Vec<&str> = targets.iter().map(|t| t.name()).collect();
    println!("targets: {} (one shared saturation)", names.join(", "));
    for step in &report.steps {
        println!(
            "step {:>2}: {:>7} e-nodes {:>6} classes  step {:>9.3?}  search {:>9.3?}",
            step.step, step.n_nodes, step.n_classes, step.step_time, step.search_time,
        );
    }
    println!(
        "stopped: {} (saturation {:.3?}, extraction {:.3?})\n",
        report.stop_reason,
        report.saturation_time,
        report.total_extract_time(),
    );
    println!("{:<8} {:>12} {:>12} {:>8} {:>10}  solution", "target", "tree cost", "dag cost", "shared", "extract");
    for s in &report.solutions {
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>7.1}% {:>10.3?}  {}",
            s.target.name(),
            s.cost,
            s.dag_cost,
            100.0 * s.sharing_discount(),
            s.extract_time,
            s.solution_summary(),
        );
    }
    for s in &report.solutions {
        println!("\nbest expression ({}):\n{}", s.target.name(), s.best);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("optimize") => {
            let Some(expr_text) = args.iter().skip(1).find(|a| !a.starts_with("--")
                && args.iter().position(|x| x == *a).is_none_or(|i| {
                    !matches!(
                        args.get(i.wrapping_sub(1)).map(String::as_str),
                        Some("--target" | "--targets" | "--steps" | "--threads")
                    )
                }))
            else {
                eprintln!(
                    "usage: liar optimize [--target blas|pytorch|pure-c | --targets a,b | --all-targets] [--steps N] [--threads N] '<expr>'"
                );
                return ExitCode::from(2);
            };
            let expr: Expr = match expr_text.parse() {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("parse error: {e}");
                    return ExitCode::from(2);
                }
            };
            match parse_multi_targets(&args) {
                Some(targets) => {
                    report_multi(&expr, &targets, parse_steps(&args), parse_threads(&args));
                }
                None => {
                    report(&expr, parse_target(&args), parse_steps(&args), parse_threads(&args));
                }
            }
            ExitCode::SUCCESS
        }
        Some("kernel") => {
            let Some(kernel) = args
                .iter()
                .skip(1)
                .filter(|a| !a.starts_with("--"))
                .find_map(|n| Kernel::from_name(n))
            else {
                eprintln!(
                    "usage: liar kernel [--target … | --targets a,b | --all-targets] [--steps N] [--threads N] <kernel-name>"
                );
                return ExitCode::from(2);
            };
            let expr = kernel.expr(kernel.search_size());
            println!("kernel {}: {}\n", kernel.name(), kernel.description());
            match parse_multi_targets(&args) {
                Some(targets) => {
                    report_multi(&expr, &targets, parse_steps(&args), parse_threads(&args));
                }
                None => {
                    report(&expr, parse_target(&args), parse_steps(&args), parse_threads(&args));
                }
            }
            ExitCode::SUCCESS
        }
        Some("emit-c") => {
            let Some(kernel) = args
                .iter()
                .skip(1)
                .filter(|a| !a.starts_with("--"))
                .find_map(|n| Kernel::from_name(n))
            else {
                eprintln!("usage: liar emit-c [--steps N] [--all-targets | --targets a,b] <kernel-name>");
                return ExitCode::from(2);
            };
            let n = kernel.search_size();
            let inputs: Vec<CInput> = kernel
                .inputs(n, 0)
                .iter()
                .map(|(name, value)| {
                    let t = value.to_tensor().expect("tensor input");
                    if t.shape().is_empty() {
                        CInput::scalar(name)
                    } else {
                        CInput::tensor(name, t.shape().to_vec())
                    }
                })
                .collect();
            let c_name = kernel.name().replace('-', "_");
            if let Some(targets) = parse_multi_targets(&args) {
                // One saturation, one C function per target's variant.
                let pipeline = Liar::new(targets[0]).with_iter_limit(parse_steps(&args));
                let report = pipeline.optimize_multi(&kernel.expr(n), &targets, &[1.0]);
                let variants: Vec<(String, &Expr)> = report
                    .solutions
                    .iter()
                    .map(|s| (s.target.name().replace('-', "_"), &s.best))
                    .collect();
                println!("{}", emit_kernel_variants(&c_name, &variants, &inputs));
                return ExitCode::SUCCESS;
            }
            let pipeline = Liar::new(Target::Blas).with_iter_limit(parse_steps(&args));
            let best = pipeline.optimize(&kernel.expr(n)).best().best.clone();
            match emit_kernel(&c_name, &best, &inputs) {
                Ok(c) => {
                    println!("{c}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("codegen failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("kernels") => {
            for k in Kernel::ALL {
                println!("{:<10} {:<10} {}", k.name(), k.suite().to_string(), k.description());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: liar <optimize|kernel|emit-c|kernels> [--target blas|pytorch|pure-c | --targets a,b | --all-targets] [--steps N] [--threads N]"
            );
            ExitCode::from(2)
        }
    }
}
