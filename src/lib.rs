//! LIAR — Latent Idiom Array Rewriting.
//!
//! Facade crate re-exporting the whole reproduction of *“Latent Idiom
//! Recognition for a Minimalist Functional Array Language using Equality
//! Saturation”* (CGO 2024). See the README for an architecture overview and
//! `DESIGN.md` for the system inventory.

pub use liar_codegen as codegen;
pub use liar_core as core;
pub use liar_egraph as egraph;
pub use liar_ir as ir;
pub use liar_kernels as kernels;
pub use liar_runtime as runtime;
