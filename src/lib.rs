//! LIAR — Latent Idiom Array Rewriting.
//!
//! Facade crate re-exporting the whole reproduction of *“Latent Idiom
//! Recognition for a Minimalist Functional Array Language using Equality
//! Saturation”* (CGO 2024): write a numerical kernel as a plain functional
//! loop nest, and equality saturation discovers the BLAS or PyTorch
//! library calls latent inside it. See `README.md` for an overview and
//! `ARCHITECTURE.md` for how the crates fit together.
//!
//! The usual entry point is the [`core::Liar`] pipeline builder:
//!
//! ```
//! use liar::core::{Liar, Target};
//! use liar::ir::dsl;
//!
//! // A vector sum written as a fold — no `dot` anywhere in the input.
//! let vsum = dsl::vsum(64, dsl::sym("xs"));
//!
//! let report = Liar::new(Target::Blas)
//!     .with_iter_limit(6) // saturation steps
//!     .with_threads(2)    // parallel e-matching; bit-identical results
//!     .optimize(&vsum);
//!
//! // LIAR derives sum(v) = dot(v, fill(1)) by equational reasoning.
//! assert_eq!(report.best().solution_summary(), "1 × dot");
//! // Per-step solutions are recorded too (the paper's convergence plots).
//! assert_eq!(report.steps[0].step, 0);
//! ```
//!
//! The pieces, by module:
//!
//! * [`ir`] — the minimalist array IR ([`ir::ArrayLang`]) and its
//!   [`ir::dsl`] builders;
//! * [`egraph`] — the equality-saturation engine ([`egraph::EGraph`],
//!   [`egraph::Runner`], [`egraph::Rewrite`]);
//! * [`core`] — rule sets, cost models and the [`core::Liar`] driver;
//! * [`codegen`] — C emission for extracted expressions;
//! * [`runtime`] — the interpreter, optimized library kernels and the
//!   coverage-timing executor;
//! * [`kernels`] — the paper's 16 evaluation kernels;
//! * [`serve`] — the batched optimization daemon + client (`liar serve`
//!   / `liar submit`), with a content-addressed saturation cache
//!   ([`core::SaturationCache`]) keyed by request fingerprints
//!   ([`core::Fingerprint`]); see `docs/SERVING.md`;
//! * [`trace`] — the observability layer ([`trace::Recorder`],
//!   [`trace::Histogram`]): structured spans over saturation, extraction
//!   and serving, exportable as Chrome trace-event JSON or Prometheus
//!   text (`liar optimize --trace`, `liar profile`, `liar stats
//!   --prometheus`); see `docs/OBSERVABILITY.md`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use liar_codegen as codegen;
pub use liar_core as core;
pub use liar_egraph as egraph;
pub use liar_ir as ir;
pub use liar_kernels as kernels;
pub use liar_runtime as runtime;
pub use liar_serve as serve;
pub use liar_trace as trace;
