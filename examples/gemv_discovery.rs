//! The paper's running example (fig. 4): watch LIAR's gemv solutions
//! evolve over saturation steps, then race the discovered BLAS solution
//! against the pure-C loop nest (fig. 6).
//!
//! Run with: `cargo run --release --example gemv_discovery`

use std::time::Duration;

use liar::core::{Liar, Target};
use liar::kernels::Kernel;
use liar::runtime::exec;

fn main() {
    let kernel = Kernel::Gemv;
    let n = 256;
    let expr = kernel.expr(n);
    let inputs = kernel.inputs(n, 42);

    println!("kernel: {} — {}\n", kernel.name(), kernel.description());

    // Fig. 4a: solutions over time, targeting BLAS.
    let blas = Liar::new(Target::Blas).with_iter_limit(8).optimize(&expr);
    println!("targeting BLAS:");
    for step in &blas.steps {
        println!(
            "  step {}: {:>6} e-nodes, {:>7.3}s, solution: {}",
            step.step,
            step.n_nodes,
            step.step_time.as_secs_f64(),
            step.solution_summary()
        );
    }

    // Fig. 4b: the same with the PyTorch rules.
    let torch = Liar::new(Target::Torch).with_iter_limit(8).optimize(&expr);
    println!("targeting PyTorch:");
    for step in &torch.steps {
        println!(
            "  step {}: {:>6} e-nodes, solution: {}",
            step.step,
            step.n_nodes,
            step.solution_summary()
        );
    }

    // Fig. 6: run times of the final solutions.
    let pure_c = Liar::new(Target::PureC).with_iter_limit(8).optimize(&expr);
    let budget = Duration::from_millis(300);
    println!("\nrun times at n = {n}:");
    for (label, solution) in [
        ("BLAS   ", &blas.best().best),
        ("pure C ", &pure_c.best().best),
    ] {
        let (mean, runs, stats) =
            exec::time_runs(solution, &inputs, budget).expect("solution runs");
        println!(
            "  {label} {:>10.6}s/run over {runs} runs (coverage {:.0}%)",
            mean.as_secs_f64(),
            stats.total_coverage() * 100.0
        );
    }

    // Sanity: both agree with the hand-written reference.
    let reference = kernel.reference(n, &inputs).unwrap();
    let (blas_value, _) = exec::run(&blas.best().best, &inputs).unwrap();
    assert!(liar::kernels::values_approx_eq(
        &blas_value,
        &reference,
        1e-6
    ));
    println!("\nBLAS solution verified against the reference implementation.");
}
