//! Quickstart: discover the latent dot product in a vector sum.
//!
//! This is the paper's motivating example (§I): `sum(v) = fold (+) 0 v`
//! contains no `dot` — but with a library offering `dot` and constant
//! vectors, `sum(v) = dot(v, fill(1))`. LIAR finds that rewriting
//! automatically.
//!
//! Run with: `cargo run --example quickstart`

use liar::core::{Liar, Target};
use liar::ir::dsl;
use liar::runtime::{exec, Tensor, Value};

fn main() {
    let n = 1024;

    // 1. Write the program in the minimalist IR:
    //    vsum = ifold n 0 (λ λ xs[•1] + •0)
    let vsum = dsl::vsum(n, dsl::sym("xs"));
    println!("input program:\n  {vsum}\n");

    // 2. Run equality saturation with the BLAS idiom rules and extract the
    //    best expression after every step.
    let report = Liar::new(Target::Blas).with_iter_limit(8).optimize(&vsum);
    for step in &report.steps {
        println!(
            "step {}: {:>6} e-nodes, cost {:>8.1}, solution: {}",
            step.step,
            step.n_nodes,
            step.cost,
            step.solution_summary()
        );
    }
    let best = report.best();
    println!("\nbest expression:\n  {}\n", best.best);

    // 3. Execute both forms and check they agree.
    let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let expected: f64 = xs.iter().sum();
    let inputs = [("xs".to_string(), Value::from(Tensor::vector(xs)))]
        .into_iter()
        .collect();
    let (value, stats) = exec::run(&best.best, &inputs).expect("solution runs");
    println!("result = {:.6} (expected {expected:.6})", value.as_num().unwrap());
    println!(
        "library calls executed: {} (coverage {:.0}%)",
        stats.lib_calls,
        stats.total_coverage() * 100.0
    );
    assert!((value.as_num().unwrap() - expected).abs() < 1e-6);

    // 4. Or saturate ONCE and extract every target's solution from the
    //    same e-graph (`liar optimize --all-targets …` on the CLI):
    let multi = Liar::new(Target::Blas)
        .with_iter_limit(8)
        .optimize_all_targets(&vsum)
        .expect("vsum is extractable for every target");
    println!(
        "\nsaturate once ({:?}), extract everywhere:",
        multi.saturation_time
    );
    for solution in &multi.solutions {
        println!(
            "  {:<8} cost {:>8.1} (dag {:>8.1})  {}",
            solution.target.name(),
            solution.cost,
            solution.dag_cost,
            solution.solution_summary()
        );
    }
}
