//! Targeting your own library: the `addvec`/`constvec` example of §IV.C.2.
//!
//! The paper argues LIAR "can be easily adapted to different libraries by
//! providing appropriate idiom descriptions". This example defines a
//! two-function library using nothing but pattern pairs in the IR's own
//! syntax, and recognizes both functions — including the *latent*
//! `constvec`, which never appears in the input program.
//!
//! Run with: `cargo run --example custom_library`

use liar::core::rules::{core_rules, scalar_rules, RuleConfig};
use liar::egraph::{Extractor, Rewrite, Runner};
use liar::ir::{dsl, ArrayEGraph, ArrayLang};

fn main() {
    // The program: add 42 to each element of xs.
    //   build n (λ xs[•0] + 42)
    let n = 64;
    let program = dsl::build(
        n,
        dsl::lam(dsl::add(
            dsl::get(dsl::sym("xs"), dsl::var(0)),
            dsl::num(42.0),
        )),
    );
    println!("program:\n  {program}\n");

    // The library's idioms, written in the IR itself. We reuse the `add`
    // and `full` call constructors as stand-ins for addvec/constvec.
    let idioms = vec![
        Rewrite::from_patterns(
            "addvec",
            "(build ?n (lam (+ (get (sh1 ?a) %0) (get (sh1 ?b) %0))))",
            "(add ?n ?a ?b)",
        ),
        Rewrite::from_patterns("constvec", "(build ?n (lam (sh1 ?c)))", "(full ?n ?c)"),
    ];

    // Saturate with the core + scalar rules plus the custom idioms.
    let config = RuleConfig::default();
    let mut rules = core_rules(&config);
    rules.extend(scalar_rules(&config));
    rules.extend(idioms);

    let mut egraph = ArrayEGraph::default();
    let root = egraph.add_expr(&program);
    let mut runner = Runner::new(egraph).with_iter_limit(6);
    let stop = runner.run(&rules);
    println!(
        "saturation: {} steps, {} e-nodes ({stop})",
        runner.iterations.len(),
        runner.egraph.num_nodes(),
    );

    // A cost model that loves library calls.
    struct LoveCalls;
    impl liar::egraph::CostFunction<ArrayLang, liar::ir::ArrayAnalysis> for LoveCalls {
        fn cost<F: FnMut(liar::egraph::Id) -> f64>(
            &self,
            _eg: &ArrayEGraph,
            enode: &ArrayLang,
            child: &mut F,
        ) -> f64 {
            use liar::egraph::Language;
            let op = match enode {
                ArrayLang::Call(..) => 1.0,
                ArrayLang::Build(_) | ArrayLang::IFold(_) => 1000.0,
                _ => 1.0,
            };
            enode.fold(op, |acc, c| acc + child(c))
        }
    }

    let extractor = Extractor::new(&runner.egraph, LoveCalls);
    let (_, best) = extractor.find_best(root);
    println!("\nbest expression:\n  {best}");
    assert_eq!(best.to_string(), format!("(add #{n} xs (full #{n} 42))"));
    println!("\nLIAR found the latent constvec: addvec(xs, constvec(42)).");
}
