//! Deep idiom recognition + C emission: the paper's doitgen example.
//!
//! doitgen's loop nest contains no `gemm` call — LIAR uncovers one "by
//! inserting constants and by building a zero matrix using memset" (§VI-B),
//! and the C backend turns the solution into CBLAS calls.
//!
//! Run with: `cargo run --release --example doitgen_codegen`

use liar::codegen::{emit_kernel, CInput};
use liar::core::{Liar, Target};
use liar::kernels::Kernel;

fn main() {
    let kernel = Kernel::Doitgen;
    let n = 8;
    let expr = kernel.expr(n);
    println!("doitgen in the minimalist IR:\n  {expr}\n");

    let report = Liar::new(Target::Blas).with_iter_limit(8).optimize(&expr);
    let best = report.best();
    println!(
        "solution after {} steps ({} e-nodes): {}",
        best.step,
        best.n_nodes,
        best.solution_summary()
    );
    println!("  {}\n", best.best);

    // Lower the recognized solution to C.
    let inputs = [
        CInput::tensor("A", vec![n, n, n]),
        CInput::matrix("C4", n, n),
    ];
    match emit_kernel("doitgen", &best.best, &inputs) {
        Ok(c) => println!("generated C:\n{c}"),
        Err(e) => println!("C emission failed: {e}"),
    }

    // The original (unoptimized) program lowers to plain loop nests.
    let c = emit_kernel("doitgen_pure", &expr, &inputs).expect("pure C lowering");
    let loops = c.lines().filter(|l| l.contains("for (")).count();
    println!("pure-C lowering of the input uses {loops} loops");
}
