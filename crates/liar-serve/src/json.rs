//! A minimal JSON value type, parser and writer.
//!
//! The workspace builds offline with no external dependencies, so the
//! serve protocol carries this hand-rolled JSON instead of serde. Scope:
//!
//! * Objects preserve insertion order (they are association lists), so
//!   serialization is deterministic — tests compare wire bytes directly.
//! * Numbers are `f64` (every budget and cost in the protocol fits; the
//!   protocol has no 64-bit integer fields that exceed 2^53).
//! * The parser is a recursive-descent parser with a depth limit, exact
//!   escape handling (including `\uXXXX` surrogate pairs), and rejects
//!   trailing garbage — malformed frames must fail loudly, not
//!   best-effort parse.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts (arrays + objects).
const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered association list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions,
    /// negatives and values past 2^53).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n.fract() != 0.0 || !(0.0..=9.007_199_254_740_992e15).contains(&n) {
            return None;
        }
        Some(n as usize)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A `name → count` map field (used for `lib_calls`).
    pub fn as_count_map(&self) -> Option<BTreeMap<String, usize>> {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| v.as_usize().map(|n| (k.clone(), n)))
                .collect(),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // JSON has no NaN/inf; the protocol never produces them,
                // but a defensive `null` beats emitting invalid JSON.
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {lit}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err(format!("bad number {text:?}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged; the
                    // input is a &str, so it is already valid.
                    let s = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(s)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits after `\u`, leaving `pos` past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &str) -> String {
        parse(input).unwrap().to_json()
    }

    #[test]
    fn values_roundtrip() {
        for (input, expect) in [
            ("null", "null"),
            ("true", "true"),
            ("false", "false"),
            ("42", "42"),
            ("-1.5", "-1.5"),
            ("1e3", "1000"),
            ("\"hi\"", "\"hi\""),
            ("[]", "[]"),
            ("[1, 2,3]", "[1,2,3]"),
            ("{}", "{}"),
            ("{\"a\": 1, \"b\": [true, null]}", "{\"a\":1,\"b\":[true,null]}"),
        ] {
            assert_eq!(roundtrip(input), expect);
        }
    }

    #[test]
    fn escapes_roundtrip() {
        assert_eq!(roundtrip(r#""a\nb\t\"c\"\\""#), "\"a\\nb\\t\\\"c\\\"\\\\\"");
        assert_eq!(parse(r#""\u00e9""#).unwrap(), Json::Str("é".into()));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(roundtrip("\"×\""), "\"×\"");
        assert_eq!(parse("\"\\u0007\"").unwrap().to_json(), "\"\\u0007\"");
    }

    #[test]
    fn object_order_is_preserved() {
        let j = parse("{\"z\":1,\"a\":2}").unwrap();
        assert_eq!(j.to_json(), "{\"z\":1,\"a\":2}");
        assert_eq!(j.get("z"), Some(&Json::Num(1.0)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn malformed_documents_fail() {
        for bad in [
            "", "{", "}", "[1,", "{\"a\"}", "{\"a\":}", "nul", "tru", "01x",
            "\"unterminated", "\"bad \\q escape\"", "[1] trailing", "1 2",
            "\"\\ud800\"", "nan", "inf", "--1", "+1", "1.2.3",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn usize_accessor_is_strict() {
        assert_eq!(parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
        assert_eq!(parse("-3").unwrap().as_usize(), None);
    }
}
