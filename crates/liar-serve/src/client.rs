//! A blocking client for the serve protocol (`liar submit` and the
//! loopback bench are built on it).

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, FrameError, IntrospectResponse, MetricsResponse, OptimizeRequest,
    OptimizeResponse, Request, Response, RestoreRequest, RestoreResponse, SnapshotRequest,
    SnapshotResponse, StatsResponse,
};

/// Response-size cap on the client side. Responses echo the best
/// expression once per `(target, discount_scale)` pair, so they can be
/// several times larger than the request the server accepted — give them
/// generous headroom rather than mirroring the server's *request* limit.
const MAX_RESPONSE_FRAME: usize = 64 << 20;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, framing).
    Io(io::Error),
    /// No response arrived within the configured
    /// [`Client::set_timeout`]. The response may still be in flight, so
    /// the connection is **desynchronized**: further calls on this
    /// client fail with [`ClientError::Desynchronized`] — reconnect.
    Timeout,
    /// A previous timeout or transport failure left a response (possibly)
    /// pending on the wire; this connection can no longer pair requests
    /// with responses. Reconnect.
    Desynchronized,
    /// The server's response frame could not be decoded.
    BadResponse(String),
    /// The server answered with a structured error.
    Server {
        /// Machine-readable class name.
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Timeout => write!(f, "timed out waiting for the response"),
            ClientError::Desynchronized => write!(
                f,
                "connection is desynchronized after an earlier timeout/failure; reconnect"
            ),
            ClientError::BadResponse(m) => write!(f, "bad response: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Idle => ClientError::Timeout,
            other => ClientError::BadResponse(other.to_string()),
        }
    }
}

/// A connected client. One request is in flight at a time (the protocol
/// is strictly request/response per connection). A timeout or transport
/// failure poisons the connection — the response it was waiting for may
/// still arrive later and would otherwise be paired with the *next*
/// request — so subsequent calls fail with
/// [`ClientError::Desynchronized`]; reconnect instead.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    poisoned: bool,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            poisoned: false,
        })
    }

    /// Bound how long a single response may take (None blocks forever).
    /// A request that hits this timeout fails with
    /// [`ClientError::Timeout`] and poisons the connection (see the type
    /// docs).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request and read its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        if self.poisoned {
            return Err(ClientError::Desynchronized);
        }
        match self.request_inner(request) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                // Any transport-level failure (not a clean, well-framed
                // server error) may leave a response in flight.
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn request_inner(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &request.to_payload())?;
        let payload = read_frame(&mut self.reader, MAX_RESPONSE_FRAME)?
            .ok_or_else(|| ClientError::BadResponse("connection closed".to_string()))?;
        Response::from_payload(&payload).map_err(ClientError::BadResponse)
    }

    /// Submit a program; structured server errors become
    /// [`ClientError::Server`].
    pub fn optimize(&mut self, req: OptimizeRequest) -> Result<OptimizeResponse, ClientError> {
        match self.request(&Request::Optimize(req))? {
            Response::Optimize(r) => Ok(r),
            Response::Error { code, message, .. } => Err(ClientError::Server {
                code: code.name().to_string(),
                message,
            }),
            other => Err(ClientError::BadResponse(format!(
                "expected an optimize response, got {other:?}"
            ))),
        }
    }

    /// Submit a program with proof production on (the `explain` op):
    /// every solution in the response carries a replayable
    /// [`crate::protocol::ProofMsg`] certificate. Equivalent to setting
    /// [`OptimizeRequest::explain`] and calling [`Client::optimize`].
    pub fn explain(&mut self, mut req: OptimizeRequest) -> Result<OptimizeResponse, ClientError> {
        req.explain = true;
        self.optimize(req)
    }

    /// Fetch the stored e-graph snapshot for a request fingerprint (the
    /// `fingerprint` field of an earlier optimize response), ready to
    /// ship to another node with [`Client::restore`]. The server must
    /// have a warm store attached.
    pub fn snapshot(&mut self, fingerprint: impl Into<String>) -> Result<SnapshotResponse, ClientError> {
        let req = SnapshotRequest {
            id: None,
            fingerprint: fingerprint.into(),
        };
        match self.request(&Request::Snapshot(req))? {
            Response::Snapshot(r) => Ok(r),
            Response::Error { code, message, .. } => Err(ClientError::Server {
                code: code.name().to_string(),
                message,
            }),
            other => Err(ClientError::BadResponse(format!(
                "expected a snapshot response, got {other:?}"
            ))),
        }
    }

    /// Ship a snapshot (typically from [`Client::snapshot`] against
    /// another node) into this server's warm store. The server restores
    /// the bytes before persisting, so a corrupt snapshot is rejected
    /// with a `bad-snapshot` error and the store is untouched.
    pub fn restore(&mut self, snapshot: &SnapshotResponse) -> Result<RestoreResponse, ClientError> {
        let req = RestoreRequest {
            id: None,
            fingerprint: snapshot.fingerprint.clone(),
            stop_reason: snapshot.stop_reason.clone(),
            snapshot_hex: snapshot.snapshot_hex.clone(),
        };
        match self.request(&Request::Restore(req))? {
            Response::Restored(r) => Ok(r),
            Response::Error { code, message, .. } => Err(ClientError::Server {
                code: code.name().to_string(),
                message,
            }),
            other => Err(ClientError::BadResponse(format!(
                "expected a restore acknowledgement, got {other:?}"
            ))),
        }
    }

    /// Fetch the service + cache counters.
    pub fn stats(&mut self) -> Result<StatsResponse, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error { code, message, .. } => Err(ClientError::Server {
                code: code.name().to_string(),
                message,
            }),
            other => Err(ClientError::BadResponse(format!(
                "expected a stats response, got {other:?}"
            ))),
        }
    }

    /// Scrape the server's full metric set as Prometheus text exposition
    /// (`liar stats --prometheus` prints this verbatim).
    pub fn metrics(&mut self) -> Result<MetricsResponse, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            Response::Error { code, message, .. } => Err(ClientError::Server {
                code: code.name().to_string(),
                message,
            }),
            other => Err(ClientError::BadResponse(format!(
                "expected a metrics response, got {other:?}"
            ))),
        }
    }

    /// Fetch live introspection: the latest cold saturation's growth
    /// tables plus the last `tail` flight-recorder events (`liar stats
    /// --inspect` prints this).
    pub fn introspect(&mut self, tail: usize) -> Result<IntrospectResponse, ClientError> {
        match self.request(&Request::Introspect { tail })? {
            Response::Introspect(r) => Ok(r),
            Response::Error { code, message, .. } => Err(ClientError::Server {
                code: code.name().to_string(),
                message,
            }),
            other => Err(ClientError::BadResponse(format!(
                "expected an introspect response, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::BadResponse(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::BadResponse(format!(
                "expected a shutdown acknowledgement, got {other:?}"
            ))),
        }
    }
}
