//! `liar-serve`: the batched optimization service.
//!
//! The paper frames idiom recognition as a compiler service — programs
//! come in, library-lifted solutions come out. This crate is that
//! service: a std-only daemon that accepts IR programs over a
//! length-prefixed JSON protocol ([`protocol`]), runs them through the
//! `liar-core` pipeline on a worker pool, and amortizes the dominant
//! cost (saturation) across requests with a **content-addressed cache**
//! ([`liar_core::SaturationCache`], keyed by
//! [`liar_core::Fingerprint`]) plus **single-flight coalescing** of
//! identical in-flight requests ([`server`]).
//!
//! See `docs/SERVING.md` for the protocol specification, cache
//! semantics and capacity knobs; the `liar serve` / `liar submit` CLI
//! subcommands and the `cargo bench -p liar-bench --bench serve`
//! loopback benchmark are built on this crate.
//!
//! # In-process quickstart
//!
//! ```
//! use liar_serve::{Client, OptimizeRequest, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! let mut req = OptimizeRequest::new("(ifold #16 0 (lam (lam (+ (get xs %1) %0))))");
//! req.targets = vec!["blas".into()];
//! req.steps = Some(6);
//! let first = client.optimize(req.clone()).unwrap();
//! assert_eq!(first.cache, "miss");
//! assert_eq!(first.solutions[0].solution, "1 × dot");
//!
//! // The same request (same fingerprint) replays from the cache.
//! let again = client.optimize(req).unwrap();
//! assert_eq!(again.cache, "hit");
//! assert_eq!(again.solutions, first.solutions);
//!
//! server.shutdown();
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    ErrorCode, IntrospectResponse, MetricsResponse, OptimizeRequest, OptimizeResponse, ProofMsg,
    ProofStepMsg, Request, Response, RestoreRequest, RestoreResponse, SnapshotRequest,
    SnapshotResponse, SolutionMsg, StatsResponse,
};
pub use server::{Server, ServerConfig};
