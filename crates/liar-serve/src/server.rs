//! The optimization daemon: accept loop, bounded job queue, worker pool,
//! single-flight coalescing and budget batching.
//!
//! # Anatomy of a request
//!
//! ```text
//! client ──frame──▶ connection thread ──job──▶ bounded queue ──▶ worker pool
//!                        │                                         │
//!                        ◀──────────── response channel ◀──────────┘
//! ```
//!
//! * One **connection thread** per client parses frames, answers `ping`
//!   and `stats` inline, and turns `optimize` requests into jobs. The
//!   queue is **bounded**: when it is full the client gets a structured
//!   `queue-full` error instead of unbounded memory growth.
//! * **Workers** (`--workers N`) pop jobs. A worker that pops a job also
//!   **drains a batch**: it takes along every queued job with the same
//!   saturation budget (up to a cap), so one queue interaction feeds a
//!   run of requests that exercise the same configuration — duplicates
//!   inside the batch collapse onto the cache/single-flight layer
//!   without ever waking another worker.
//! * **Single-flight**: identical in-flight fingerprints share one
//!   computation. The first job becomes the *leader* and computes; the
//!   rest wait on the leader's result and respond `"cache":"coalesced"`.
//!   If a leader dies, waiters fall back to computing themselves.
//! * Every worker shares one [`SaturationCache`] through
//!   [`Liar::with_cache`], so repeat fingerprints replay bit-identically
//!   (`"cache":"hit"`).
//!
//! The daemon trusts its network: it is an **unauthenticated loopback
//! service** (bind it to `127.0.0.1`), with robustness against malformed
//! and oversized frames but no authentication or TLS.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use liar_core::store::stop_reason_from_name;
use liar_core::{
    Fingerprint, InspectReport, Liar, MachineProfile, MultiReport, OptimizeError, SaturationCache,
    SnapshotStore, Target,
};
use liar_ir::{ArrayAnalysis, ArrayEGraph, Expr, StableHasher};
use liar_trace::{prom::PromWriter, FlightRecorder, Histogram, Recorder, TraceSink};

use crate::protocol::{
    self, read_frame, target_from_wire, write_frame, ErrorCode, FrameError, IntrospectResponse,
    MetricsResponse, OptimizeRequest, OptimizeResponse, ProofMsg, Request, Response,
    RestoreRequest, RestoreResponse, SnapshotRequest, SnapshotResponse, SolutionMsg, StatsResponse,
};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:4004` (port 0 picks a free one).
    pub addr: String,
    /// Worker threads executing optimizations.
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it clients get `queue-full`.
    pub queue_cap: usize,
    /// Byte budget of the shared saturation cache.
    pub cache_bytes: usize,
    /// Maximum frame payload size accepted.
    pub max_frame: usize,
    /// Default saturation-step limit when a request names none.
    pub default_steps: usize,
    /// Ceiling on a request's `steps` (`budget-too-large` beyond it).
    pub max_steps: usize,
    /// Default e-node budget when a request names none.
    pub default_node_limit: usize,
    /// Ceiling on a request's `node_limit`.
    pub max_node_limit: usize,
    /// Ceiling on a request's `discount_scales` length (each scale is a
    /// full per-target extraction, so this is a budget knob too).
    pub max_discount_scales: usize,
    /// Most jobs one worker drains per queue interaction.
    pub batch_max: usize,
    /// E-matching threads inside each optimization (results are
    /// bit-identical regardless; see `Liar::with_threads`).
    pub search_threads: usize,
    /// Directory of the durable snapshot store (`liar serve --warm`).
    /// When set, every cold saturation persists its e-graph there, a
    /// restart answers repeat fingerprints by restore + extraction
    /// (zero saturation steps), and the `snapshot` / `restore` protocol
    /// ops ship e-graphs between nodes. `None` disables durability.
    pub warm_dir: Option<std::path::PathBuf>,
    /// Directory for Chrome trace-event exports (`liar serve
    /// --trace-dir`). When set, the daemon records per-request phase
    /// spans (queue wait, single-flight coalescing, saturation,
    /// extraction, reply serialization — each request's lane carries its
    /// trace id) and writes `serve-trace.json` there at shutdown; load it
    /// in `chrome://tracing` or Perfetto. `None` (the default) disables
    /// span recording entirely — the metrics histograms stay on either
    /// way, they are plain atomic counters.
    pub trace_dir: Option<std::path::PathBuf>,
    /// Live introspection (`introspect` op, `liar stats --inspect`):
    /// when on (the default), every job's pipeline runs with growth
    /// attribution and a flight recorder, and the daemon retains the
    /// most recent cold saturation's tables. Attribution is strictly
    /// observational (answers are bit-identical either way); turn it off
    /// to shave the ledger's bookkeeping from hot saturations.
    pub introspect: bool,
    /// Flight-recorder ring capacity (events retained for the
    /// `introspect` op's tail).
    pub flight_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 64,
            cache_bytes: 64 << 20,
            max_frame: protocol::DEFAULT_MAX_FRAME,
            default_steps: 8,
            max_steps: 24,
            default_node_limit: 300_000,
            max_node_limit: 1_000_000,
            max_discount_scales: 8,
            batch_max: 8,
            search_threads: 1,
            warm_dir: None,
            trace_dir: None,
            introspect: true,
            flight_capacity: 256,
        }
    }
}

/// A validated optimize job, ready for a worker.
struct Job {
    id: Option<String>,
    expr: Expr,
    targets: Vec<Target>,
    discount_scales: Vec<f64>,
    pipeline: Liar,
    fingerprint: Fingerprint,
    /// Hash of the budget knobs alone — the batching key.
    budget_key: u64,
    received: Instant,
    reply: mpsc::Sender<Response>,
}

/// Result a single-flight leader publishes for its waiters.
enum FlightState {
    Running,
    Done(Arc<MultiReport>),
    /// The leader disappeared without publishing (panic); waiters must
    /// compute for themselves.
    Abandoned,
}

struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

/// Drop guard for a single-flight leader. On drop it always removes the
/// in-flight map entry (so the fingerprint can fly again), and if the
/// leader unwound before publishing it marks the flight abandoned so
/// waiters do not hang. Without the unconditional removal, a panicking
/// leader would leave a dead `Abandoned` flight in the map forever,
/// permanently disabling coalescing for that fingerprint.
struct FlightGuard<'a> {
    flight: Arc<Flight>,
    shared: &'a Shared,
    fp: u128,
    published: bool,
}

impl FlightGuard<'_> {
    fn publish(&mut self, report: Arc<MultiReport>) {
        *self.flight.state.lock().unwrap() = FlightState::Done(report);
        self.flight.cv.notify_all();
        self.published = true;
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            *self.flight.state.lock().unwrap() = FlightState::Abandoned;
            self.flight.cv.notify_all();
        }
        self.shared.inflight.lock().unwrap().remove(&self.fp);
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    errors: AtomicU64,
    coalesced: AtomicU64,
    batched: AtomicU64,
}

/// Always-on request metrics (plain atomics — no recorder required):
/// latency distributions for the percentile gauges and the Prometheus
/// scrape, plus per-phase time totals.
struct Metrics {
    /// End-to-end optimize latency (frame received → reply handed to the
    /// connection thread), milliseconds.
    latency_ms: Histogram,
    /// Time jobs spent queued before a worker picked them up, ms.
    queue_wait_ms: Histogram,
    /// Total queue wait across all jobs, microseconds.
    queue_wait_us: AtomicU64,
    /// Total time inside the optimization pipeline (saturation + cache +
    /// extraction), microseconds.
    optimize_us: AtomicU64,
    /// Total time serializing replies, microseconds.
    serialize_us: AtomicU64,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            latency_ms: Histogram::latency_ms(),
            queue_wait_ms: Histogram::latency_ms(),
            queue_wait_us: AtomicU64::new(0),
            optimize_us: AtomicU64::new(0),
            serialize_us: AtomicU64::new(0),
        }
    }
}

struct Shared {
    config: ServerConfig,
    cache: Arc<SaturationCache>,
    /// The durable snapshot store, when `config.warm_dir` names one.
    store: Option<Arc<SnapshotStore>>,
    queue: Mutex<Vec<Job>>,
    queue_cv: Condvar,
    inflight: Mutex<HashMap<u128, Arc<Flight>>>,
    stopping: AtomicBool,
    counters: Counters,
    metrics: Metrics,
    /// Span recorder behind `config.trace_dir` — disabled (an atomic
    /// load and a branch per call site) when no trace directory is set.
    recorder: Arc<Recorder>,
    /// When the daemon started (the `liar_uptime_seconds` gauge).
    start: Instant,
    /// The always-on event ring the `introspect` op serves its tail
    /// from. Pipelines record cache hits/misses and snapshot restores
    /// into it; runners record rule firings, bans and budget
    /// truncations (only when `config.introspect` attaches it).
    flight: Arc<FlightRecorder>,
    /// Growth tables of the most recent *cold* saturation (`None` until
    /// one runs, or always with `config.introspect` off).
    inspect: Mutex<Option<InspectReport>>,
}

impl Shared {
    fn stats(&self) -> StatsResponse {
        let cache = self.cache.stats();
        let latency = self.metrics.latency_ms.snapshot();
        StatsResponse {
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_insertions: cache.insertions,
            cache_evictions: cache.evictions,
            cache_rejected: cache.rejected,
            cache_entries: cache.entries,
            cache_bytes: cache.bytes,
            requests: self.counters.requests.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            batched: self.counters.batched.load(Ordering::Relaxed),
            queue_depth: self.queue.lock().unwrap().len(),
            inflight: self.inflight.lock().unwrap().len(),
            latency_p50_ms: latency.quantile(0.50),
            latency_p95_ms: latency.quantile(0.95),
            latency_p99_ms: latency.quantile(0.99),
        }
    }

    /// Render every counter, gauge and histogram as Prometheus text
    /// exposition format (the `metrics` op; `liar stats --prometheus`).
    fn prometheus(&self) -> String {
        let s = self.stats();
        let us_to_s = |us: &AtomicU64| us.load(Ordering::Relaxed) as f64 / 1e6;
        let mut w = PromWriter::new();
        w.labeled_gauge(
            "liar_build_info",
            "Build metadata; the gauge is always 1",
            &[("version", env!("CARGO_PKG_VERSION"))],
            1.0,
        );
        w.gauge("liar_uptime_seconds", "Seconds since the daemon started", self.start.elapsed().as_secs_f64());
        w.counter("liar_requests_total", "Optimize requests accepted into the job queue", s.requests as f64);
        w.counter("liar_errors_total", "Error responses sent", s.errors as f64);
        w.counter("liar_coalesced_total", "Requests coalesced onto an identical in-flight computation", s.coalesced as f64);
        w.counter("liar_batched_total", "Jobs drained alongside a same-budget batch leader", s.batched as f64);
        w.counter("liar_cache_hits_total", "Saturation cache hits", s.cache_hits as f64);
        w.counter("liar_cache_misses_total", "Saturation cache misses", s.cache_misses as f64);
        w.counter("liar_cache_insertions_total", "Saturation cache insertions", s.cache_insertions as f64);
        w.counter("liar_cache_evictions_total", "Saturation cache evictions by the byte budget", s.cache_evictions as f64);
        w.counter("liar_cache_rejected_total", "Reports refused as larger than a cache shard", s.cache_rejected as f64);
        w.gauge("liar_cache_entries", "Live saturation cache entries", s.cache_entries as f64);
        w.gauge("liar_cache_bytes", "Estimated live saturation cache bytes", s.cache_bytes as f64);
        w.gauge("liar_queue_depth", "Jobs waiting in the bounded queue", s.queue_depth as f64);
        w.gauge("liar_inflight", "Single-flight computations running now", s.inflight as f64);
        w.counter("liar_phase_queue_wait_seconds_total", "Total time jobs waited in the queue", us_to_s(&self.metrics.queue_wait_us));
        w.counter("liar_phase_optimize_seconds_total", "Total time inside the optimization pipeline", us_to_s(&self.metrics.optimize_us));
        w.counter("liar_phase_serialize_seconds_total", "Total time serializing replies", us_to_s(&self.metrics.serialize_us));
        w.counter("liar_flight_events_total", "Flight-recorder events recorded since start", self.flight.total_recorded() as f64);
        w.counter("liar_flight_dropped_total", "Flight-recorder events evicted from the ring", self.flight.dropped() as f64);
        w.histogram("liar_request_latency_ms", "End-to-end optimize request latency, milliseconds", &self.metrics.latency_ms.snapshot());
        w.histogram("liar_queue_wait_ms", "Queue wait before a worker picked the job up, milliseconds", &self.metrics.queue_wait_ms.snapshot());
        w.finish()
    }

    fn begin_shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown`] (or send the `shutdown` op).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Bind `config.addr` and start the accept loop and worker pool.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cache = Arc::new(SaturationCache::new(config.cache_bytes));
        let store = match &config.warm_dir {
            Some(dir) => Some(Arc::new(SnapshotStore::open(dir)?)),
            None => None,
        };
        let recorder = if config.trace_dir.is_some() {
            Recorder::new()
        } else {
            Recorder::off()
        };
        let shared = Arc::new(Shared {
            cache,
            store,
            queue: Mutex::new(Vec::new()),
            queue_cv: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            stopping: AtomicBool::new(false),
            counters: Counters::default(),
            metrics: Metrics::new(),
            recorder,
            start: Instant::now(),
            flight: Arc::new(FlightRecorder::new(config.flight_capacity)),
            inspect: Mutex::new(None),
            config,
        });

        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("liar-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker")
            })
            .collect();

        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("liar-accept".to_string())
                .spawn(move || accept_loop(listener, &shared, &connections))
                .expect("spawn accept loop")
        };

        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            workers,
            connections,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the service + cache counters.
    pub fn stats(&self) -> StatsResponse {
        self.shared.stats()
    }

    /// The durable snapshot store, when the server was started with
    /// [`ServerConfig::warm_dir`].
    pub fn snapshot_store(&self) -> Option<&Arc<SnapshotStore>> {
        self.shared.store.as_ref()
    }

    /// Pre-saturate the PolyBench kernel corpus into the warm store, so
    /// the first client asking for any of them is answered by restore +
    /// extraction alone (`"cache":"warm"`, zero saturation steps).
    ///
    /// Each kernel runs through **exactly** the pipeline a defaulted
    /// `optimize` request would get (all targets, scale `1.0`, the
    /// identity profile, the server's default budgets), so the stored
    /// fingerprints match later client requests. A kernel already in the
    /// store restores instead of re-saturating, making repeat boots
    /// cheap.
    ///
    /// Returns `(saturated, warm)`: kernels computed cold vs answered
    /// from the store (or the in-memory cache). No-op without a store.
    pub fn prewarm_kernels(&self) -> (usize, usize) {
        if self.shared.store.is_none() {
            return (0, 0);
        }
        let cfg = &self.shared.config;
        let targets: Vec<Target> = Target::ALL.to_vec();
        let (mut saturated, mut warm) = (0, 0);
        for kernel in liar_kernels::Kernel::ALL {
            let expr = kernel.expr(kernel.search_size());
            let pipeline = job_pipeline(
                &self.shared,
                targets[0],
                cfg.default_steps,
                cfg.default_node_limit,
                false,
                vec![MachineProfile::default()],
            );
            match pipeline.optimize_multi_status(&expr, &targets, &[1.0]) {
                Ok((_, status)) if status.name() == "warm" || status.name() == "hit" => warm += 1,
                Ok(_) => saturated += 1,
                // Unextractable kernels (none today) just don't prewarm.
                Err(_) => {}
            }
        }
        (saturated, warm)
    }

    /// Whether a shutdown has been requested (via [`Server::shutdown`] or
    /// the `shutdown` op).
    pub fn stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::SeqCst)
    }

    /// Block until a shutdown is requested (the daemon main loop). Polls
    /// at the connection threads' cadence; follow with
    /// [`Server::shutdown`] to drain and join.
    pub fn wait(&self) {
        while !self.stopping() {
            std::thread::sleep(READ_POLL);
        }
    }

    /// Stop accepting, drain queued jobs, and join every thread.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        // Unblock `accept` by poking the listener.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let conns = std::mem::take(&mut *self.connections.lock().unwrap());
        for c in conns {
            let _ = c.join();
        }
        // Every thread has flushed its sinks; dump the Chrome trace.
        if let Some(dir) = &self.shared.config.trace_dir {
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(
                dir.join("serve-trace.json"),
                self.shared.recorder.chrome_trace_json(),
            );
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("liar-conn".to_string())
            .spawn(move || connection_loop(stream, &shared))
            .expect("spawn connection thread");
        let mut conns = connections.lock().unwrap();
        // Reap finished connection threads so a long-lived daemon serving
        // many short-lived connections does not accumulate handles.
        let mut i = 0;
        while i < conns.len() {
            if conns[i].is_finished() {
                let _ = conns.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        conns.push(handle);
    }
}

/// Poll interval connection threads use so they notice shutdown even
/// while blocked on an idle socket.
const READ_POLL: Duration = Duration::from_millis(200);

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    let max_frame = shared.config.max_frame;

    loop {
        let payload = match read_frame(&mut reader, max_frame) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF
            // Idle = timeout at a frame boundary, nothing consumed: the
            // read-timeout is our shutdown poll cadence. (Timeouts *inside*
            // a frame are retried by read_frame itself, so a slow client
            // cannot desynchronize the stream.)
            Err(FrameError::Idle) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(FrameError::Io(_)) => return,
            Err(FrameError::TooLarge { len, max, recovered }) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    id: None,
                    code: ErrorCode::FrameTooLarge,
                    message: format!("frame of {len} bytes exceeds the {max}-byte limit"),
                };
                let _ = write_frame(&mut writer, &resp.to_payload());
                if recovered {
                    continue; // stream is still frame-aligned
                }
                return;
            }
            Err(FrameError::BadHeader(h)) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    id: None,
                    code: ErrorCode::BadFrame,
                    message: format!("malformed frame header {h:?}"),
                };
                let _ = write_frame(&mut writer, &resp.to_payload());
                return; // unrecoverable: close
            }
        };

        let response = handle_payload(&payload, shared);
        let is_shutdown = matches!(response, Response::ShuttingDown);
        if matches!(response, Response::Error { .. }) {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        if write_frame(&mut writer, &response.to_payload()).is_err() {
            return;
        }
        if is_shutdown {
            shared.begin_shutdown();
            return;
        }
    }
}

/// Parse, validate, enqueue and await one request payload.
fn handle_payload(payload: &[u8], shared: &Arc<Shared>) -> Response {
    let request = match Request::from_payload(payload) {
        Ok(r) => r,
        Err((code, message)) => {
            return Response::Error {
                id: None,
                code,
                message,
            }
        }
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(shared.stats()),
        Request::Metrics => Response::Metrics(MetricsResponse {
            prometheus: shared.prometheus(),
        }),
        // Introspection reads already-folded state (one mutex clone + a
        // ring tail), so it is answered inline like `stats`.
        Request::Introspect { tail } => Response::Introspect(IntrospectResponse {
            report: shared.inspect.lock().unwrap().clone(),
            flight: shared.flight.tail(tail),
            flight_dropped: shared.flight.dropped(),
            flight_total: shared.flight.total_recorded(),
        }),
        Request::Shutdown => Response::ShuttingDown,
        // Snapshot traffic is I/O-bound (disk + wire, no saturation), so
        // it is answered inline on the connection thread rather than
        // competing with optimizations for workers.
        Request::Snapshot(req) => handle_snapshot(req, shared),
        Request::Restore(req) => handle_restore(req, shared),
        Request::Optimize(req) => {
            if shared.stopping.load(Ordering::SeqCst) {
                return Response::Error {
                    id: req.id,
                    code: ErrorCode::ShuttingDown,
                    message: "server is shutting down".to_string(),
                };
            }
            let (job, rx) = match make_job(req, shared) {
                Ok(pair) => pair,
                Err(resp) => return *resp,
            };
            {
                let mut queue = shared.queue.lock().unwrap();
                // Re-check under the queue lock: workers only exit after
                // observing (stopping && queue empty) under this same
                // lock, so a push that wins the lock with stopping still
                // false is guaranteed to be drained. Without this check a
                // job pushed after the workers exited would strand its
                // reply channel and hang the connection thread.
                if shared.stopping.load(Ordering::SeqCst) {
                    return Response::Error {
                        id: job.id,
                        code: ErrorCode::ShuttingDown,
                        message: "server is shutting down".to_string(),
                    };
                }
                if queue.len() >= shared.config.queue_cap {
                    return Response::Error {
                        id: job.id,
                        code: ErrorCode::QueueFull,
                        message: format!(
                            "job queue is at capacity ({}); retry later",
                            shared.config.queue_cap
                        ),
                    };
                }
                queue.push(job);
                // Counted only once actually accepted into the queue —
                // rejected submissions show up in `errors`, not here.
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                shared.queue_cv.notify_one();
            }
            match rx.recv() {
                Ok(resp) => resp,
                Err(_) => Response::Error {
                    id: None,
                    code: ErrorCode::ShuttingDown,
                    message: "worker pool exited before the job completed".to_string(),
                },
            }
        }
    }
}

/// Parse a request fingerprint: up to 32 hex digits (the canonical form
/// [`Fingerprint`]'s `Display` emits).
fn parse_fingerprint(s: &str) -> Option<Fingerprint> {
    if s.is_empty() || s.len() > 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u128::from_str_radix(s, 16).ok().map(Fingerprint)
}

/// Serve a `snapshot` op: read the stored e-graph for a fingerprint and
/// ship it hex-encoded.
fn handle_snapshot(req: SnapshotRequest, shared: &Arc<Shared>) -> Response {
    let Some(store) = &shared.store else {
        return Response::Error {
            id: req.id,
            code: ErrorCode::NoStore,
            message: "no snapshot store attached (start the server with a warm directory)".into(),
        };
    };
    let Some(fp) = parse_fingerprint(&req.fingerprint) else {
        return Response::Error {
            id: req.id,
            code: ErrorCode::BadRequest,
            message: format!(
                "\"fingerprint\" must be 1–32 hex digits, got {:?}",
                req.fingerprint
            ),
        };
    };
    match store.load(fp) {
        Some((stop_reason, bytes)) => Response::Snapshot(SnapshotResponse {
            id: req.id,
            fingerprint: fp.to_string(),
            stop_reason: stop_reason.to_string(),
            snapshot_hex: protocol::to_hex(&bytes),
        }),
        None => Response::Error {
            id: req.id,
            code: ErrorCode::UnknownSnapshot,
            message: format!("no snapshot stored under fingerprint {fp}"),
        },
    }
}

/// Serve a `restore` op: decode, **validate by actually restoring**, and
/// persist a shipped snapshot. A snapshot that does not restore to a
/// live e-graph never touches the store.
fn handle_restore(req: RestoreRequest, shared: &Arc<Shared>) -> Response {
    let err = |id: Option<String>, code, message: String| Response::Error { id, code, message };
    let Some(store) = &shared.store else {
        return err(
            req.id,
            ErrorCode::NoStore,
            "no snapshot store attached (start the server with a warm directory)".into(),
        );
    };
    let Some(fp) = parse_fingerprint(&req.fingerprint) else {
        return err(
            req.id,
            ErrorCode::BadRequest,
            format!("\"fingerprint\" must be 1–32 hex digits, got {:?}", req.fingerprint),
        );
    };
    let Some(stop_reason) = stop_reason_from_name(&req.stop_reason) else {
        return err(
            req.id,
            ErrorCode::BadSnapshot,
            format!("unknown stop reason {:?}", req.stop_reason),
        );
    };
    let Some(bytes) = protocol::from_hex(&req.snapshot_hex) else {
        return err(
            req.id,
            ErrorCode::BadSnapshot,
            "\"snapshot_hex\" is not valid hex".into(),
        );
    };
    let graph = match ArrayEGraph::restore(ArrayAnalysis::default(), &bytes) {
        Ok(g) => g,
        Err(e) => return err(req.id, ErrorCode::BadSnapshot, e.to_string()),
    };
    if let Err(e) = store.save(fp, &stop_reason, &bytes) {
        return err(
            req.id,
            ErrorCode::StoreFailed,
            format!("failed to persist the snapshot: {e}"),
        );
    }
    Response::Restored(RestoreResponse {
        id: req.id,
        fingerprint: fp.to_string(),
        n_nodes: graph.num_nodes(),
        n_classes: graph.num_classes(),
    })
}

/// The pipeline a validated job runs. `prewarm_kernels` builds pipelines
/// through this same function, so boot-time snapshots land under the
/// fingerprints later client requests compute.
fn job_pipeline(
    shared: &Arc<Shared>,
    lead_target: Target,
    steps: usize,
    node_limit: usize,
    explain: bool,
    profiles: Vec<MachineProfile>,
) -> Liar {
    let mut pipeline = Liar::new(lead_target)
        .with_iter_limit(steps)
        .with_node_limit(node_limit)
        .with_threads(shared.config.search_threads)
        .with_explanations(explain)
        .with_profiles(profiles)
        .with_cache(Arc::clone(&shared.cache));
    if let Some(store) = &shared.store {
        pipeline = pipeline.with_snapshot_store(Arc::clone(store));
    }
    if shared.recorder.is_enabled() {
        // Saturation/extraction spans land in the same trace as the
        // serve-layer request spans.
        pipeline = pipeline.with_trace(Arc::clone(&shared.recorder));
    }
    if shared.config.introspect {
        pipeline = pipeline
            .with_attribution(true)
            .with_flight(Arc::clone(&shared.flight));
    }
    pipeline
}

/// Validate an optimize request into a runnable job.
fn make_job(
    req: OptimizeRequest,
    shared: &Arc<Shared>,
) -> Result<(Job, mpsc::Receiver<Response>), Box<Response>> {
    let cfg = &shared.config;
    let err = |code, message: String| {
        Box::new(Response::Error {
            id: req.id.clone(),
            code,
            message,
        })
    };

    let expr: Expr = match req.program.parse() {
        Ok(e) => e,
        Err(e) => return Err(err(ErrorCode::ParseError, e.to_string())),
    };
    let mut targets = Vec::new();
    if req.targets.is_empty() {
        targets.extend(Target::ALL);
    } else {
        for name in &req.targets {
            match target_from_wire(name) {
                // Dedupe, preserving first-occurrence order.
                Some(t) if !targets.contains(&t) => targets.push(t),
                Some(_) => {}
                None => {
                    return Err(err(
                        ErrorCode::UnknownTarget,
                        format!("unknown target {name:?} (expected blas | pytorch | pure-c)"),
                    ))
                }
            }
        }
    }
    let discount_scales = if req.discount_scales.is_empty() {
        vec![1.0]
    } else {
        if req.discount_scales.len() > cfg.max_discount_scales {
            return Err(err(
                ErrorCode::BudgetTooLarge,
                format!(
                    "{} discount scales exceeds the server cap {} (each scale is a full \
                     per-target extraction)",
                    req.discount_scales.len(),
                    cfg.max_discount_scales
                ),
            ));
        }
        req.discount_scales.clone()
    };
    let mut profiles = Vec::new();
    if req.profiles.is_empty() {
        profiles.push(MachineProfile::default());
    } else {
        // Each profile is a full per-target extraction, exactly like a
        // discount scale — the same budget cap applies.
        if req.profiles.len() > cfg.max_discount_scales {
            return Err(err(
                ErrorCode::BudgetTooLarge,
                format!(
                    "{} machine profiles exceeds the server cap {} (each profile is a full \
                     per-target extraction)",
                    req.profiles.len(),
                    cfg.max_discount_scales
                ),
            ));
        }
        for name in &req.profiles {
            match MachineProfile::by_name(name) {
                // Dedupe, preserving first-occurrence order.
                Some(p) if !profiles.contains(&p) => profiles.push(p),
                Some(_) => {}
                None => {
                    return Err(err(
                        ErrorCode::UnknownProfile,
                        format!(
                            "unknown machine profile {name:?} (expected one of {:?})",
                            MachineProfile::ALL_NAMES
                        ),
                    ))
                }
            }
        }
    }
    let steps = req.steps.unwrap_or(cfg.default_steps);
    if steps > cfg.max_steps {
        return Err(err(
            ErrorCode::BudgetTooLarge,
            format!("steps {} exceeds the server cap {}", steps, cfg.max_steps),
        ));
    }
    let node_limit = req.node_limit.unwrap_or(cfg.default_node_limit);
    if node_limit > cfg.max_node_limit {
        return Err(err(
            ErrorCode::BudgetTooLarge,
            format!(
                "node_limit {} exceeds the server cap {}",
                node_limit, cfg.max_node_limit
            ),
        ));
    }

    let pipeline = job_pipeline(shared, targets[0], steps, node_limit, req.explain, profiles);
    let fingerprint = pipeline.request_fingerprint(&expr, &targets, &discount_scales);
    let budget_key = {
        let knobs = pipeline.budget_knobs();
        let mut h = StableHasher::new();
        h.u64(knobs.iter_limit as u64);
        h.u64(knobs.node_limit as u64);
        h.u64(knobs.match_limit as u64);
        // Explained saturations pay provenance bookkeeping — a different
        // cost profile, so they batch with their own kind.
        h.u64(knobs.explain as u64);
        h.finish() as u64
    };

    let (tx, rx) = mpsc::channel();
    Ok((
        Job {
            id: req.id,
            expr,
            targets,
            discount_scales,
            pipeline,
            fingerprint,
            budget_key,
            received: Instant::now(),
            reply: tx,
        },
        rx,
    ))
}

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    let mut sink = TraceSink::attached(&shared.recorder, &format!("worker-{index}"));
    loop {
        let batch = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).unwrap();
            }
            // Pop the oldest job, then drain every queued job that shares
            // its saturation budget (up to batch_max) — one queue
            // interaction feeds a whole run of same-configuration work.
            let leader = queue.remove(0);
            let mut batch = vec![leader];
            let mut i = 0;
            while i < queue.len() && batch.len() < shared.config.batch_max {
                if queue[i].budget_key == batch[0].budget_key {
                    batch.push(queue.remove(i));
                } else {
                    i += 1;
                }
            }
            if batch.len() > 1 {
                shared
                    .counters
                    .batched
                    .fetch_add(batch.len() as u64 - 1, Ordering::Relaxed);
            }
            batch
        };
        for job in batch {
            process_job(job, shared, &mut sink);
        }
        // Make this round's spans visible to concurrent `metrics`
        // scrapers and the shutdown dump.
        sink.flush();
    }
}

/// Execute one job through the cache + single-flight layers and reply.
///
/// The request's trace id (its protocol `id`, falling back to the
/// fingerprint) names the `request/<id>` span; `optimize` /
/// `coalesce/wait` / `serialize` child spans carry the phase breakdown,
/// and queue wait rides along as a span argument (it elapsed before the
/// worker existed, so it cannot be its own span here).
fn process_job(job: Job, shared: &Arc<Shared>, sink: &mut TraceSink) {
    let fp = job.fingerprint;
    let queue_wait = job.received.elapsed();
    shared
        .metrics
        .queue_wait_ms
        .observe(queue_wait.as_secs_f64() * 1e3);
    shared
        .metrics
        .queue_wait_us
        .fetch_add(queue_wait.as_micros() as u64, Ordering::Relaxed);
    let req_span = match &job.id {
        Some(id) => sink.begin_args(format_args!("request/{id}")),
        None => sink.begin_args(format_args!("request/{fp}")),
    };
    // Single-flight: join an identical in-flight computation if one
    // exists, otherwise become the leader.
    let (flight, leader) = {
        let mut inflight = shared.inflight.lock().unwrap();
        match inflight.get(&fp.0) {
            Some(flight) => (Arc::clone(flight), false),
            None => {
                let flight = Arc::new(Flight {
                    state: Mutex::new(FlightState::Running),
                    cv: Condvar::new(),
                });
                inflight.insert(fp.0, Arc::clone(&flight));
                (flight, true)
            }
        }
    };

    // A timed + traced run of the optimization pipeline (the leader path
    // and the abandoned-flight fallback share it).
    let run_pipeline = |sink: &mut TraceSink| {
        let span = sink.begin("optimize");
        let start = Instant::now();
        let result = job
            .pipeline
            .optimize_multi_status(&job.expr, &job.targets, &job.discount_scales);
        shared
            .metrics
            .optimize_us
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        sink.end_with(span, &[("ok", result.is_ok() as u8 as f64)]);
        result
    };

    let outcome = if leader {
        let mut guard = FlightGuard {
            flight: Arc::clone(&flight),
            shared,
            fp: fp.0,
            published: false,
        };
        match run_pipeline(sink) {
            Ok((report, status)) => {
                let report = Arc::new(report);
                guard.publish(Arc::clone(&report));
                drop(guard); // removes the in-flight entry
                Ok((report, status.name()))
            }
            // The guard drops unpublished, marking the flight
            // abandoned: waiters recompute and re-derive the same
            // structured error (unextractable requests are rare and
            // cheap — extraction fails fast, and errors are never
            // cached). Before extraction errors were structured, this
            // path was a panic that killed the worker thread for good.
            Err(e) => Err(e),
        }
    } else {
        let wait_span = sink.begin("coalesce/wait");
        let published = {
            let mut state = flight.state.lock().unwrap();
            loop {
                match &*state {
                    FlightState::Running => state = flight.cv.wait(state).unwrap(),
                    FlightState::Done(report) => break Some(Arc::clone(report)),
                    FlightState::Abandoned => break None,
                }
            }
        };
        sink.end_with(
            wait_span,
            &[("published", published.is_some() as u8 as f64)],
        );
        match published {
            Some(report) => {
                shared.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                Ok((report, "coalesced"))
            }
            // Leader died or hit an error; compute directly (the
            // cache may well cover it by now anyway).
            None => run_pipeline(sink)
                .map(|(report, status)| (Arc::new(report), status.name())),
        }
    };

    // Retain the newest growth tables for the `introspect` op. Replayed
    // (hit/coalesced) reports carry the tables of the cold run that
    // produced them, so "latest report with tables" is "latest cold
    // saturation".
    if let Ok((report, _)) = &outcome {
        if let Some(inspect) = &report.inspect {
            *shared.inspect.lock().unwrap() = Some(inspect.clone());
        }
    }

    let response = match &outcome {
        Ok((report, verdict)) => {
            let span = sink.begin("serialize");
            let start = Instant::now();
            let resp = Response::Optimize(build_response(&job, report, verdict.to_string()));
            shared
                .metrics
                .serialize_us
                .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
            sink.end(span);
            resp
        }
        Err(e) => unextractable(&job, e),
    };
    // Observe latency *before* handing the response to the connection
    // thread: once the client has the reply it may immediately scrape
    // `stats`/`metrics`, and this request must already be in the
    // histogram (the omitted tail is just the channel send).
    shared
        .metrics
        .latency_ms
        .observe(job.received.elapsed().as_secs_f64() * 1e3);
    let _ = job.reply.send(response);
    sink.end_with(
        req_span,
        &[
            ("queue_ms", queue_wait.as_secs_f64() * 1e3),
            ("coalesced", (!leader) as u8 as f64),
            ("ok", outcome.is_ok() as u8 as f64),
        ],
    );
}

/// The structured reply for a request whose best term has infinite cost
/// under some `(target, discount_scale, profile)` — extraction has no
/// answer, but the worker and the connection live on.
fn unextractable(job: &Job, e: &OptimizeError) -> Response {
    Response::Error {
        id: job.id.clone(),
        code: ErrorCode::Unextractable,
        message: e.to_string(),
    }
}

fn build_response(job: &Job, report: &MultiReport, cache: String) -> OptimizeResponse {
    // Steps the server ran *for this answer*: replayed (hit/coalesced)
    // and restored (warm) answers did no saturation — their reports may
    // still describe the original run's steps (or none at all).
    let saturation_steps = match cache.as_str() {
        "miss" | "uncached" => report.steps.len().saturating_sub(1),
        _ => 0,
    };
    OptimizeResponse {
        id: job.id.clone(),
        fingerprint: job.fingerprint.to_string(),
        cache,
        stop_reason: report.stop_reason.to_string(),
        n_nodes: report.n_nodes,
        n_classes: report.n_classes,
        saturation_s: report.saturation_time.as_secs_f64(),
        saturation_steps,
        server_ms: job.received.elapsed().as_secs_f64() * 1e3,
        solutions: report
            .solutions
            .iter()
            .map(|s| SolutionMsg {
                target: s.target.name().to_string(),
                discount_scale: s.discount_scale,
                profile: s.profile.clone(),
                cost: s.cost,
                dag_cost: s.dag_cost,
                solution: s.solution_summary(),
                best: s.best.to_string(),
                lib_calls: s.lib_calls.clone(),
                proof: s.proof.as_ref().map(ProofMsg::from_explanation),
            })
            .collect(),
    }
}
