//! The serve wire protocol: length-prefixed JSON frames over TCP, and the
//! typed request/response messages they carry.
//!
//! # Framing
//!
//! Each message is one frame:
//!
//! ```text
//! <payload length in bytes, ASCII decimal>\n
//! <payload: exactly that many bytes of UTF-8 JSON>
//! ```
//!
//! The decimal header is at most [`MAX_HEADER_DIGITS`] digits. A reader
//! enforces a maximum payload size; oversized frames are *skimmed*
//! (their payload is read and discarded, up to a small multiple of the
//! limit) so the server can answer with a structured error and keep the
//! connection alive, while a malformed header is unrecoverable — the
//! stream has lost synchronization — and closes the connection after one
//! error response.
//!
//! # Requests
//!
//! The payload is a JSON object with an `op` field:
//!
//! * `{"op":"optimize", "program": "<s-expression>", ...}` — optimize a
//!   program; see [`OptimizeRequest`] for the optional knobs.
//! * `{"op":"explain", "program": "<s-expression>", ...}` — same knobs,
//!   but the pipeline runs with proof production on and every solution
//!   in the response carries a replayable [`ProofMsg`] certificate.
//! * `{"op":"stats"}` — cache and service counters, queue-depth and
//!   in-flight gauges, and p50/p95/p99 request-latency percentiles.
//! * `{"op":"metrics"}` — the full metric set (counters, gauges,
//!   latency histograms, per-phase time totals) rendered server-side as
//!   Prometheus text exposition format; see [`MetricsResponse`].
//! * `{"op":"introspect", "tail": 64}` — live e-graph introspection:
//!   the growth-attribution tables of the most recent cold saturation
//!   (per-rule funnel, composition by operator) plus the last `tail`
//!   flight-recorder events; see [`IntrospectResponse`].
//! * `{"op":"ping"}` — liveness probe.
//! * `{"op":"shutdown"}` — ask the daemon to drain and exit (the daemon
//!   is an unauthenticated loopback service; do not expose it beyond
//!   localhost).
//!
//! # Responses
//!
//! Every response carries `"ok": true|false`. Successful optimizations
//! carry the request fingerprint, the cache verdict (`hit` / `miss` /
//! `coalesced`), and one entry per `(target, discount_scale, profile)`
//! triple; see [`OptimizeResponse`]. Failures carry a machine-readable
//! [`ErrorCode`] — including [`ErrorCode::Unextractable`] when no
//! equivalent of the program has finite cost under a requested cost
//! model.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use liar_core::{InspectReport, OpRow, RuleRow, Target};
use liar_egraph::explain::canonical_expr;
use liar_egraph::{Direction, ProofStep};
use liar_ir::{ArrayExplanation, Expr};
use liar_trace::{FlightEvent, FlightKind};

use crate::json::{self, Json};

/// Default cap on a frame's payload size (1 MiB — kernels are a few
/// hundred bytes; this is generous headroom, not a promise).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Maximum digits in the length header (9 digits < 1 GB).
pub const MAX_HEADER_DIGITS: usize = 9;

/// Flight-recorder events an `introspect` request returns when it names
/// no `tail`.
pub const DEFAULT_INTROSPECT_TAIL: usize = 64;

/// How much oversized payload a reader is willing to skim before it
/// declares the connection hopeless (multiple of its `max_frame`).
const SKIM_FACTOR: usize = 16;

/// How long a reader keeps retrying timed-out reads once a frame has
/// *started* (slow-client tolerance; a stalled half-frame past this is an
/// error, which also bounds slowloris-style dribbling).
pub const MID_FRAME_DEADLINE: std::time::Duration = std::time::Duration::from_secs(30);

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed or hit EOF mid-frame.
    Io(io::Error),
    /// A read timeout fired **at a frame boundary** (no byte of the next
    /// frame consumed). The stream is still aligned; callers that poll
    /// with a read timeout should treat this as "no traffic yet" and
    /// retry. Timeouts *inside* a frame keep being retried until
    /// [`MID_FRAME_DEADLINE`], then surface as [`FrameError::Io`].
    Idle,
    /// The length header was not `<digits>\n`. Unrecoverable: the stream
    /// is no longer frame-aligned.
    BadHeader(String),
    /// The advertised payload exceeds the reader's limit. The payload
    /// was skimmed if `recovered` is true, so the connection can go on.
    TooLarge {
        /// Advertised payload length.
        len: usize,
        /// The reader's limit.
        max: usize,
        /// Whether the payload was skimmed off the stream (frame
        /// alignment preserved).
        recovered: bool,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Idle => write!(f, "read timed out at a frame boundary"),
            FrameError::BadHeader(h) => write!(f, "malformed frame header {h:?}"),
            FrameError::TooLarge { len, max, .. } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    writeln!(w, "{}", payload.len())?;
    w.write_all(payload)?;
    w.flush()
}

/// Whether an I/O error is a read-timeout on a socket with a read
/// timeout configured.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// One `read` that retries timeouts until the mid-frame deadline. The
/// `started` timer is set when the first byte of the frame arrives, so a
/// reader polling an idle socket never hits the deadline path.
fn read_retrying(
    r: &mut impl Read,
    buf: &mut [u8],
    started: std::time::Instant,
) -> Result<usize, FrameError> {
    loop {
        match r.read(buf) {
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                if started.elapsed() > MID_FRAME_DEADLINE {
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    )));
                }
                // The socket's read timeout is the poll cadence; loop.
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
}

/// Read one frame's payload. `Ok(None)` means the peer closed the
/// connection cleanly (EOF at a frame boundary).
///
/// Designed for sockets with a read timeout: a timeout *before* the
/// frame's first byte returns [`FrameError::Idle`] with nothing consumed
/// (the caller can check for shutdown and call again); once a frame has
/// started, timed-out reads are retried so a slow peer cannot
/// desynchronize the stream, up to [`MID_FRAME_DEADLINE`].
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Vec<u8>>, FrameError> {
    // Header: ASCII digits then '\n'.
    let mut header = Vec::with_capacity(MAX_HEADER_DIGITS + 1);
    let mut byte = [0u8; 1];
    let mut started = None;
    loop {
        let n = match started {
            // Nothing consumed yet: a timeout here is a clean idle poll.
            None => match r.read(&mut byte) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if is_timeout(&e) => return Err(FrameError::Idle),
                Err(e) => return Err(FrameError::Io(e)),
            },
            Some(at) => read_retrying(r, &mut byte, at)?,
        };
        if n == 0 {
            if header.is_empty() && started.is_none() {
                return Ok(None);
            }
            return Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside frame header",
            )));
        }
        started.get_or_insert_with(std::time::Instant::now);
        match byte[0] {
            b'\n' => break,
            b'0'..=b'9' if header.len() < MAX_HEADER_DIGITS => header.push(byte[0]),
            _ => {
                header.push(byte[0]);
                return Err(FrameError::BadHeader(
                    String::from_utf8_lossy(&header).into_owned(),
                ));
            }
        }
    }
    let started = started.expect("consumed at least the newline");
    if header.is_empty() {
        return Err(FrameError::BadHeader("<empty>".to_string()));
    }
    let len: usize = std::str::from_utf8(&header)
        .expect("digits are UTF-8")
        .parse()
        .map_err(|_| FrameError::BadHeader(String::from_utf8_lossy(&header).into_owned()))?;
    if len > max_frame {
        // Skim the payload so the stream stays frame-aligned — unless the
        // claim is absurd, in which case give up rather than stream it.
        let recovered = len <= max_frame.saturating_mul(SKIM_FACTOR);
        if recovered {
            let mut chunk = [0u8; 4096];
            let mut remaining = len;
            while remaining > 0 {
                let want = remaining.min(chunk.len());
                let n = read_retrying(r, &mut chunk[..want], started)?;
                if n == 0 {
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside oversized payload",
                    )));
                }
                remaining -= n;
            }
        }
        return Err(FrameError::TooLarge {
            len,
            max: max_frame,
            recovered,
        });
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        let n = read_retrying(r, &mut payload[filled..], started)?;
        if n == 0 {
            return Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside frame payload",
            )));
        }
        filled += n;
    }
    Ok(Some(payload))
}

/// Machine-readable error classes (the `code` field of error responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The payload was not valid JSON.
    BadJson,
    /// The JSON was valid but not a well-formed request.
    BadRequest,
    /// The `program` field failed to parse as an IR expression.
    ParseError,
    /// A target name was not recognized.
    UnknownTarget,
    /// A requested budget exceeds the server's configured ceiling.
    BudgetTooLarge,
    /// The job queue is full — back off and retry.
    QueueFull,
    /// A machine-profile name was not recognized.
    UnknownProfile,
    /// No equivalent of the program has finite cost for some requested
    /// `(target, discount_scale, profile)` — extraction has no answer.
    Unextractable,
    /// A frame exceeded the server's size limit.
    FrameTooLarge,
    /// The frame stream lost synchronization (malformed header).
    BadFrame,
    /// The server is shutting down.
    ShuttingDown,
    /// The server has no durable snapshot store attached (`snapshot` /
    /// `restore` need `liar serve --warm <dir>`).
    NoStore,
    /// No snapshot is stored under the requested fingerprint.
    UnknownSnapshot,
    /// The shipped snapshot bytes failed to restore (bad magic, version
    /// mismatch, checksum failure, …) or the stop reason was not a known
    /// wire name. The server's store is untouched.
    BadSnapshot,
    /// The snapshot restored fine but persisting it to the store failed
    /// (disk full, permissions, …).
    StoreFailed,
}

impl ErrorCode {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::ParseError => "parse-error",
            ErrorCode::UnknownTarget => "unknown-target",
            ErrorCode::BudgetTooLarge => "budget-too-large",
            ErrorCode::UnknownProfile => "unknown-profile",
            ErrorCode::Unextractable => "unextractable",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::NoStore => "no-store",
            ErrorCode::UnknownSnapshot => "unknown-snapshot",
            ErrorCode::BadSnapshot => "bad-snapshot",
            ErrorCode::StoreFailed => "store-failed",
        }
    }

    /// Parse a wire name.
    pub fn from_name(name: &str) -> Option<ErrorCode> {
        [
            ErrorCode::BadJson,
            ErrorCode::BadRequest,
            ErrorCode::ParseError,
            ErrorCode::UnknownTarget,
            ErrorCode::BudgetTooLarge,
            ErrorCode::UnknownProfile,
            ErrorCode::Unextractable,
            ErrorCode::QueueFull,
            ErrorCode::FrameTooLarge,
            ErrorCode::BadFrame,
            ErrorCode::ShuttingDown,
            ErrorCode::NoStore,
            ErrorCode::UnknownSnapshot,
            ErrorCode::BadSnapshot,
            ErrorCode::StoreFailed,
        ]
        .into_iter()
        .find(|c| c.name() == name)
    }
}

/// Parse a target's wire name (the same aliases the CLI accepts).
pub fn target_from_wire(name: &str) -> Option<Target> {
    match name {
        "blas" => Some(Target::Blas),
        "pytorch" | "torch" => Some(Target::Torch),
        "pure-c" | "purec" | "c" => Some(Target::PureC),
        _ => None,
    }
}

/// Hex-encode bytes (lowercase) for shipping binary snapshots inside the
/// JSON protocol.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

/// Decode a hex string (either case) back to bytes. `None` on odd length
/// or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

/// A `snapshot` request: fetch the stored e-graph snapshot for a request
/// fingerprint, so it can be shipped to (and restored on) another serve
/// node.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotRequest {
    /// Optional client-chosen id, echoed in the response.
    pub id: Option<String>,
    /// The request fingerprint, 32 hex digits (the `fingerprint` field
    /// of an earlier [`OptimizeResponse`]).
    pub fingerprint: String,
}

impl SnapshotRequest {
    fn to_json(&self) -> Json {
        let mut pairs = vec![("op".to_string(), Json::Str("snapshot".into()))];
        if let Some(id) = &self.id {
            pairs.push(("id".to_string(), Json::Str(id.clone())));
        }
        pairs.push(("fingerprint".to_string(), Json::Str(self.fingerprint.clone())));
        Json::Obj(pairs)
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let fingerprint = j
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("missing string field \"fingerprint\"")?
            .to_string();
        let id = match j.get("id") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_str().ok_or("\"id\" must be a string")?.to_string()),
        };
        Ok(SnapshotRequest { id, fingerprint })
    }
}

/// A `restore` request: ship a snapshot (typically fetched from another
/// node with the `snapshot` op) into this server's durable store. The
/// server restores the bytes before saving, so a corrupt snapshot is
/// rejected with [`ErrorCode::BadSnapshot`] instead of poisoning the
/// store.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoreRequest {
    /// Optional client-chosen id, echoed in the response.
    pub id: Option<String>,
    /// The request fingerprint the snapshot answers, 32 hex digits.
    pub fingerprint: String,
    /// Why the original saturation stopped (the `stop_reason` wire name
    /// of the run that produced the snapshot).
    pub stop_reason: String,
    /// The snapshot bytes, hex-encoded ([`to_hex`]).
    pub snapshot_hex: String,
}

impl RestoreRequest {
    fn to_json(&self) -> Json {
        let mut pairs = vec![("op".to_string(), Json::Str("restore".into()))];
        if let Some(id) = &self.id {
            pairs.push(("id".to_string(), Json::Str(id.clone())));
        }
        pairs.extend([
            ("fingerprint".to_string(), Json::Str(self.fingerprint.clone())),
            ("stop_reason".to_string(), Json::Str(self.stop_reason.clone())),
            ("snapshot_hex".to_string(), Json::Str(self.snapshot_hex.clone())),
        ]);
        Json::Obj(pairs)
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let field = |name: &str| -> Result<String, String> {
            j.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("missing string field \"{name}\""))
        };
        let id = match j.get("id") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_str().ok_or("\"id\" must be a string")?.to_string()),
        };
        Ok(RestoreRequest {
            id,
            fingerprint: field("fingerprint")?,
            stop_reason: field("stop_reason")?,
            snapshot_hex: field("snapshot_hex")?,
        })
    }
}

/// An `optimize` (or `explain`) request: a program plus the knobs that
/// are part of the request fingerprint. Missing knobs take the server's
/// defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// Optional client-chosen id, echoed in the response.
    pub id: Option<String>,
    /// The program, in the IR's s-expression syntax.
    pub program: String,
    /// Target names (wire names; empty means the server default, all
    /// three targets).
    pub targets: Vec<String>,
    /// Discount scales (empty means `[1.0]`).
    pub discount_scales: Vec<f64>,
    /// Machine-profile names to extract under (empty means
    /// `["default"]`). Profiles re-weight the cost model per machine —
    /// saturation runs once, extraction runs once per profile — and are
    /// part of the request fingerprint.
    pub profiles: Vec<String>,
    /// Saturation-step limit.
    pub steps: Option<usize>,
    /// E-node budget.
    pub node_limit: Option<usize>,
    /// Proof production: `true` serializes as the `explain` op, the
    /// server runs the pipeline with explanations enabled, and every
    /// solution in the response carries a [`ProofMsg`]. Part of the
    /// request fingerprint (explained and fast-path runs never share a
    /// cache entry), and cached explained reports replay their proofs
    /// bit-identically.
    pub explain: bool,
}

impl OptimizeRequest {
    /// A request for `program` with every knob defaulted.
    pub fn new(program: impl Into<String>) -> Self {
        OptimizeRequest {
            id: None,
            program: program.into(),
            targets: Vec::new(),
            discount_scales: Vec::new(),
            profiles: Vec::new(),
            steps: None,
            node_limit: None,
            explain: false,
        }
    }

    fn to_json(&self) -> Json {
        let op = if self.explain { "explain" } else { "optimize" };
        let mut pairs = vec![("op".to_string(), Json::Str(op.into()))];
        if let Some(id) = &self.id {
            pairs.push(("id".to_string(), Json::Str(id.clone())));
        }
        pairs.push(("program".to_string(), Json::Str(self.program.clone())));
        if !self.targets.is_empty() {
            pairs.push((
                "targets".to_string(),
                Json::Arr(self.targets.iter().map(|t| Json::Str(t.clone())).collect()),
            ));
        }
        if !self.discount_scales.is_empty() {
            pairs.push((
                "discount_scales".to_string(),
                Json::Arr(self.discount_scales.iter().map(|s| Json::Num(*s)).collect()),
            ));
        }
        if !self.profiles.is_empty() {
            pairs.push((
                "profiles".to_string(),
                Json::Arr(self.profiles.iter().map(|p| Json::Str(p.clone())).collect()),
            ));
        }
        if let Some(steps) = self.steps {
            pairs.push(("steps".to_string(), Json::Num(steps as f64)));
        }
        if let Some(limit) = self.node_limit {
            pairs.push(("node_limit".to_string(), Json::Num(limit as f64)));
        }
        Json::Obj(pairs)
    }

    fn from_json(j: &Json, explain: bool) -> Result<Self, String> {
        let program = j
            .get("program")
            .and_then(Json::as_str)
            .ok_or("missing string field \"program\"")?
            .to_string();
        let id = match j.get("id") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_str().ok_or("\"id\" must be a string")?.to_string()),
        };
        let targets = match j.get("targets") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or("\"targets\" must be an array of strings")?
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_string)
                        .ok_or("\"targets\" must be an array of strings")
                })
                .collect::<Result<_, _>>()?,
        };
        let discount_scales = match j.get("discount_scales") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or("\"discount_scales\" must be an array of numbers")?
                .iter()
                .map(|s| {
                    s.as_f64()
                        .filter(|s| s.is_finite() && *s >= 0.0)
                        .ok_or("\"discount_scales\" must be non-negative numbers")
                })
                .collect::<Result<_, _>>()?,
        };
        let profiles = match j.get("profiles") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or("\"profiles\" must be an array of strings")?
                .iter()
                .map(|p| {
                    p.as_str()
                        .map(str::to_string)
                        .ok_or("\"profiles\" must be an array of strings")
                })
                .collect::<Result<_, _>>()?,
        };
        let steps = match j.get("steps") {
            None => None,
            Some(v) => Some(v.as_usize().ok_or("\"steps\" must be a non-negative integer")?),
        };
        let node_limit = match j.get("node_limit") {
            None => None,
            Some(v) => Some(
                v.as_usize()
                    .ok_or("\"node_limit\" must be a non-negative integer")?,
            ),
        };
        Ok(OptimizeRequest {
            id,
            program,
            targets,
            discount_scales,
            profiles,
            steps,
            node_limit,
            explain,
        })
    }
}

/// A request frame's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Optimize a program (with proofs when
    /// [`OptimizeRequest::explain`] is set — the `explain` op).
    Optimize(OptimizeRequest),
    /// Fetch a stored e-graph snapshot by fingerprint.
    Snapshot(SnapshotRequest),
    /// Ship a snapshot into this server's store.
    Restore(RestoreRequest),
    /// Service + cache counters.
    Stats,
    /// Full metrics scrape: the server's counters, gauges and latency
    /// histograms rendered as Prometheus text exposition format.
    Metrics,
    /// Live e-graph introspection: the latest cold saturation's growth
    /// tables plus the last `tail` flight-recorder events.
    Introspect {
        /// Most flight events to return (the server clamps to its ring
        /// capacity).
        tail: usize,
    },
    /// Liveness probe.
    Ping,
    /// Drain and exit.
    Shutdown,
}

impl Request {
    /// Serialize to the wire payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let j = match self {
            Request::Optimize(r) => r.to_json(),
            Request::Snapshot(r) => r.to_json(),
            Request::Restore(r) => r.to_json(),
            Request::Stats => Json::obj([("op", Json::Str("stats".into()))]),
            Request::Metrics => Json::obj([("op", Json::Str("metrics".into()))]),
            Request::Introspect { tail } => Json::obj([
                ("op", Json::Str("introspect".into())),
                ("tail", Json::Num(*tail as f64)),
            ]),
            Request::Ping => Json::obj([("op", Json::Str("ping".into()))]),
            Request::Shutdown => Json::obj([("op", Json::Str("shutdown".into()))]),
        };
        j.to_json().into_bytes()
    }

    /// Parse a wire payload. The error is a human-readable message paired
    /// with the [`ErrorCode`] the server should answer with.
    pub fn from_payload(payload: &[u8]) -> Result<Request, (ErrorCode, String)> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| (ErrorCode::BadJson, format!("payload is not UTF-8: {e}")))?;
        let j = json::parse(text).map_err(|e| (ErrorCode::BadJson, e.to_string()))?;
        let op = j
            .get("op")
            .and_then(Json::as_str)
            .ok_or((ErrorCode::BadRequest, "missing string field \"op\"".into()))?;
        match op {
            "optimize" => OptimizeRequest::from_json(&j, false)
                .map(Request::Optimize)
                .map_err(|m| (ErrorCode::BadRequest, m)),
            "explain" => OptimizeRequest::from_json(&j, true)
                .map(Request::Optimize)
                .map_err(|m| (ErrorCode::BadRequest, m)),
            "snapshot" => SnapshotRequest::from_json(&j)
                .map(Request::Snapshot)
                .map_err(|m| (ErrorCode::BadRequest, m)),
            "restore" => RestoreRequest::from_json(&j)
                .map(Request::Restore)
                .map_err(|m| (ErrorCode::BadRequest, m)),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "introspect" => {
                let tail = match j.get("tail") {
                    None => DEFAULT_INTROSPECT_TAIL,
                    Some(v) => v
                        .as_usize()
                        .ok_or((
                            ErrorCode::BadRequest,
                            "\"tail\" must be a non-negative integer".into(),
                        ))?,
                };
                Ok(Request::Introspect { tail })
            }
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err((
                ErrorCode::BadRequest,
                format!(
                    "unknown op {other:?} (expected optimize|explain|snapshot|restore|\
                     stats|metrics|introspect|ping|shutdown)"
                ),
            )),
        }
    }
}

/// One step of a [`ProofMsg`]: the whole term after the step, plus the
/// rule application that produced it. The before-term is implicit (the
/// previous step's `after`, or the proof's `source` for the first step),
/// so a proof serializes each intermediate term exactly once.
#[derive(Debug, Clone, PartialEq)]
pub struct ProofStepMsg {
    /// Name of the rewrite rule applied.
    pub rule: String,
    /// `"forward"` (left-to-right) or `"backward"`.
    pub direction: String,
    /// Child-index path from the root to the rewritten subterm.
    pub position: Vec<usize>,
    /// The whole term after this step, in the IR's textual syntax.
    pub after: String,
}

/// A serialized [`liar_ir::ArrayExplanation`]: the replayable certificate
/// an `explain` request attaches to every solution. Deserialize back
/// into a checkable proof with [`ProofMsg::to_explanation`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProofMsg {
    /// The source term (the submitted program).
    pub source: String,
    /// The final term (the solution's best expression).
    pub target: String,
    /// The rewrite chain (empty when source and target are one term).
    pub steps: Vec<ProofStepMsg>,
}

impl ProofMsg {
    /// Serialize a proof for the wire.
    pub fn from_explanation(proof: &ArrayExplanation) -> ProofMsg {
        ProofMsg {
            source: proof.source.to_string(),
            target: proof.target.to_string(),
            steps: proof
                .steps
                .iter()
                .map(|s| ProofStepMsg {
                    rule: s.rule.clone(),
                    direction: match s.direction {
                        Direction::Forward => "forward".to_string(),
                        Direction::Backward => "backward".to_string(),
                    },
                    position: s.position.clone(),
                    after: s.after.to_string(),
                })
                .collect(),
        }
    }

    /// Reconstruct the checkable proof: parse every term back into the
    /// canonical node tables proof terms use and rebuild the step chain
    /// (each step's before-term is the previous step's after-term).
    ///
    /// The result carries no trust from the wire — replay it with
    /// [`liar_egraph::Explanation::check`] against the rule set of the
    /// targets the request named; a tampered or truncated proof fails
    /// there.
    ///
    /// # Errors
    ///
    /// Returns a message when a term fails to parse or a direction tag is
    /// unknown.
    pub fn to_explanation(&self) -> Result<ArrayExplanation, String> {
        let term = |text: &str| -> Result<Expr, String> {
            text.parse::<Expr>()
                .map(|e| canonical_expr(&e))
                .map_err(|e| format!("proof term {text:?} does not parse: {e}"))
        };
        let source = term(&self.source)?;
        let target = term(&self.target)?;
        let mut steps = Vec::with_capacity(self.steps.len());
        let mut before = source.clone();
        for s in &self.steps {
            let after = term(&s.after)?;
            let direction = match s.direction.as_str() {
                "forward" => Direction::Forward,
                "backward" => Direction::Backward,
                other => return Err(format!("unknown proof direction {other:?}")),
            };
            steps.push(ProofStep {
                before: std::mem::replace(&mut before, after.clone()),
                after,
                rule: s.rule.clone(),
                direction,
                position: s.position.clone(),
            });
        }
        Ok(ArrayExplanation {
            source,
            target,
            steps,
        })
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("source", Json::Str(self.source.clone())),
            ("target", Json::Str(self.target.clone())),
            (
                "steps",
                Json::Arr(
                    self.steps
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("rule", Json::Str(s.rule.clone())),
                                ("direction", Json::Str(s.direction.clone())),
                                (
                                    "position",
                                    Json::Arr(
                                        s.position.iter().map(|&p| Json::Num(p as f64)).collect(),
                                    ),
                                ),
                                ("after", Json::Str(s.after.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let text = |field: &str| -> Result<String, String> {
            j.get(field)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("proof missing \"{field}\""))
        };
        let steps = j
            .get("steps")
            .and_then(Json::as_arr)
            .ok_or("proof missing \"steps\"")?
            .iter()
            .map(|s| {
                let field = |name: &str| -> Result<String, String> {
                    s.get(name)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or(format!("proof step missing \"{name}\""))
                };
                let position = s
                    .get("position")
                    .and_then(Json::as_arr)
                    .ok_or("proof step missing \"position\"")?
                    .iter()
                    .map(|p| p.as_usize().ok_or("proof position must be non-negative integers"))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ProofStepMsg {
                    rule: field("rule")?,
                    direction: field("direction")?,
                    position,
                    after: field("after")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ProofMsg {
            source: text("source")?,
            target: text("target")?,
            steps,
        })
    }
}

/// One `(target, discount_scale, profile)` solution of an
/// [`OptimizeResponse`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolutionMsg {
    /// Target wire name.
    pub target: String,
    /// Discount scale this solution was extracted at.
    pub discount_scale: f64,
    /// Machine-profile name this solution was extracted under (absent on
    /// the wire means `"default"`).
    pub profile: String,
    /// Tree cost of the best expression.
    pub cost: f64,
    /// DAG cost (each selected e-class charged once).
    pub dag_cost: f64,
    /// Human-readable call summary, e.g. `1 × gemv`.
    pub solution: String,
    /// The best expression, in the IR's textual syntax.
    pub best: String,
    /// Library calls by family name.
    pub lib_calls: BTreeMap<String, usize>,
    /// The replayable certificate (present on `explain` responses).
    pub proof: Option<ProofMsg>,
}

impl SolutionMsg {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("target".to_string(), Json::Str(self.target.clone())),
            ("discount_scale".to_string(), Json::Num(self.discount_scale)),
            ("profile".to_string(), Json::Str(self.profile.clone())),
            ("cost".to_string(), Json::Num(self.cost)),
            ("dag_cost".to_string(), Json::Num(self.dag_cost)),
            ("solution".to_string(), Json::Str(self.solution.clone())),
            ("best".to_string(), Json::Str(self.best.clone())),
            (
                "lib_calls".to_string(),
                Json::Obj(
                    self.lib_calls
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
        ];
        if let Some(proof) = &self.proof {
            pairs.push(("proof".to_string(), proof.to_json()));
        }
        Json::Obj(pairs)
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(SolutionMsg {
            target: j
                .get("target")
                .and_then(Json::as_str)
                .ok_or("solution missing \"target\"")?
                .to_string(),
            discount_scale: j
                .get("discount_scale")
                .and_then(Json::as_f64)
                .ok_or("solution missing \"discount_scale\"")?,
            profile: j
                .get("profile")
                .and_then(Json::as_str)
                .unwrap_or("default")
                .to_string(),
            cost: j.get("cost").and_then(Json::as_f64).ok_or("solution missing \"cost\"")?,
            dag_cost: j
                .get("dag_cost")
                .and_then(Json::as_f64)
                .ok_or("solution missing \"dag_cost\"")?,
            solution: j
                .get("solution")
                .and_then(Json::as_str)
                .ok_or("solution missing \"solution\"")?
                .to_string(),
            best: j
                .get("best")
                .and_then(Json::as_str)
                .ok_or("solution missing \"best\"")?
                .to_string(),
            lib_calls: j
                .get("lib_calls")
                .and_then(Json::as_count_map)
                .ok_or("solution missing \"lib_calls\"")?,
            proof: match j.get("proof") {
                None | Some(Json::Null) => None,
                Some(p) => Some(ProofMsg::from_json(p)?),
            },
        })
    }
}

/// A successful `optimize` response.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeResponse {
    /// Echo of the request id, when one was given.
    pub id: Option<String>,
    /// The request fingerprint, 32 hex digits.
    pub fingerprint: String,
    /// Cache verdict: `hit`, `miss`, `coalesced`, `uncached`, or `warm`
    /// (restored from the durable snapshot store — extraction only).
    pub cache: String,
    /// Why saturation stopped.
    pub stop_reason: String,
    /// E-nodes in the final e-graph.
    pub n_nodes: usize,
    /// E-classes in the final e-graph.
    pub n_classes: usize,
    /// Wall-clock seconds the (original) saturation took.
    pub saturation_s: f64,
    /// Saturation steps the server ran to produce **this** answer: `0`
    /// when the report replayed from the in-memory cache or restored
    /// warm from the durable snapshot store (extraction only).
    pub saturation_steps: usize,
    /// Wall-clock milliseconds this request took inside the server,
    /// queueing included.
    pub server_ms: f64,
    /// One entry per `(target, discount_scale, profile)` — targets
    /// outermost, machine profiles innermost.
    pub solutions: Vec<SolutionMsg>,
}

/// A successful `snapshot` response: the stored e-graph, ready to ship
/// to another node's `restore` op.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotResponse {
    /// Echo of the request id, when one was given.
    pub id: Option<String>,
    /// The fingerprint the snapshot answers.
    pub fingerprint: String,
    /// Why the saturation that produced the snapshot stopped.
    pub stop_reason: String,
    /// The snapshot bytes, hex-encoded ([`from_hex`] decodes them).
    pub snapshot_hex: String,
}

/// A successful `restore` response: the snapshot validated (it restored
/// to a live e-graph) and now sits in this server's store.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoreResponse {
    /// Echo of the request id, when one was given.
    pub id: Option<String>,
    /// The fingerprint the snapshot was stored under.
    pub fingerprint: String,
    /// E-nodes in the restored e-graph (a sanity echo from validation).
    pub n_nodes: usize,
    /// E-classes in the restored e-graph.
    pub n_classes: usize,
}

/// Cache + service counters (`stats` response).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsResponse {
    /// Cache hits (including in-process `optimize_multi` reuse).
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Entries stored.
    pub cache_insertions: u64,
    /// Entries evicted by the byte budget.
    pub cache_evictions: u64,
    /// Reports refused as larger than a whole shard.
    pub cache_rejected: u64,
    /// Live entries.
    pub cache_entries: usize,
    /// Estimated live bytes.
    pub cache_bytes: usize,
    /// Optimize requests accepted into the job queue (rejected
    /// submissions count toward `errors` instead).
    pub requests: u64,
    /// Error responses sent.
    pub errors: u64,
    /// Requests that coalesced onto an identical in-flight computation.
    pub coalesced: u64,
    /// Jobs that rode along in a drained batch (queue pops avoided).
    pub batched: u64,
    /// Jobs waiting in the bounded queue right now (a gauge).
    pub queue_depth: usize,
    /// Single-flight computations running right now (a gauge).
    pub inflight: usize,
    /// Median end-to-end request latency, milliseconds (0 until the
    /// first optimize request completes).
    pub latency_p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub latency_p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub latency_p99_ms: f64,
}

impl StatsResponse {
    fn fields(&self) -> [(&'static str, f64); 16] {
        [
            ("cache_hits", self.cache_hits as f64),
            ("cache_misses", self.cache_misses as f64),
            ("cache_insertions", self.cache_insertions as f64),
            ("cache_evictions", self.cache_evictions as f64),
            ("cache_rejected", self.cache_rejected as f64),
            ("cache_entries", self.cache_entries as f64),
            ("cache_bytes", self.cache_bytes as f64),
            ("requests", self.requests as f64),
            ("errors", self.errors as f64),
            ("coalesced", self.coalesced as f64),
            ("batched", self.batched as f64),
            ("queue_depth", self.queue_depth as f64),
            ("inflight", self.inflight as f64),
            ("latency_p50_ms", self.latency_p50_ms),
            ("latency_p95_ms", self.latency_p95_ms),
            ("latency_p99_ms", self.latency_p99_ms),
        ]
    }
}

/// A full metrics scrape (`metrics` response): the server's counters,
/// gauges, per-phase time totals and latency histograms rendered
/// server-side as [Prometheus text exposition format] (version 0.0.4) —
/// the exact document `liar stats --prometheus` prints and a Prometheus
/// scraper ingests. See `docs/OBSERVABILITY.md` for the metric
/// catalogue.
///
/// [Prometheus text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsResponse {
    /// The Prometheus exposition document.
    pub prometheus: String,
}

/// An `introspect` response: the growth-attribution tables of the most
/// recent cold saturation the daemon ran (the same tables `liar inspect`
/// computes locally) plus the tail of its flight-recorder ring.
///
/// `report` is `None` until the first cold (non-replayed, non-restored)
/// optimization completes, and stays `None` on servers started with
/// introspection disabled.
#[derive(Debug, Clone, PartialEq)]
pub struct IntrospectResponse {
    /// The per-rule funnel and composition tables, when a cold
    /// saturation has run.
    pub report: Option<InspectReport>,
    /// The last `tail` flight events, ascending sequence order.
    pub flight: Vec<FlightEvent>,
    /// Events that fell off the ring over the daemon's lifetime.
    pub flight_dropped: u64,
    /// Events recorded over the daemon's lifetime.
    pub flight_total: u64,
}

impl IntrospectResponse {
    fn report_to_json(report: &InspectReport) -> Json {
        Json::obj([
            ("n_nodes", Json::Num(report.n_nodes as f64)),
            ("n_classes", Json::Num(report.n_classes as f64)),
            ("nodes_retired", Json::Num(report.nodes_retired as f64)),
            ("steps", Json::Num(report.steps as f64)),
            (
                "rules",
                Json::Arr(
                    report
                        .rules
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("name", Json::Str(r.name.clone())),
                                ("candidates", Json::Num(r.candidates as f64)),
                                ("matches", Json::Num(r.matches as f64)),
                                ("applied", Json::Num(r.applied as f64)),
                                ("nodes_created", Json::Num(r.nodes_created as f64)),
                                ("classes_created", Json::Num(r.classes_created as f64)),
                                ("classes_merged", Json::Num(r.classes_merged as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ops",
                Json::Arr(
                    report
                        .ops
                        .iter()
                        .map(|o| {
                            Json::obj([
                                ("op", Json::Str(o.op.clone())),
                                ("nodes", Json::Num(o.nodes as f64)),
                                ("classes", Json::Num(o.classes as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn report_from_json(j: &Json) -> Result<InspectReport, String> {
        let num = |obj: &Json, name: &str| -> Result<f64, String> {
            obj.get(name)
                .and_then(Json::as_f64)
                .ok_or(format!("introspect report missing \"{name}\""))
        };
        let rules = j
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or("introspect report missing \"rules\"")?
            .iter()
            .map(|r| {
                Ok(RuleRow {
                    name: r
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("rule row missing \"name\"")?
                        .to_string(),
                    candidates: num(r, "candidates")? as u64,
                    matches: num(r, "matches")? as u64,
                    applied: num(r, "applied")? as u64,
                    nodes_created: num(r, "nodes_created")? as u64,
                    classes_created: num(r, "classes_created")? as u64,
                    classes_merged: num(r, "classes_merged")? as u64,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let ops = j
            .get("ops")
            .and_then(Json::as_arr)
            .ok_or("introspect report missing \"ops\"")?
            .iter()
            .map(|o| {
                Ok(OpRow {
                    op: o
                        .get("op")
                        .and_then(Json::as_str)
                        .ok_or("op row missing \"op\"")?
                        .to_string(),
                    nodes: num(o, "nodes")? as u64,
                    classes: num(o, "classes")? as u64,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(InspectReport {
            rules,
            ops,
            n_nodes: num(j, "n_nodes")? as usize,
            n_classes: num(j, "n_classes")? as usize,
            nodes_retired: num(j, "nodes_retired")? as u64,
            steps: num(j, "steps")? as usize,
        })
    }

    /// The wire payload (`liar stats --inspect --json` prints this
    /// verbatim — stable key order, no re-encoding).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("ok".to_string(), Json::Bool(true)),
            ("introspect".to_string(), Json::Bool(true)),
        ];
        if let Some(report) = &self.report {
            pairs.push(("report".to_string(), Self::report_to_json(report)));
        }
        pairs.push((
            "flight".to_string(),
            Json::Arr(
                self.flight
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("seq", Json::Num(e.seq as f64)),
                            ("kind", Json::Str(e.kind.name().to_string())),
                            ("detail", Json::Str(e.detail.clone())),
                            ("value", Json::Num(e.value)),
                        ])
                    })
                    .collect(),
            ),
        ));
        pairs.push((
            "flight_dropped".to_string(),
            Json::Num(self.flight_dropped as f64),
        ));
        pairs.push((
            "flight_total".to_string(),
            Json::Num(self.flight_total as f64),
        ));
        Json::Obj(pairs)
    }

    fn from_json(j: &Json) -> Result<IntrospectResponse, String> {
        let report = match j.get("report") {
            None | Some(Json::Null) => None,
            Some(r) => Some(Self::report_from_json(r)?),
        };
        let flight = j
            .get("flight")
            .and_then(Json::as_arr)
            .ok_or("introspect response missing \"flight\"")?
            .iter()
            .filter_map(|e| {
                // Unknown kinds come from newer servers: skip the event
                // rather than failing the whole response.
                let kind = FlightKind::from_name(e.get("kind")?.as_str()?)?;
                Some(FlightEvent {
                    seq: e.get("seq").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                    kind,
                    detail: e
                        .get("detail")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    value: e.get("value").and_then(Json::as_f64).unwrap_or(0.0),
                })
            })
            .collect();
        let lenient = |name: &str| j.get(name).and_then(Json::as_f64).unwrap_or(0.0) as u64;
        Ok(IntrospectResponse {
            report,
            flight,
            flight_dropped: lenient("flight_dropped"),
            flight_total: lenient("flight_total"),
        })
    }
}

/// A response frame's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A finished optimization.
    Optimize(OptimizeResponse),
    /// A stored snapshot, fetched by fingerprint.
    Snapshot(SnapshotResponse),
    /// A shipped snapshot was validated and stored.
    Restored(RestoreResponse),
    /// Counters.
    Stats(StatsResponse),
    /// A Prometheus-rendered metrics scrape.
    Metrics(MetricsResponse),
    /// Growth tables + flight-recorder tail.
    Introspect(IntrospectResponse),
    /// Ping acknowledgement.
    Pong,
    /// Shutdown acknowledgement (the server drains and exits after).
    ShuttingDown,
    /// Any failure.
    Error {
        /// Echo of the request id, when one was parseable.
        id: Option<String>,
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Serialize to the wire payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let j = match self {
            Response::Optimize(r) => {
                let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
                if let Some(id) = &r.id {
                    pairs.push(("id".to_string(), Json::Str(id.clone())));
                }
                pairs.extend([
                    ("fingerprint".to_string(), Json::Str(r.fingerprint.clone())),
                    ("cache".to_string(), Json::Str(r.cache.clone())),
                    ("stop_reason".to_string(), Json::Str(r.stop_reason.clone())),
                    ("n_nodes".to_string(), Json::Num(r.n_nodes as f64)),
                    ("n_classes".to_string(), Json::Num(r.n_classes as f64)),
                    ("saturation_s".to_string(), Json::Num(r.saturation_s)),
                    (
                        "saturation_steps".to_string(),
                        Json::Num(r.saturation_steps as f64),
                    ),
                    ("server_ms".to_string(), Json::Num(r.server_ms)),
                    (
                        "solutions".to_string(),
                        Json::Arr(r.solutions.iter().map(SolutionMsg::to_json).collect()),
                    ),
                ]);
                Json::Obj(pairs)
            }
            Response::Stats(s) => {
                let mut pairs = vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("stats".to_string(), Json::Bool(true)),
                ];
                pairs.extend(
                    s.fields()
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), Json::Num(v))),
                );
                Json::Obj(pairs)
            }
            Response::Metrics(m) => Json::obj([
                ("ok", Json::Bool(true)),
                ("metrics", Json::Bool(true)),
                ("prometheus", Json::Str(m.prometheus.clone())),
            ]),
            Response::Introspect(r) => r.to_json(),
            Response::Snapshot(r) => {
                let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
                if let Some(id) = &r.id {
                    pairs.push(("id".to_string(), Json::Str(id.clone())));
                }
                pairs.extend([
                    ("fingerprint".to_string(), Json::Str(r.fingerprint.clone())),
                    ("stop_reason".to_string(), Json::Str(r.stop_reason.clone())),
                    ("snapshot_hex".to_string(), Json::Str(r.snapshot_hex.clone())),
                ]);
                Json::Obj(pairs)
            }
            Response::Restored(r) => {
                let mut pairs = vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("restored".to_string(), Json::Bool(true)),
                ];
                if let Some(id) = &r.id {
                    pairs.push(("id".to_string(), Json::Str(id.clone())));
                }
                pairs.extend([
                    ("fingerprint".to_string(), Json::Str(r.fingerprint.clone())),
                    ("n_nodes".to_string(), Json::Num(r.n_nodes as f64)),
                    ("n_classes".to_string(), Json::Num(r.n_classes as f64)),
                ]);
                Json::Obj(pairs)
            }
            Response::Pong => Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
            Response::ShuttingDown => Json::obj([
                ("ok", Json::Bool(true)),
                ("shutting_down", Json::Bool(true)),
            ]),
            Response::Error { id, code, message } => {
                let mut pairs = vec![("ok".to_string(), Json::Bool(false))];
                if let Some(id) = id {
                    pairs.push(("id".to_string(), Json::Str(id.clone())));
                }
                pairs.push(("code".to_string(), Json::Str(code.name().into())));
                pairs.push(("message".to_string(), Json::Str(message.clone())));
                Json::Obj(pairs)
            }
        };
        j.to_json().into_bytes()
    }

    /// Parse a wire payload (the client side).
    pub fn from_payload(payload: &[u8]) -> Result<Response, String> {
        let text =
            std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
        let j = json::parse(text).map_err(|e| e.to_string())?;
        let ok = j
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or("missing boolean field \"ok\"")?;
        if !ok {
            let code = j
                .get("code")
                .and_then(Json::as_str)
                .and_then(ErrorCode::from_name)
                .ok_or("error response missing \"code\"")?;
            let message = j
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let id = j.get("id").and_then(Json::as_str).map(str::to_string);
            return Ok(Response::Error { id, code, message });
        }
        if j.get("pong").is_some() {
            return Ok(Response::Pong);
        }
        if j.get("shutting_down").is_some() {
            return Ok(Response::ShuttingDown);
        }
        if j.get("introspect").is_some() {
            return Ok(Response::Introspect(IntrospectResponse::from_json(&j)?));
        }
        if j.get("metrics").is_some() {
            return Ok(Response::Metrics(MetricsResponse {
                prometheus: j
                    .get("prometheus")
                    .and_then(Json::as_str)
                    .ok_or("metrics response missing \"prometheus\"")?
                    .to_string(),
            }));
        }
        if j.get("stats").is_some() {
            let field = |name: &str| -> Result<f64, String> {
                j.get(name)
                    .and_then(Json::as_f64)
                    .ok_or(format!("stats response missing \"{name}\""))
            };
            // Gauges and percentiles are absent from pre-observability
            // servers: default to 0 rather than failing the response.
            let lenient = |name: &str| j.get(name).and_then(Json::as_f64).unwrap_or(0.0);
            return Ok(Response::Stats(StatsResponse {
                cache_hits: field("cache_hits")? as u64,
                cache_misses: field("cache_misses")? as u64,
                cache_insertions: field("cache_insertions")? as u64,
                cache_evictions: field("cache_evictions")? as u64,
                cache_rejected: field("cache_rejected")? as u64,
                cache_entries: field("cache_entries")? as usize,
                cache_bytes: field("cache_bytes")? as usize,
                requests: field("requests")? as u64,
                errors: field("errors")? as u64,
                coalesced: field("coalesced")? as u64,
                batched: field("batched")? as u64,
                queue_depth: lenient("queue_depth") as usize,
                inflight: lenient("inflight") as usize,
                latency_p50_ms: lenient("latency_p50_ms"),
                latency_p95_ms: lenient("latency_p95_ms"),
                latency_p99_ms: lenient("latency_p99_ms"),
            }));
        }
        if j.get("restored").is_some() {
            let field = |name: &str| {
                j.get(name)
                    .and_then(Json::as_usize)
                    .ok_or(format!("restore response missing \"{name}\""))
            };
            return Ok(Response::Restored(RestoreResponse {
                id: j.get("id").and_then(Json::as_str).map(str::to_string),
                fingerprint: j
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .ok_or("restore response missing \"fingerprint\"")?
                    .to_string(),
                n_nodes: field("n_nodes")?,
                n_classes: field("n_classes")?,
            }));
        }
        if j.get("snapshot_hex").is_some() {
            let field = |name: &str| -> Result<String, String> {
                j.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("snapshot response missing \"{name}\""))
            };
            return Ok(Response::Snapshot(SnapshotResponse {
                id: j.get("id").and_then(Json::as_str).map(str::to_string),
                fingerprint: field("fingerprint")?,
                stop_reason: field("stop_reason")?,
                snapshot_hex: field("snapshot_hex")?,
            }));
        }
        let str_field = |name: &str| -> Result<String, String> {
            j.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("optimize response missing \"{name}\""))
        };
        let solutions = j
            .get("solutions")
            .and_then(Json::as_arr)
            .ok_or("optimize response missing \"solutions\"")?
            .iter()
            .map(SolutionMsg::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Response::Optimize(OptimizeResponse {
            id: j.get("id").and_then(Json::as_str).map(str::to_string),
            fingerprint: str_field("fingerprint")?,
            cache: str_field("cache")?,
            stop_reason: str_field("stop_reason")?,
            n_nodes: j
                .get("n_nodes")
                .and_then(Json::as_usize)
                .ok_or("optimize response missing \"n_nodes\"")?,
            n_classes: j
                .get("n_classes")
                .and_then(Json::as_usize)
                .ok_or("optimize response missing \"n_classes\"")?,
            saturation_s: j
                .get("saturation_s")
                .and_then(Json::as_f64)
                .ok_or("optimize response missing \"saturation_s\"")?,
            // Absent from pre-snapshot servers: default to 0 rather than
            // failing the whole response.
            saturation_steps: j
                .get("saturation_steps")
                .and_then(Json::as_usize)
                .unwrap_or(0),
            server_ms: j
                .get("server_ms")
                .and_then(Json::as_f64)
                .ok_or("optimize response missing \"server_ms\"")?,
            solutions,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"ping\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, 1024).unwrap().as_deref(),
            Some(&b"{\"op\":\"ping\"}"[..])
        );
        assert_eq!(read_frame(&mut r, 1024).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r, 1024).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_skimmed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[b'x'; 100]).unwrap();
        write_frame(&mut buf, b"ok").unwrap();
        let mut r = Cursor::new(buf);
        match read_frame(&mut r, 10) {
            Err(FrameError::TooLarge {
                len: 100,
                max: 10,
                recovered: true,
            }) => {}
            other => panic!("expected recoverable TooLarge, got {other:?}"),
        }
        // The stream is still frame-aligned.
        assert_eq!(read_frame(&mut r, 10).unwrap().as_deref(), Some(&b"ok"[..]));
    }

    #[test]
    fn absurd_frames_are_not_skimmed() {
        let mut r = Cursor::new(b"999999999\nx".to_vec());
        match read_frame(&mut r, 10) {
            Err(FrameError::TooLarge {
                recovered: false, ..
            }) => {}
            other => panic!("expected unrecoverable TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn malformed_headers_fail() {
        for bad in [&b"abc\n{}"[..], b"12x4\n", b"\n", b"9999999999\n"] {
            let mut r = Cursor::new(bad.to_vec());
            assert!(
                matches!(read_frame(&mut r, 1024), Err(FrameError::BadHeader(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn truncated_payload_is_an_io_error() {
        let mut r = Cursor::new(b"10\nshort".to_vec());
        assert!(matches!(read_frame(&mut r, 1024), Err(FrameError::Io(_))));
    }

    /// A reader scripted with chunks and timeouts (`None` = one
    /// WouldBlock, as a socket with a read timeout produces).
    struct Scripted(Vec<Option<Vec<u8>>>);

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() {
                return Ok(0); // EOF
            }
            match self.0.remove(0) {
                None => Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout")),
                Some(chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        self.0.insert(0, Some(chunk[n..].to_vec()));
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn timeout_at_frame_boundary_is_idle_and_consumes_nothing() {
        let mut r = Scripted(vec![None, Some(b"2\nok".to_vec())]);
        assert!(matches!(read_frame(&mut r, 1024), Err(FrameError::Idle)));
        // The next call reads the full frame — nothing was lost.
        assert_eq!(read_frame(&mut r, 1024).unwrap().as_deref(), Some(&b"ok"[..]));
    }

    #[test]
    fn timeouts_mid_frame_are_retried_not_desynchronized() {
        // Header split across a timeout, then payload dribbled around
        // more timeouts: a slow peer, not a protocol error.
        let mut r = Scripted(vec![
            Some(b"1".to_vec()),
            None,
            Some(b"3\nhel".to_vec()),
            None,
            None,
            Some(b"lo worl".to_vec()),
            None,
            Some(b"d!!".to_vec()),
        ]);
        assert_eq!(
            read_frame(&mut r, 1024).unwrap().as_deref(),
            Some(&b"hello world!!"[..])
        );
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Optimize(OptimizeRequest {
                id: Some("r1".into()),
                program: "(dot #8 xs ys)".into(),
                targets: vec!["blas".into(), "pytorch".into()],
                discount_scales: vec![1.0, 2.5],
                profiles: vec!["default".into(), "gpu".into()],
                steps: Some(6),
                node_limit: Some(10_000),
                explain: false,
            }),
            Request::Optimize(OptimizeRequest::new("(+ 1 2)")),
            // The explain op: same knobs, explain flag set.
            Request::Optimize(OptimizeRequest {
                explain: true,
                ..OptimizeRequest::new("(dot #8 xs ys)")
            }),
            Request::Snapshot(SnapshotRequest {
                id: Some("s1".into()),
                fingerprint: "ab".repeat(16),
            }),
            Request::Restore(RestoreRequest {
                id: None,
                fingerprint: "ab".repeat(16),
                stop_reason: "saturated".into(),
                snapshot_hex: to_hex(b"LIARSNAP rest of the snapshot"),
            }),
        ];
        for req in reqs {
            let payload = req.to_payload();
            let back = Request::from_payload(&payload).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn bad_requests_carry_codes() {
        let cases: [(&[u8], ErrorCode); 5] = [
            (b"not json", ErrorCode::BadJson),
            (b"{}", ErrorCode::BadRequest),
            (b"{\"op\":\"nope\"}", ErrorCode::BadRequest),
            (b"{\"op\":\"optimize\"}", ErrorCode::BadRequest),
            (
                b"{\"op\":\"optimize\",\"program\":\"x\",\"steps\":-1}",
                ErrorCode::BadRequest,
            ),
        ];
        for (payload, code) in cases {
            let (got, _) = Request::from_payload(payload).unwrap_err();
            assert_eq!(got, code, "{:?}", String::from_utf8_lossy(payload));
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::Pong,
            Response::ShuttingDown,
            Response::Stats(StatsResponse {
                cache_hits: 3,
                requests: 7,
                ..Default::default()
            }),
            Response::Error {
                id: Some("r1".into()),
                code: ErrorCode::QueueFull,
                message: "try later".into(),
            },
            Response::Optimize(OptimizeResponse {
                id: None,
                fingerprint: "0".repeat(32),
                cache: "miss".into(),
                stop_reason: "saturated".into(),
                n_nodes: 120,
                n_classes: 40,
                saturation_s: 0.25,
                saturation_steps: 6,
                server_ms: 260.5,
                solutions: vec![
                    SolutionMsg {
                        target: "blas".into(),
                        discount_scale: 1.0,
                        profile: "default".into(),
                        cost: 64.0,
                        dag_cost: 60.0,
                        solution: "1 × dot".into(),
                        best: "(dot #8 xs ys)".into(),
                        lib_calls: [("dot".to_string(), 1)].into_iter().collect(),
                        proof: None,
                    },
                    SolutionMsg {
                        target: "pytorch".into(),
                        discount_scale: 1.0,
                        profile: "gpu".into(),
                        cost: 64.0,
                        dag_cost: 64.0,
                        solution: "1 × sum".into(),
                        best: "(sum #8 xs)".into(),
                        lib_calls: [("sum".to_string(), 1)].into_iter().collect(),
                        proof: Some(ProofMsg {
                            source: "(ifold #8 0 (lam (lam (+ (get xs %1) %0))))".into(),
                            target: "(sum #8 xs)".into(),
                            steps: vec![ProofStepMsg {
                                rule: "torch-sum".into(),
                                direction: "forward".into(),
                                position: vec![],
                                after: "(sum #8 xs)".into(),
                            }],
                        }),
                    },
                ],
            }),
            Response::Snapshot(SnapshotResponse {
                id: Some("s1".into()),
                fingerprint: "ab".repeat(16),
                stop_reason: "iteration limit".into(),
                snapshot_hex: to_hex(&[0x4c, 0x49, 0x41, 0x52, 0x00, 0xff]),
            }),
            Response::Restored(RestoreResponse {
                id: None,
                fingerprint: "ab".repeat(16),
                n_nodes: 120,
                n_classes: 40,
            }),
        ];
        for resp in resps {
            let payload = resp.to_payload();
            let back = Response::from_payload(&payload).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn introspect_roundtrips() {
        // Requests: explicit tail, and the default when omitted.
        let req = Request::Introspect { tail: 17 };
        assert_eq!(Request::from_payload(&req.to_payload()).unwrap(), req);
        let defaulted = Request::from_payload(br#"{"op":"introspect"}"#).unwrap();
        assert_eq!(defaulted, Request::Introspect { tail: DEFAULT_INTROSPECT_TAIL });

        // Full response: tables + flight tail.
        let resp = Response::Introspect(IntrospectResponse {
            report: Some(InspectReport {
                rules: vec![RuleRow {
                    name: "idiom-gemv".into(),
                    candidates: 168,
                    matches: 94,
                    applied: 15,
                    nodes_created: 15,
                    classes_created: 15,
                    classes_merged: 15,
                }],
                ops: vec![OpRow { op: "gemv".into(), nodes: 10, classes: 5 }],
                n_nodes: 1864,
                n_classes: 251,
                nodes_retired: 12,
                steps: 8,
            }),
            flight: vec![FlightEvent {
                seq: 41,
                kind: FlightKind::CacheMiss,
                detail: "ab".repeat(16),
                value: 0.0,
            }],
            flight_dropped: 3,
            flight_total: 44,
        });
        assert_eq!(Response::from_payload(&resp.to_payload()).unwrap(), resp);

        // No cold saturation yet: the report key is absent, not null.
        let empty = Response::Introspect(IntrospectResponse {
            report: None,
            flight: vec![],
            flight_dropped: 0,
            flight_total: 0,
        });
        let payload = empty.to_payload();
        assert!(!String::from_utf8_lossy(&payload).contains("report"));
        assert_eq!(Response::from_payload(&payload).unwrap(), empty);

        // A newer server's unknown flight kind is skipped, not fatal.
        let forward = br#"{"ok":true,"introspect":true,"flight":[
            {"seq":1,"kind":"warp-drive-engaged","detail":"","value":1},
            {"seq":2,"kind":"cache_hit","detail":"f0","value":0}
        ],"flight_dropped":0,"flight_total":2}"#;
        match Response::from_payload(forward).unwrap() {
            Response::Introspect(r) => {
                assert_eq!(r.flight.len(), 1);
                assert_eq!(r.flight[0].kind, FlightKind::CacheHit);
            }
            other => panic!("expected introspect, got {other:?}"),
        }
    }

    #[test]
    fn hex_roundtrip_and_rejects() {
        let bytes: Vec<u8> = (0..=255).collect();
        let hex = to_hex(&bytes);
        assert_eq!(from_hex(&hex).unwrap(), bytes);
        assert_eq!(from_hex(&hex.to_uppercase()).unwrap(), bytes);
        assert_eq!(from_hex(""), Some(Vec::new()));
        assert!(from_hex("abc").is_none(), "odd length");
        assert!(from_hex("zz").is_none(), "non-hex digit");
    }

    #[test]
    fn optimize_responses_without_saturation_steps_parse_as_zero() {
        // Responses from servers predating snapshots omit the counter.
        let payload = br#"{"ok":true,"fingerprint":"00","cache":"miss",
            "stop_reason":"saturated","n_nodes":1,"n_classes":1,
            "saturation_s":0.1,"server_ms":1.0,"solutions":[]}"#;
        match Response::from_payload(payload).unwrap() {
            Response::Optimize(r) => assert_eq!(r.saturation_steps, 0),
            other => panic!("expected optimize, got {other:?}"),
        }
    }

    #[test]
    fn solutions_without_a_profile_parse_as_default() {
        // Responses from servers predating machine profiles omit the
        // field; clients read them as the identity profile.
        let j = json::parse(
            r#"{"target":"blas","discount_scale":1.0,"cost":2.0,"dag_cost":2.0,
                "solution":"1 × dot","best":"(dot #8 xs ys)","lib_calls":{"dot":1}}"#,
        )
        .unwrap();
        let s = SolutionMsg::from_json(&j).unwrap();
        assert_eq!(s.profile, "default");
    }

    #[test]
    fn proofs_deserialize_to_checkable_explanations() {
        // A forged proof round-trips the wire fine — and then fails
        // `check`, which is the point: the wire carries certificates,
        // trust lives in the replay.
        let msg = ProofMsg {
            source: "(dot #8 xs ys)".into(),
            target: "(sum #8 xs)".into(),
            steps: vec![ProofStepMsg {
                rule: "no-such-rule".into(),
                direction: "forward".into(),
                position: vec![],
                after: "(sum #8 xs)".into(),
            }],
        };
        let proof = msg.to_explanation().unwrap();
        assert_eq!(proof.len(), 1);
        // The chain is reconstructed: before of step 0 is the source.
        assert_eq!(proof.steps[0].before, proof.source);
        let rules = liar_core::rules::rules_for_targets(
            &[Target::Blas],
            &liar_core::rules::RuleConfig::default(),
        );
        assert!(proof.check(&rules).is_err());

        // Unparseable terms and unknown directions are structural errors.
        let mut bad = msg.clone();
        bad.source = "(((".into();
        assert!(bad.to_explanation().is_err());
        let mut bad = msg;
        bad.steps[0].direction = "sideways".into();
        assert!(bad.to_explanation().is_err());
    }

    #[test]
    fn target_wire_names() {
        assert_eq!(target_from_wire("blas"), Some(Target::Blas));
        assert_eq!(target_from_wire("torch"), Some(Target::Torch));
        assert_eq!(target_from_wire("pure-c"), Some(Target::PureC));
        assert_eq!(target_from_wire("fortran"), None);
    }
}
