//! End-to-end loopback tests of the optimization service: response
//! fidelity against the in-process pipeline, cache and single-flight
//! behavior under concurrency, and protocol robustness against
//! malformed/oversized frames.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use liar_core::{Liar, MultiReport, Target};
use liar_kernels::Kernel;
use liar_serve::protocol::{read_frame, write_frame};
use liar_serve::{Client, ErrorCode, OptimizeRequest, Response, Server, ServerConfig};

const STEPS: usize = 6;

fn server(config: ServerConfig) -> Server {
    Server::start(config).expect("bind loopback")
}

fn request_for(program: &str) -> OptimizeRequest {
    let mut req = OptimizeRequest::new(program);
    req.steps = Some(STEPS);
    req
}

/// The in-process run a served response must reproduce bit-identically.
fn in_process(program: &str) -> MultiReport {
    let expr = program.parse().expect("test programs parse");
    Liar::new(Target::PureC)
        .with_iter_limit(STEPS)
        .optimize_multi(&expr, &Target::ALL, &[1.0])
        .expect("kernels are extractable for every target")
}

/// Assert a served response matches an in-process report field-for-field
/// (everything the protocol carries; timings are run-dependent and the
/// protocol reports the *original* run's saturation time, which cannot be
/// compared against a different process-local run).
fn assert_matches(resp: &liar_serve::OptimizeResponse, expected: &MultiReport) {
    assert_eq!(resp.stop_reason, expected.stop_reason.to_string());
    assert_eq!(resp.n_nodes, expected.n_nodes);
    assert_eq!(resp.n_classes, expected.n_classes);
    assert_eq!(resp.solutions.len(), expected.solutions.len());
    for (got, want) in resp.solutions.iter().zip(&expected.solutions) {
        assert_eq!(got.target, want.target.name());
        assert_eq!(got.discount_scale, want.discount_scale);
        assert_eq!(got.profile, want.profile);
        assert_eq!(got.best, want.best.to_string(), "{}", got.target);
        assert_eq!(got.cost.to_bits(), want.cost.to_bits(), "{}", got.target);
        assert_eq!(
            got.dag_cost.to_bits(),
            want.dag_cost.to_bits(),
            "{}",
            got.target
        );
        assert_eq!(got.solution, want.solution_summary());
        assert_eq!(got.lib_calls, want.lib_calls);
    }
}

#[test]
fn concurrent_clients_get_bit_identical_responses_and_cache_hits() {
    let srv = server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = srv.local_addr();

    // A mix of PolyBench programs, each with its cold in-process report.
    let programs: Vec<String> = [Kernel::Vsum, Kernel::Gemv, Kernel::Atax]
        .iter()
        .map(|k| k.expr(k.search_size()).to_string())
        .collect();
    let expected: Vec<MultiReport> = programs.iter().map(|p| in_process(p)).collect();
    let programs = Arc::new(programs);
    let expected = Arc::new(expected);

    // Wave 1: N concurrent clients, each submitting every program.
    let n_clients = 4;
    let handles: Vec<_> = (0..n_clients)
        .map(|c| {
            let programs = Arc::clone(&programs);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (i, program) in programs.iter().enumerate() {
                    // Stagger the order per client to mix the queue.
                    let i = (i + c) % programs.len();
                    let resp = client
                        .optimize(request_for(&programs[i]))
                        .expect("optimize");
                    let _ = program;
                    assert_matches(&resp, &expected[i]);
                    assert_eq!(resp.fingerprint.len(), 32);
                    assert!(
                        ["hit", "miss", "coalesced"].contains(&resp.cache.as_str()),
                        "{}",
                        resp.cache
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // Each program was computed at most once per fingerprint: of the
    // 4 × 3 submissions, exactly 3 were misses (one per program);
    // everything else came from the cache or coalesced onto a leader.
    let stats = srv.stats();
    assert_eq!(stats.requests, (n_clients * 3) as u64);
    assert_eq!(stats.cache_insertions, 3, "{stats:?}");
    assert_eq!(
        stats.cache_hits + stats.coalesced,
        (n_clients * 3 - 3) as u64,
        "{stats:?}"
    );

    // Wave 2: duplicate submissions are hits, verified via the response's
    // cache-status field, and replay bit-identically.
    let mut client = Client::connect(addr).expect("connect");
    for (i, program) in programs.iter().enumerate() {
        let resp = client.optimize(request_for(program)).expect("optimize");
        assert_eq!(resp.cache, "hit", "{program}");
        assert_matches(&resp, &expected[i]);
    }
    let after = srv.stats();
    assert!(after.cache_hits >= stats.cache_hits + 3);

    srv.shutdown();
}

#[test]
fn identical_inflight_requests_single_flight() {
    let srv = server(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let addr = srv.local_addr();
    let program = Kernel::Gemv.expr(Kernel::Gemv.search_size()).to_string();

    let handles: Vec<_> = (0..6)
        .map(|_| {
            let program = program.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.optimize(request_for(&program)).expect("optimize")
            })
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Exactly one client computed; everyone else shared its result
    // (coalesced while in flight, or a cache hit after it landed).
    let misses = responses.iter().filter(|r| r.cache == "miss").count();
    assert_eq!(misses, 1, "statuses: {:?}", statuses(&responses));
    for r in &responses {
        assert!(
            ["hit", "miss", "coalesced"].contains(&r.cache.as_str()),
            "{}",
            r.cache
        );
        assert_eq!(r.solutions, responses[0].solutions, "shared one result");
        assert_eq!(r.fingerprint, responses[0].fingerprint);
    }
    let stats = srv.stats();
    assert_eq!(stats.cache_insertions, 1, "{stats:?}");
    assert_eq!(stats.cache_hits + stats.coalesced, 5, "{stats:?}");

    srv.shutdown();
}

fn statuses(responses: &[liar_serve::OptimizeResponse]) -> Vec<&str> {
    responses.iter().map(|r| r.cache.as_str()).collect()
}

#[test]
fn explain_op_returns_replayable_proofs_and_cached_replays_are_bit_identical() {
    let srv = server(ServerConfig::default());
    let mut client = Client::connect(srv.local_addr()).expect("connect");
    let program = Kernel::Vsum.expr(Kernel::Vsum.search_size()).to_string();

    // Cold explain: every solution carries a proof from the program to
    // its best expression…
    let mut req = request_for(&program);
    req.targets = vec!["blas".into(), "pytorch".into()];
    let cold = client.explain(req.clone()).expect("explain");
    assert_eq!(cold.cache, "miss");
    let rules = liar_core::rules::rules_for_targets(
        &[Target::Blas, Target::Torch],
        &liar_core::rules::RuleConfig::default(),
    );
    for sol in &cold.solutions {
        let msg = sol
            .proof
            .as_ref()
            .unwrap_or_else(|| panic!("{}: explain response lacks a proof", sol.target));
        assert_eq!(msg.source, program, "{}", sol.target);
        assert_eq!(msg.target, sol.best, "{}", sol.target);
        // …and the proof replays clean after a full wire round trip.
        let proof = msg.to_explanation().expect("proof deserializes");
        proof
            .check(&rules)
            .unwrap_or_else(|e| panic!("{}: served proof failed to replay: {e}", sol.target));
    }

    // The same explain request replays from the cache, proof included,
    // bit-identically.
    let warm = client.explain(req.clone()).expect("explain again");
    assert_eq!(warm.cache, "hit");
    assert_eq!(warm.solutions, cold.solutions);
    assert_eq!(warm.fingerprint, cold.fingerprint);

    // A plain optimize of the same program is a *different* fingerprint
    // (explain is a budget knob) and carries no proofs.
    let fast = client.optimize(req).expect("optimize");
    assert_ne!(fast.fingerprint, cold.fingerprint);
    assert!(fast.solutions.iter().all(|s| s.proof.is_none()));
    // Liftings agree between the explained and fast paths.
    for (f, c) in fast.solutions.iter().zip(&cold.solutions) {
        assert_eq!(f.lib_calls, c.lib_calls, "{}", f.target);
    }

    srv.shutdown();
}

#[test]
fn bounded_queue_rejects_when_full() {
    // queue_cap 0: every optimize is turned away with a structured error
    // while control ops keep working.
    let srv = server(ServerConfig {
        queue_cap: 0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(srv.local_addr()).expect("connect");
    client.ping().expect("ping still works");
    match client.optimize(request_for("(+ 1 2)")) {
        Err(liar_serve::ClientError::Server { code, .. }) => assert_eq!(code, "queue-full"),
        other => panic!("expected queue-full, got {other:?}"),
    }
    srv.shutdown();
}

#[test]
fn invalid_requests_get_structured_errors_and_the_connection_survives() {
    let srv = server(ServerConfig::default());
    let mut client = Client::connect(srv.local_addr()).expect("connect");

    let expect_code = |client: &mut Client, req: OptimizeRequest, code: ErrorCode| {
        match client.request(&liar_serve::Request::Optimize(req)).unwrap() {
            Response::Error { code: got, .. } => assert_eq!(got, code),
            other => panic!("expected {code:?}, got {other:?}"),
        }
    };

    // Program does not parse (including the NaN constant case).
    expect_code(&mut client, OptimizeRequest::new("((("), ErrorCode::ParseError);
    expect_code(
        &mut client,
        OptimizeRequest::new("(+ nan 1)"),
        ErrorCode::ParseError,
    );
    // Unknown target.
    let mut req = OptimizeRequest::new("(+ 1 2)");
    req.targets = vec!["fortran".into()];
    expect_code(&mut client, req, ErrorCode::UnknownTarget);
    // Budget over the server's ceiling.
    let mut req = OptimizeRequest::new("(+ 1 2)");
    req.steps = Some(10_000);
    expect_code(&mut client, req, ErrorCode::BudgetTooLarge);
    // Discount-scale fan-out is a budget knob too.
    let mut req = OptimizeRequest::new("(+ 1 2)");
    req.discount_scales = (0..1000).map(|i| 1.0 + i as f64).collect();
    expect_code(&mut client, req, ErrorCode::BudgetTooLarge);
    // As is machine-profile fan-out.
    let mut req = OptimizeRequest::new("(+ 1 2)");
    req.profiles = (0..1000).map(|_| "gpu".to_string()).collect();
    expect_code(&mut client, req, ErrorCode::BudgetTooLarge);
    // Unknown machine profile.
    let mut req = OptimizeRequest::new("(+ 1 2)");
    req.profiles = vec!["tpu".into()];
    expect_code(&mut client, req, ErrorCode::UnknownProfile);

    // The connection survived all of that.
    client.ping().expect("connection still alive");
    srv.shutdown();
}

#[test]
fn machine_profiles_fan_out_solutions() {
    let srv = server(ServerConfig::default());
    let mut client = Client::connect(srv.local_addr()).expect("connect");
    let program = Kernel::Vsum.expr(Kernel::Vsum.search_size()).to_string();

    let mut req = request_for(&program);
    req.targets = vec!["blas".into()];
    req.profiles = vec!["default".into(), "gpu".into()];
    let profiled = client.optimize(req).expect("optimize");
    let profiles: Vec<&str> = profiled
        .solutions
        .iter()
        .map(|s| s.profile.as_str())
        .collect();
    assert_eq!(profiles, ["default", "gpu"]);

    // A plain request is a different fingerprint, and its solution is
    // bit-identical to the profiled request's default-profile entry:
    // the default profile is the identity.
    let mut plain = request_for(&program);
    plain.targets = vec!["blas".into()];
    let unprofiled = client.optimize(plain).expect("optimize");
    assert_ne!(unprofiled.fingerprint, profiled.fingerprint);
    assert_eq!(unprofiled.solutions.len(), 1);
    assert_eq!(
        unprofiled.solutions[0].cost.to_bits(),
        profiled.solutions[0].cost.to_bits()
    );
    assert_eq!(unprofiled.solutions[0].best, profiled.solutions[0].best);

    srv.shutdown();
}

#[test]
fn unextractable_programs_get_structured_errors_and_workers_survive() {
    // One worker: before extraction errors were structured, an
    // unextractable program panicked the worker thread and every later
    // request hung. The error reply plus a served follow-up proves the
    // pool survived.
    let srv = server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(srv.local_addr()).expect("connect");

    // The program *is* a BLAS call: under the Torch model every
    // equivalent term prices at infinity.
    let mut req = request_for("(axpy #8 alpha A B)");
    req.targets = vec!["pytorch".into()];
    match client.optimize(req) {
        Err(liar_serve::ClientError::Server { code, message }) => {
            assert_eq!(code, "unextractable");
            assert!(message.contains("no extractable solution"), "{message}");
        }
        other => panic!("expected an unextractable error, got {other:?}"),
    }

    // The same program for BLAS succeeds on the same (sole) worker.
    let mut req = request_for("(axpy #8 alpha A B)");
    req.targets = vec!["blas".into()];
    let resp = client.optimize(req).expect("the worker survived the error");
    assert_eq!(resp.cache, "miss");

    let stats = srv.stats();
    assert!(stats.errors >= 1, "{stats:?}");
    srv.shutdown();
}

#[test]
fn malformed_and_oversized_frames_are_rejected_gracefully() {
    let srv = server(ServerConfig {
        max_frame: 256,
        ..ServerConfig::default()
    });
    let addr = srv.local_addr();

    // Oversized frame: structured error, connection stays usable.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let big = vec![b'x'; 1000];
        write_frame(&mut stream, &big).unwrap();
        let payload = read_frame(&mut stream, 1 << 20).unwrap().expect("reply");
        match Response::from_payload(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::FrameTooLarge),
            other => panic!("expected frame-too-large, got {other:?}"),
        }
        // Same connection, now a valid ping.
        write_frame(&mut stream, b"{\"op\":\"ping\"}").unwrap();
        let payload = read_frame(&mut stream, 1 << 20).unwrap().expect("pong");
        assert_eq!(Response::from_payload(&payload).unwrap(), Response::Pong);
    }

    // Malformed header: structured error, then the server closes (the
    // stream can no longer be trusted to be frame-aligned).
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"hello, world\n").unwrap();
        stream.flush().unwrap();
        let payload = read_frame(&mut stream, 1 << 20).unwrap().expect("reply");
        match Response::from_payload(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
            other => panic!("expected bad-frame, got {other:?}"),
        }
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("server closed");
        assert!(rest.is_empty(), "no further frames after a bad header");
    }

    // Bad JSON in a well-formed frame: structured error, connection
    // survives.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write_frame(&mut stream, b"this is not json").unwrap();
        let payload = read_frame(&mut stream, 1 << 20).unwrap().expect("reply");
        match Response::from_payload(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadJson),
            other => panic!("expected bad-json, got {other:?}"),
        }
        write_frame(&mut stream, b"{\"op\":\"ping\"}").unwrap();
        let payload = read_frame(&mut stream, 1 << 20).unwrap().expect("pong");
        assert_eq!(Response::from_payload(&payload).unwrap(), Response::Pong);
    }

    let stats = srv.stats();
    assert!(stats.errors >= 3, "{stats:?}");
    srv.shutdown();
}

#[test]
fn shutdown_over_the_protocol_drains() {
    let srv = server(ServerConfig::default());
    let addr = srv.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    let resp = client.optimize(request_for("(+ 1 2)")).expect("optimize");
    assert_eq!(resp.cache, "miss");
    client.shutdown().expect("acknowledged");
    // The server refuses new optimize work while draining.
    srv.wait();
    srv.shutdown();
}

/// The durable warm store survives the process boundary: a second server
/// on the same directory answers its very first submission from the
/// restored snapshot — `cache == "warm"`, zero saturation steps, answers
/// bit-identical to the cold run — and the `snapshot`/`restore` protocol
/// ops move a saturated graph to a third, empty-store server.
#[test]
fn warm_store_survives_restart_and_snapshot_ops_move_graphs() {
    let dir = std::env::temp_dir().join(format!("liar-e2e-warm-{}", std::process::id()));
    let dir_b = std::env::temp_dir().join(format!("liar-e2e-warm-b-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_b);

    let program = Kernel::Gemv.expr(Kernel::Gemv.search_size()).to_string();
    let expected = in_process(&program);

    // Server #1: the cold saturation lands in the durable store.
    let srv = server(ServerConfig {
        warm_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(srv.local_addr()).expect("connect");
    let cold = client.optimize(request_for(&program)).expect("optimize");
    assert_eq!(cold.cache, "miss");
    assert!(cold.saturation_steps > 0, "a cold run reports its steps");
    assert_matches(&cold, &expected);

    // The snapshot op hands the persisted graph over the wire…
    let snap = client
        .snapshot(cold.fingerprint.clone())
        .expect("snapshot op");
    assert_eq!(snap.fingerprint, cold.fingerprint);
    assert!(!snap.snapshot_hex.is_empty());
    // …and unknown fingerprints get a structured error.
    match client.snapshot("0".repeat(32)) {
        Err(liar_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, "unknown-snapshot")
        }
        other => panic!("expected unknown-snapshot, got {other:?}"),
    }
    srv.shutdown();

    // Server #2, same directory, fresh in-memory cache (the process
    // boundary): the first submission is served warm, then promoted.
    let srv2 = server(ServerConfig {
        warm_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client2 = Client::connect(srv2.local_addr()).expect("connect");
    let warm = client2.optimize(request_for(&program)).expect("optimize");
    assert_eq!(warm.cache, "warm", "restart must not recompute");
    assert_eq!(warm.saturation_steps, 0, "warm answers run no saturation");
    assert_eq!(warm.fingerprint, cold.fingerprint);
    assert_matches(&warm, &expected);
    let hit = client2.optimize(request_for(&program)).expect("optimize");
    assert_eq!(hit.cache, "hit", "warm answers promote to the memory cache");
    assert_eq!(hit.solutions, warm.solutions);
    srv2.shutdown();

    // Server #3, empty store: the restore op ships the graph in, after
    // which the same request is warm there too. Corrupt payloads are
    // rejected without touching the store.
    let srv3 = server(ServerConfig {
        warm_dir: Some(dir_b.clone()),
        ..ServerConfig::default()
    });
    let mut client3 = Client::connect(srv3.local_addr()).expect("connect");
    let mut corrupt = snap.clone();
    corrupt.snapshot_hex.truncate(corrupt.snapshot_hex.len() / 2);
    match client3.restore(&corrupt) {
        Err(liar_serve::ClientError::Server { code, .. }) => assert_eq!(code, "bad-snapshot"),
        other => panic!("expected bad-snapshot, got {other:?}"),
    }
    let restored = client3.restore(&snap).expect("restore op");
    assert_eq!(restored.fingerprint, snap.fingerprint);
    assert!(restored.n_nodes > 0);
    let moved = client3.optimize(request_for(&program)).expect("optimize");
    assert_eq!(moved.cache, "warm", "a restored snapshot serves warm");
    assert_eq!(moved.saturation_steps, 0);
    assert_matches(&moved, &expected);
    srv3.shutdown();

    // Without a store, snapshot ops are a structured refusal.
    let srv4 = server(ServerConfig::default());
    let mut client4 = Client::connect(srv4.local_addr()).expect("connect");
    match client4.snapshot(cold.fingerprint.clone()) {
        Err(liar_serve::ClientError::Server { code, .. }) => assert_eq!(code, "no-store"),
        other => panic!("expected no-store, got {other:?}"),
    }
    srv4.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// A corrupt store file must never corrupt an answer: the server falls
/// back to a cold saturation (bit-identical solutions), overwrites the
/// bad file with the fresh result, and the *next* restart serves warm
/// again — the store self-heals.
#[test]
fn corrupt_store_files_fall_back_cold_and_self_heal() {
    let dir = std::env::temp_dir().join(format!("liar-e2e-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let program = Kernel::Vsum.expr(Kernel::Vsum.search_size()).to_string();
    let expected = in_process(&program);

    let srv = server(ServerConfig {
        warm_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(srv.local_addr()).expect("connect");
    let cold = client.optimize(request_for(&program)).expect("optimize");
    assert_eq!(cold.cache, "miss");
    srv.shutdown();

    // Flip a byte deep in the persisted snapshot payload.
    let path = dir.join(format!("{}.snap", cold.fingerprint));
    let mut bytes = std::fs::read(&path).expect("store file exists");
    let pos = bytes.len() - bytes.len() / 4;
    bytes[pos] ^= 0x40;
    std::fs::write(&path, &bytes).expect("rewrite store file");

    // Restart: the corrupt entry is a cold fallback, not a wrong answer.
    let srv2 = server(ServerConfig {
        warm_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client2 = Client::connect(srv2.local_addr()).expect("connect");
    let fallback = client2.optimize(request_for(&program)).expect("optimize");
    assert_eq!(fallback.cache, "miss", "corrupt snapshots must recompute");
    assert!(fallback.saturation_steps > 0);
    assert_matches(&fallback, &expected);
    srv2.shutdown();

    // The recomputation overwrote the bad file: warm again.
    let srv3 = server(ServerConfig {
        warm_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client3 = Client::connect(srv3.local_addr()).expect("connect");
    let healed = client3.optimize(request_for(&program)).expect("optimize");
    assert_eq!(healed.cache, "warm", "the store heals itself on recompute");
    assert_matches(&healed, &expected);
    srv3.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

/// The observability surface end to end: queue-depth / in-flight gauges
/// and latency percentiles in `stats`, the `metrics` op as valid
/// Prometheus text exposition, and a Chrome trace-event export with
/// correctly nested per-request phase spans.
#[test]
fn stats_gauges_metrics_scrape_and_trace_export() {
    let dir = std::env::temp_dir().join(format!("liar-e2e-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let srv = server(ServerConfig {
        trace_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(srv.local_addr()).expect("connect");

    // Idle: nothing queued, nothing in flight, no latency observed yet.
    let idle = client.stats().expect("stats");
    assert_eq!(idle.queue_depth, 0);
    assert_eq!(idle.inflight, 0);
    assert_eq!(idle.latency_p50_ms, 0.0);

    let program = Kernel::Vsum.expr(Kernel::Vsum.search_size()).to_string();
    let mut req = request_for(&program);
    req.id = Some("trace-me".to_string());
    let first = client.optimize(req.clone()).expect("optimize");
    assert_eq!(first.cache, "miss");
    let again = client.optimize(req).expect("optimize");
    assert_eq!(again.cache, "hit");

    // Settled: the gauges drained back to zero and the percentiles are
    // populated and ordered.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.queue_depth, 0, "no jobs queued once the waves settle");
    assert_eq!(stats.inflight, 0, "no single-flight leaders once settled");
    assert!(stats.latency_p50_ms > 0.0, "two requests were observed");
    assert!(stats.latency_p50_ms <= stats.latency_p95_ms);
    assert!(stats.latency_p95_ms <= stats.latency_p99_ms);

    // The metrics op is valid Prometheus text exposition carrying the
    // same counters.
    let scrape = client.metrics().expect("metrics").prometheus;
    liar_trace::prom::validate_exposition(&scrape).expect("valid exposition");
    assert!(scrape.contains("liar_requests_total 2"), "scrape:\n{scrape}");
    assert!(scrape.contains("liar_cache_hits_total 1"), "scrape:\n{scrape}");
    assert!(scrape.contains("liar_queue_depth 0"), "scrape:\n{scrape}");
    assert!(
        scrape.contains("liar_request_latency_ms_bucket{le=\"+Inf\"} 2"),
        "both requests land in the latency histogram:\n{scrape}"
    );
    // Naming-convention audit: every family is liar_-prefixed and
    // declared exactly once; the build/uptime gauges are present.
    let families =
        liar_trace::prom::audit_metric_names(&scrape, "liar_").expect("audit passes");
    assert!(families.iter().any(|f| f == "liar_build_info"), "{families:?}");
    assert!(families.iter().any(|f| f == "liar_uptime_seconds"), "{families:?}");
    assert!(
        scrape.contains(&format!(
            "liar_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        )),
        "scrape:\n{scrape}"
    );

    // Live introspection: the cold saturation left growth tables behind
    // (conserved), and the flight recorder saw the miss then the hit on
    // the same fingerprint.
    // (The cold saturation also logged a rule_fired event per applied
    // rule per step, so ask for the whole ring, not just a short tail.)
    let introspect = client.introspect(256).expect("introspect");
    let report = introspect.report.expect("one cold saturation completed");
    assert!(report.n_nodes > 0 && !report.rules.is_empty());
    report.check().expect("attribution conservation holds on the daemon");
    let kinds: Vec<_> = introspect.flight.iter().map(|e| e.kind.name()).collect();
    assert!(kinds.contains(&"rule_fired"), "{kinds:?}");
    assert!(kinds.contains(&"cache_miss"), "{kinds:?}");
    assert!(kinds.contains(&"cache_hit"), "{kinds:?}");
    let fp = &first.fingerprint;
    assert!(
        introspect.flight.iter().any(|e| &e.detail == fp),
        "flight events carry the request fingerprint"
    );

    srv.shutdown();

    // Shutdown dumped a Chrome trace: it parses as JSON, and the request
    // span (named by the request's trace id) contains the optimize and
    // serialize phase spans on the same lane.
    let trace = std::fs::read_to_string(dir.join("serve-trace.json")).expect("trace file");
    let json = liar_serve::json::parse(&trace).expect("trace parses as JSON");
    let events = json
        .get("traceEvents")
        .and_then(|j| j.as_arr())
        .expect("traceEvents array");
    let span = |name: &str| {
        events.iter().find(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("name").and_then(|n| n.as_str()) == Some(name)
        })
    };
    let bounds = |e: &liar_serve::json::Json| {
        let ts = e.get("ts").and_then(|v| v.as_f64()).expect("ts");
        let dur = e.get("dur").and_then(|v| v.as_f64()).expect("dur");
        let tid = e.get("tid").and_then(|v| v.as_f64()).expect("tid");
        (ts, ts + dur, tid)
    };
    let request = span("request/trace-me").expect("request span named by trace id");
    let optimize = span("optimize").expect("optimize phase span");
    let serialize = span("serialize").expect("serialize phase span");
    let (req_start, req_end, req_tid) = bounds(request);
    for phase in [optimize, serialize] {
        let (start, end, tid) = bounds(phase);
        assert_eq!(tid, req_tid, "phase spans share the request's lane");
        assert!(
            req_start <= start && end <= req_end,
            "phase spans nest inside the request span"
        );
    }
    // The pipeline's lanes are in the same trace: saturation ran.
    assert!(span("saturate").is_some(), "pipeline saturate span");
    assert!(span("extract/flatten").is_some(), "extraction spans");

    let _ = std::fs::remove_dir_all(&dir);
}
