//! Shape inference over IR expressions, needed to size C buffers.

use liar_egraph::Id;
use liar_ir::{ArrayLang, Expr, LibFn};

/// The shape of an expression's value: a scalar or a dense array with
/// known extents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// A `double` (or an index).
    Scalar,
    /// An array with the given extents (row-major).
    Arr(Vec<usize>),
}

impl Shape {
    /// Number of `f64` elements occupied.
    pub fn len(&self) -> usize {
        match self {
            Shape::Scalar => 1,
            Shape::Arr(dims) => dims.iter().product(),
        }
    }

    /// True for the scalar shape.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The extents (empty for scalars).
    pub fn dims(&self) -> &[usize] {
        match self {
            Shape::Scalar => &[],
            Shape::Arr(dims) => dims,
        }
    }

    /// Prepend an extent (the shape of `build n` over this element shape).
    pub fn prepend(&self, n: usize) -> Shape {
        let mut dims = vec![n];
        dims.extend(self.dims());
        Shape::Arr(dims)
    }

    /// Drop the leading extent (the shape of indexing into this shape).
    pub fn index(&self) -> Option<Shape> {
        match self {
            Shape::Scalar => None,
            Shape::Arr(dims) if dims.len() == 1 => Some(Shape::Scalar),
            Shape::Arr(dims) => Some(Shape::Arr(dims[1..].to_vec())),
        }
    }
}

/// Shape inference failure (also reused for emission errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError(pub String);

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shape error: {}", self.0)
    }
}

impl std::error::Error for ShapeError {}

/// Infers shapes for the nodes of an extracted expression.
///
/// The binder environment maps De Bruijn indices to shapes; loop indices
/// introduced by `build`/`ifold` lambdas are scalars, `ifold` accumulators
/// take their initializer's shape.
pub struct ShapeCtx<'a> {
    expr: &'a Expr,
    input_shape: &'a dyn Fn(&str) -> Option<Shape>,
}

impl<'a> ShapeCtx<'a> {
    /// Create a context with a resolver for named inputs.
    pub fn new(expr: &'a Expr, input_shape: &'a dyn Fn(&str) -> Option<Shape>) -> Self {
        ShapeCtx { expr, input_shape }
    }

    fn dim(&self, id: Id) -> Result<usize, ShapeError> {
        self.expr
            .node(id)
            .as_dim()
            .ok_or_else(|| ShapeError("expected a #n extent".into()))
    }

    /// The shape of node `id` under binder shapes `env` (innermost first).
    pub fn shape(&self, id: Id, env: &[Shape]) -> Result<Shape, ShapeError> {
        match self.expr.node(id) {
            ArrayLang::Dim(_) | ArrayLang::Const(_) => Ok(Shape::Scalar),
            ArrayLang::Var(i) => env
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| ShapeError(format!("unbound %{i}"))),
            ArrayLang::Sym(name) => (self.input_shape)(name)
                .ok_or_else(|| ShapeError(format!("unknown input {name}"))),
            ArrayLang::Lam(_) | ArrayLang::App(_) => {
                Err(ShapeError("first-class functions have no C shape".into()))
            }
            ArrayLang::Build([n, f]) => {
                let n = self.dim(*n)?;
                let body = self.lambda_body(*f)?;
                let mut inner = vec![Shape::Scalar];
                inner.extend_from_slice(env);
                Ok(self.shape(body, &inner)?.prepend(n))
            }
            ArrayLang::Get([a, _]) => self
                .shape(*a, env)?
                .index()
                .ok_or_else(|| ShapeError("indexed a scalar".into())),
            ArrayLang::IFold([_, init, _]) => self.shape(*init, env),
            ArrayLang::Tuple(_) | ArrayLang::Fst(_) | ArrayLang::Snd(_) => {
                Err(ShapeError("tuples are not lowered to C".into()))
            }
            ArrayLang::Add(_)
            | ArrayLang::Sub(_)
            | ArrayLang::Mul(_)
            | ArrayLang::Div(_)
            | ArrayLang::Gt(_) => Ok(Shape::Scalar),
            ArrayLang::Call(f, args) => self.call_shape(*f, args),
        }
    }

    /// The body of a node that must syntactically be a `lam`.
    pub fn lambda_body(&self, id: Id) -> Result<Id, ShapeError> {
        match self.expr.node(id) {
            ArrayLang::Lam(body) => Ok(*body),
            other => Err(ShapeError(format!(
                "expected a lambda, found {other:?}"
            ))),
        }
    }

    fn call_shape(&self, f: LibFn, args: &[Id]) -> Result<Shape, ShapeError> {
        let d = |i: usize| self.dim(args[i]);
        Ok(match f {
            LibFn::Dot | LibFn::TSum => Shape::Scalar,
            LibFn::Axpy | LibFn::Memset | LibFn::TFull => Shape::Arr(vec![d(0)?]),
            // Both gemv orientations carry dims [result length, inner
            // length]; the transpose flag only changes how A is stored.
            LibFn::Gemv { .. } => Shape::Arr(vec![d(0)?]),
            LibFn::Gemm { .. } | LibFn::TMm => Shape::Arr(vec![d(0)?, d(1)?]),
            LibFn::Transpose => Shape::Arr(vec![d(1)?, d(0)?]),
            LibFn::TMv => Shape::Arr(vec![d(0)?]),
            LibFn::TAdd | LibFn::TMul => Shape::Arr(vec![d(0)?]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liar_ir::{dsl, Expr};

    fn resolver(shape: Shape) -> impl Fn(&str) -> Option<Shape> {
        move |_| Some(shape.clone())
    }

    #[test]
    fn build_prepends_extent() {
        let e = dsl::build(4, dsl::lam(dsl::num(0.0)));
        let f = resolver(Shape::Scalar);
        let ctx = ShapeCtx::new(&e, &f);
        assert_eq!(ctx.shape(e.root(), &[]).unwrap(), Shape::Arr(vec![4]));
    }

    #[test]
    fn nested_builds_are_matrices() {
        let e = dsl::build(2, dsl::lam(dsl::build(3, dsl::lam(dsl::var(1)))));
        let f = resolver(Shape::Scalar);
        let ctx = ShapeCtx::new(&e, &f);
        assert_eq!(ctx.shape(e.root(), &[]).unwrap(), Shape::Arr(vec![2, 3]));
    }

    #[test]
    fn get_drops_leading_extent() {
        let e = dsl::get(dsl::sym("A"), dsl::num(0.0));
        let f = resolver(Shape::Arr(vec![2, 3]));
        let ctx = ShapeCtx::new(&e, &f);
        assert_eq!(ctx.shape(e.root(), &[]).unwrap(), Shape::Arr(vec![3]));
    }

    #[test]
    fn ifold_takes_init_shape() {
        let e = dsl::ifold(4, dsl::num(0.0), dsl::lam(dsl::lam(dsl::var(0))));
        let f = resolver(Shape::Scalar);
        let ctx = ShapeCtx::new(&e, &f);
        assert_eq!(ctx.shape(e.root(), &[]).unwrap(), Shape::Scalar);
    }

    #[test]
    fn call_shapes() {
        let f = resolver(Shape::Arr(vec![4]));
        let e: Expr = "(dot #4 A A)".parse().unwrap();
        assert_eq!(
            ShapeCtx::new(&e, &f).shape(e.root(), &[]).unwrap(),
            Shape::Scalar
        );
        let e: Expr = "(memset #4 0)".parse().unwrap();
        assert_eq!(
            ShapeCtx::new(&e, &f).shape(e.root(), &[]).unwrap(),
            Shape::Arr(vec![4])
        );
        let e: Expr = "(transpose #2 #3 A)".parse().unwrap();
        assert_eq!(
            ShapeCtx::new(&e, &f).shape(e.root(), &[]).unwrap(),
            Shape::Arr(vec![3, 2])
        );
    }
}
