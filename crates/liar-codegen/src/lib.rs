//! C code generation from extracted LIAR expressions.
//!
//! The paper compiles selected expressions to C "using an approach similar
//! to prior work on C compilation from a functional IR" (§VI): `build`
//! becomes a loop filling a buffer, `ifold` becomes an accumulator loop,
//! and recognized idioms become CBLAS / libc calls. This crate reproduces
//! that lowering as an inspectable artifact (the in-process benchmarks use
//! `liar-runtime` instead; see ARCHITECTURE.md).
//!
//! ```
//! use liar_codegen::{emit_kernel, CInput};
//! use liar_ir::dsl;
//!
//! let expr = dsl::vadd(4, dsl::sym("A"), dsl::sym("B"));
//! let c = emit_kernel(
//!     "vadd4",
//!     &expr,
//!     &[CInput::vector("A", 4), CInput::vector("B", 4)],
//! )
//! .unwrap();
//! assert!(c.contains("void vadd4"));
//! assert!(c.contains("for ("));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod emit;
mod shape;

pub use emit::{emit_kernel, emit_kernel_variants, CInput, CodegenError};
pub use shape::Shape;
