//! The C emitter: loop nests from `build`/`ifold`, CBLAS calls from
//! recognized idioms.

use std::fmt::Write as _;

use liar_egraph::Id;
use liar_ir::{ArrayLang, Expr, LibFn};

use crate::shape::{Shape, ShapeCtx, ShapeError};

/// A named kernel input with a C-visible shape.
#[derive(Debug, Clone)]
pub struct CInput {
    /// Parameter name.
    pub name: String,
    /// Value shape.
    pub shape: Shape,
}

impl CInput {
    /// A scalar input.
    pub fn scalar(name: &str) -> Self {
        CInput {
            name: name.into(),
            shape: Shape::Scalar,
        }
    }

    /// A vector input.
    pub fn vector(name: &str, n: usize) -> Self {
        CInput {
            name: name.into(),
            shape: Shape::Arr(vec![n]),
        }
    }

    /// A matrix input.
    pub fn matrix(name: &str, r: usize, c: usize) -> Self {
        CInput {
            name: name.into(),
            shape: Shape::Arr(vec![r, c]),
        }
    }

    /// An input of arbitrary rank.
    pub fn tensor(name: &str, dims: Vec<usize>) -> Self {
        CInput {
            name: name.into(),
            shape: Shape::Arr(dims),
        }
    }
}

/// Code generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// A construct the C backend does not lower (tuples, first-class
    /// functions outside loop headers, PyTorch calls).
    Unsupported(String),
    /// Shape inference failed.
    Shape(String),
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::Unsupported(msg) => write!(f, "unsupported construct: {msg}"),
            CodegenError::Shape(msg) => write!(f, "shape error: {msg}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<ShapeError> for CodegenError {
    fn from(e: ShapeError) -> Self {
        CodegenError::Shape(e.0)
    }
}

/// A computed C value: either an inline scalar expression or a named
/// buffer with a shape.
#[derive(Debug, Clone)]
enum CVal {
    Scalar(String),
    /// Base pointer expression + extents.
    Arr(String, Vec<usize>),
}

struct Emitter<'a> {
    expr: &'a Expr,
    inputs: &'a [CInput],
    body: String,
    indent: usize,
    next_tmp: usize,
    uses_blas: bool,
    uses_memset: bool,
}

/// Emit a self-contained C translation unit defining
/// `void <name>(inputs…, double *out)`.
///
/// Scalars are passed by value; arrays as `const double *` (row-major).
/// Recognized BLAS idioms become CBLAS calls; `memset(0)` becomes libc
/// `memset`; everything else lowers to loop nests.
///
/// # Errors
///
/// Returns [`CodegenError`] for tuples, PyTorch calls (the paper's
/// compiler "does not currently have a Python back-end" either), or
/// ill-shaped expressions.
pub fn emit_kernel(name: &str, expr: &Expr, inputs: &[CInput]) -> Result<String, CodegenError> {
    let mut e = Emitter {
        expr,
        inputs,
        body: String::new(),
        indent: 1,
        next_tmp: 0,
        uses_blas: false,
        uses_memset: false,
    };
    let root_val = e.emit(expr.root(), &mut Vec::new())?;
    let lookup = |n: &str| {
        inputs
            .iter()
            .find(|i| i.name == n)
            .map(|i| i.shape.clone())
    };
    let ctx = ShapeCtx::new(expr, &lookup);
    let out_shape = ctx.shape(expr.root(), &[])?;

    // Copy the result into the out parameter.
    match (&root_val, &out_shape) {
        (CVal::Scalar(s), _) => {
            let _ = writeln!(e.body, "    out[0] = {s};");
        }
        (CVal::Arr(base, dims), _) => {
            let n: usize = dims.iter().product();
            let _ = writeln!(
                e.body,
                "    for (int i = 0; i < {n}; i++) out[i] = {base}[i];"
            );
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "#include <stdlib.h>");
    if e.uses_memset {
        let _ = writeln!(out, "#include <string.h>");
    }
    if e.uses_blas {
        let _ = writeln!(out, "#include <cblas.h>");
    }
    let _ = writeln!(out);
    let mut params: Vec<String> = inputs
        .iter()
        .map(|i| match &i.shape {
            Shape::Scalar => format!("double {}", i.name),
            Shape::Arr(_) => format!("const double *{}", i.name),
        })
        .collect();
    params.push("double *out".to_string());
    let _ = writeln!(out, "void {name}({}) {{", params.join(", "));
    out.push_str(&e.body);
    let _ = writeln!(out, "}}");
    Ok(out)
}

/// Emit one C translation unit containing one function per extracted
/// variant, named `{name}_{label}` — the multi-target pipeline's
/// "saturate once, extract everywhere" output as a single inspectable
/// artifact.
///
/// Variants the C backend cannot lower (tuples, first-class functions,
/// PyTorch calls) become a comment instead of failing the whole unit, so
/// a BLAS + pure-C + PyTorch sweep always produces compilable C for the
/// supported variants.
///
/// # Example
///
/// ```
/// use liar_codegen::{emit_kernel_variants, CInput};
/// use liar_ir::dsl;
///
/// let loop_form = dsl::vadd(4, dsl::sym("A"), dsl::sym("B"));
/// let call_form = dsl::call(
///     liar_ir::LibFn::Axpy,
///     &[&dsl::dim(4), &dsl::num(1.0), &dsl::sym("A"), &dsl::sym("B")],
/// );
/// let c = emit_kernel_variants(
///     "vadd4",
///     &[("pure_c".to_string(), &loop_form), ("blas".to_string(), &call_form)],
///     &[CInput::vector("A", 4), CInput::vector("B", 4)],
/// );
/// assert!(c.contains("void vadd4_pure_c"));
/// assert!(c.contains("void vadd4_blas"));
/// assert!(c.contains("cblas_daxpy"));
/// ```
pub fn emit_kernel_variants(
    name: &str,
    variants: &[(String, &Expr)],
    inputs: &[CInput],
) -> String {
    let mut includes: Vec<String> = Vec::new();
    let mut bodies: Vec<String> = Vec::new();
    for (label, expr) in variants {
        match emit_kernel(&format!("{name}_{label}"), expr, inputs) {
            Ok(c) => {
                let mut body: Vec<&str> = Vec::new();
                for line in c.lines() {
                    if line.starts_with("#include") {
                        if !includes.iter().any(|i| i == line) {
                            includes.push(line.to_string());
                        }
                    } else {
                        body.push(line);
                    }
                }
                bodies.push(body.join("\n").trim().to_string());
            }
            Err(e) => bodies.push(format!("/* {name}_{label}: not lowered to C: {e} */")),
        }
    }
    let mut out = String::new();
    for inc in &includes {
        out.push_str(inc);
        out.push('\n');
    }
    if !includes.is_empty() {
        out.push('\n');
    }
    out.push_str(&bodies.join("\n\n"));
    out.push('\n');
    out
}

impl Emitter<'_> {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.body.push_str("    ");
        }
        self.body.push_str(s);
        self.body.push('\n');
    }

    fn tmp(&mut self) -> String {
        self.next_tmp += 1;
        format!("t{}", self.next_tmp - 1)
    }

    fn dim(&self, id: Id) -> Result<usize, CodegenError> {
        self.expr
            .node(id)
            .as_dim()
            .ok_or_else(|| CodegenError::Shape("expected #n extent".into()))
    }

    fn scalar(&mut self, id: Id, env: &mut Vec<CVal>) -> Result<String, CodegenError> {
        match self.emit(id, env)? {
            CVal::Scalar(s) => Ok(s),
            CVal::Arr(..) => Err(CodegenError::Shape(
                "array used where a scalar was expected".into(),
            )),
        }
    }

    fn array(&mut self, id: Id, env: &mut Vec<CVal>) -> Result<(String, Vec<usize>), CodegenError> {
        match self.emit(id, env)? {
            CVal::Arr(base, dims) => Ok((base, dims)),
            CVal::Scalar(_) => Err(CodegenError::Shape(
                "scalar used where an array was expected".into(),
            )),
        }
    }

    /// Emit statements computing node `id`; `env` maps De Bruijn indices
    /// (innermost first) to already-computed values.
    fn emit(&mut self, id: Id, env: &mut Vec<CVal>) -> Result<CVal, CodegenError> {
        match self.expr.node(id).clone() {
            ArrayLang::Dim(n) => Ok(CVal::Scalar(n.to_string())),
            ArrayLang::Const(c) => {
                let v = c.get();
                if v == v.trunc() && v.abs() < 1e15 {
                    Ok(CVal::Scalar(format!("{v:.1}")))
                } else {
                    Ok(CVal::Scalar(format!("{v}")))
                }
            }
            ArrayLang::Sym(name) => {
                let input = self
                    .inputs
                    .iter()
                    .find(|i| i.name == name)
                    .ok_or_else(|| CodegenError::Shape(format!("unknown input {name}")))?;
                Ok(match &input.shape {
                    Shape::Scalar => CVal::Scalar(name),
                    Shape::Arr(dims) => CVal::Arr(name, dims.clone()),
                })
            }
            ArrayLang::Var(i) => env
                .get(env.len().wrapping_sub(1 + i as usize))
                .cloned()
                .ok_or_else(|| CodegenError::Shape(format!("unbound %{i}"))),
            ArrayLang::Lam(_) | ArrayLang::App(_) => Err(CodegenError::Unsupported(
                "first-class function outside a loop header".into(),
            )),
            ArrayLang::Build([n, f]) => {
                let n = self.dim(n)?;
                let body = self.lambda_body(f)?;
                // Element shape from a dry run at index 0 is fragile;
                // instead infer from the shape context.
                let elem_dims = self.element_dims(f)?;
                let total = n * elem_dims.iter().product::<usize>();
                let buf = self.tmp();
                self.line(&format!("double *{buf} = malloc({total} * sizeof(double));"));
                let iv = format!("i{}", env.len());
                self.line(&format!("for (int {iv} = 0; {iv} < {n}; {iv}++) {{"));
                self.indent += 1;
                env.push(CVal::Scalar(iv.clone()));
                let elem = self.emit(body, env)?;
                env.pop();
                let stride: usize = elem_dims.iter().product();
                match elem {
                    CVal::Scalar(s) => self.line(&format!("{buf}[{iv}] = {s};")),
                    CVal::Arr(base, dims) => {
                        let len: usize = dims.iter().product();
                        self.line(&format!(
                            "for (int q = 0; q < {len}; q++) {buf}[{iv} * {stride} + q] = {base}[q];"
                        ));
                    }
                }
                self.indent -= 1;
                self.line("}");
                let mut dims = vec![n];
                dims.extend(elem_dims);
                Ok(CVal::Arr(buf, dims))
            }
            ArrayLang::Get([a, i]) => {
                let (base, dims) = self.array(a, env)?;
                let idx = self.scalar(i, env)?;
                if dims.len() == 1 {
                    Ok(CVal::Scalar(format!("{base}[{idx}]")))
                } else {
                    let stride: usize = dims[1..].iter().product();
                    Ok(CVal::Arr(
                        format!("(&{base}[({idx}) * {stride}])"),
                        dims[1..].to_vec(),
                    ))
                }
            }
            ArrayLang::IFold([n, init, f]) => {
                let n = self.dim(n)?;
                let init = self.scalar(init, env)?;
                let outer = self.lambda_body(f)?;
                let inner = self.lambda_body_id(outer)?;
                let acc = self.tmp();
                self.line(&format!("double {acc} = {init};"));
                let iv = format!("i{}", env.len());
                self.line(&format!("for (int {iv} = 0; {iv} < {n}; {iv}++) {{"));
                self.indent += 1;
                env.push(CVal::Scalar(iv.clone()));
                env.push(CVal::Scalar(acc.clone()));
                let step = self.scalar(inner, env)?;
                env.pop();
                env.pop();
                self.line(&format!("{acc} = {step};"));
                self.indent -= 1;
                self.line("}");
                Ok(CVal::Scalar(acc))
            }
            ArrayLang::Tuple(_) | ArrayLang::Fst(_) | ArrayLang::Snd(_) => Err(
                CodegenError::Unsupported("tuples are not lowered to C".into()),
            ),
            ArrayLang::Add([a, b]) => self.binop(a, b, env, "+"),
            ArrayLang::Sub([a, b]) => self.binop(a, b, env, "-"),
            ArrayLang::Mul([a, b]) => self.binop(a, b, env, "*"),
            ArrayLang::Div([a, b]) => self.binop(a, b, env, "/"),
            ArrayLang::Gt([a, b]) => self.binop(a, b, env, ">"),
            ArrayLang::Call(f, args) => self.call(f, &args, env),
        }
    }

    fn binop(
        &mut self,
        a: Id,
        b: Id,
        env: &mut Vec<CVal>,
        op: &str,
    ) -> Result<CVal, CodegenError> {
        let a = self.scalar(a, env)?;
        let b = self.scalar(b, env)?;
        Ok(CVal::Scalar(format!("({a} {op} {b})")))
    }

    fn lambda_body(&self, id: Id) -> Result<Id, CodegenError> {
        match self.expr.node(id) {
            ArrayLang::Lam(body) => Ok(*body),
            _ => Err(CodegenError::Unsupported(
                "build/ifold argument must be a literal lambda".into(),
            )),
        }
    }

    fn lambda_body_id(&self, id: Id) -> Result<Id, CodegenError> {
        self.lambda_body(id)
    }

    /// Extents of one element of `build _ f` (empty for scalar elements).
    fn element_dims(&self, f: Id) -> Result<Vec<usize>, CodegenError> {
        let lookup = |n: &str| {
            self.inputs
                .iter()
                .find(|i| i.name == n)
                .map(|i| i.shape.clone())
        };
        let ctx = ShapeCtx::new(self.expr, &lookup);
        let body = ctx.lambda_body(f).map_err(CodegenError::from)?;
        // Binder shapes above this lambda are all scalars (loop indices)
        // or accumulators; conservatively use a deep scalar environment.
        let env = vec![Shape::Scalar; 16];
        let shape = ctx.shape(body, &env).map_err(CodegenError::from)?;
        Ok(shape.dims().to_vec())
    }

    fn call(
        &mut self,
        f: LibFn,
        args: &[Id],
        env: &mut Vec<CVal>,
    ) -> Result<CVal, CodegenError> {
        let nd = f.n_dims();
        match f {
            LibFn::Dot => {
                self.uses_blas = true;
                let n = self.dim(args[0])?;
                let (a, _) = self.array(args[nd], env)?;
                let (b, _) = self.array(args[nd + 1], env)?;
                Ok(CVal::Scalar(format!("cblas_ddot({n}, {a}, 1, {b}, 1)")))
            }
            LibFn::Axpy => {
                self.uses_blas = true;
                let n = self.dim(args[0])?;
                let alpha = self.scalar(args[nd], env)?;
                let (a, _) = self.array(args[nd + 1], env)?;
                let (b, _) = self.array(args[nd + 2], env)?;
                let buf = self.tmp();
                self.line(&format!("double *{buf} = malloc({n} * sizeof(double));"));
                self.line(&format!(
                    "for (int q = 0; q < {n}; q++) {buf}[q] = {b}[q];"
                ));
                self.line(&format!("cblas_daxpy({n}, {alpha}, {a}, 1, {buf}, 1);"));
                Ok(CVal::Arr(buf, vec![n]))
            }
            LibFn::Gemv { trans } => {
                self.uses_blas = true;
                let (n, m) = (self.dim(args[0])?, self.dim(args[1])?);
                let alpha = self.scalar(args[nd], env)?;
                let (a, _) = self.array(args[nd + 1], env)?;
                let (b, _) = self.array(args[nd + 2], env)?;
                let beta = self.scalar(args[nd + 3], env)?;
                let (c, _) = self.array(args[nd + 4], env)?;
                let buf = self.tmp();
                self.line(&format!("double *{buf} = malloc({n} * sizeof(double));"));
                self.line(&format!(
                    "for (int q = 0; q < {n}; q++) {buf}[q] = {c}[q];"
                ));
                let (t, rows, cols) = if trans {
                    ("CblasTrans", m, n)
                } else {
                    ("CblasNoTrans", n, m)
                };
                self.line(&format!(
                    "cblas_dgemv(CblasRowMajor, {t}, {rows}, {cols}, {alpha}, {a}, {cols}, {b}, 1, {beta}, {buf}, 1);"
                ));
                Ok(CVal::Arr(buf, vec![n]))
            }
            LibFn::Gemm { trans_a, trans_b } => {
                self.uses_blas = true;
                let (n, m, k) = (
                    self.dim(args[0])?,
                    self.dim(args[1])?,
                    self.dim(args[2])?,
                );
                let alpha = self.scalar(args[nd], env)?;
                let (a, _) = self.array(args[nd + 1], env)?;
                let (b, _) = self.array(args[nd + 2], env)?;
                let beta = self.scalar(args[nd + 3], env)?;
                let (c, _) = self.array(args[nd + 4], env)?;
                let buf = self.tmp();
                self.line(&format!(
                    "double *{buf} = malloc({n} * {m} * sizeof(double));"
                ));
                self.line(&format!(
                    "for (int q = 0; q < {n} * {m}; q++) {buf}[q] = {c}[q];"
                ));
                // The flags follow BLAS: a set flag transposes the stored
                // matrix, so they map straight onto CBLAS ops. Storage:
                // A is n×k (lda=k) unless transposed (k×n, lda=n); B is
                // k×m (ldb=m) unless transposed (m×k, ldb=k).
                let ta = if trans_a { "CblasTrans" } else { "CblasNoTrans" };
                let tb = if trans_b { "CblasTrans" } else { "CblasNoTrans" };
                let lda = if trans_a { n } else { k };
                let ldb = if trans_b { k } else { m };
                self.line(&format!(
                    "cblas_dgemm(CblasRowMajor, {ta}, {tb}, {n}, {m}, {k}, {alpha}, {a}, {lda}, {b}, {ldb}, {beta}, {buf}, {m});"
                ));
                Ok(CVal::Arr(buf, vec![n, m]))
            }
            LibFn::Memset => {
                self.uses_memset = true;
                let n = self.dim(args[0])?;
                let buf = self.tmp();
                self.line(&format!("double *{buf} = malloc({n} * sizeof(double));"));
                self.line(&format!("memset({buf}, 0, {n} * sizeof(double));"));
                Ok(CVal::Arr(buf, vec![n]))
            }
            LibFn::Transpose => {
                let (n, m) = (self.dim(args[0])?, self.dim(args[1])?);
                let (a, _) = self.array(args[nd], env)?;
                let buf = self.tmp();
                self.line(&format!(
                    "double *{buf} = malloc({n} * {m} * sizeof(double));"
                ));
                self.line(&format!(
                    "for (int r = 0; r < {n}; r++) for (int q = 0; q < {m}; q++) {buf}[q * {n} + r] = {a}[r * {m} + q];"
                ));
                Ok(CVal::Arr(buf, vec![m, n]))
            }
            LibFn::TAdd | LibFn::TMul | LibFn::TMv | LibFn::TMm | LibFn::TSum | LibFn::TFull => {
                Err(CodegenError::Unsupported(format!(
                    "PyTorch call {f} has no C lowering (the paper's PyTorch results are qualitative)"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liar_ir::dsl;

    #[test]
    fn scalar_kernel() {
        let expr = dsl::add(dsl::num(1.0), dsl::num(2.0));
        let c = emit_kernel("k", &expr, &[]).unwrap();
        assert!(c.contains("void k(double *out)"));
        assert!(c.contains("out[0] = (1.0 + 2.0);"));
    }

    #[test]
    fn build_becomes_loop() {
        let expr = dsl::vadd(4, dsl::sym("A"), dsl::sym("B"));
        let c = emit_kernel(
            "vadd4",
            &expr,
            &[CInput::vector("A", 4), CInput::vector("B", 4)],
        )
        .unwrap();
        assert!(c.contains("for (int i0 = 0; i0 < 4; i0++)"));
        assert!(c.contains("(A[i0] + B[i0])"));
    }

    #[test]
    fn ifold_becomes_accumulator_loop() {
        let expr = dsl::vsum(8, dsl::sym("xs"));
        let c = emit_kernel("vsum8", &expr, &[CInput::vector("xs", 8)]).unwrap();
        assert!(c.contains("double t0 = 0.0;"), "{c}");
        assert!(c.contains("for (int i0 = 0; i0 < 8; i0++)"));
        assert!(c.contains("t0 = (xs[i0] + t0);"));
    }

    #[test]
    fn dot_call_becomes_cblas() {
        let expr: Expr = "(dot #8 a b)".parse().unwrap();
        let c = emit_kernel(
            "d",
            &expr,
            &[CInput::vector("a", 8), CInput::vector("b", 8)],
        )
        .unwrap();
        assert!(c.contains("#include <cblas.h>"));
        assert!(c.contains("cblas_ddot(8, a, 1, b, 1)"));
    }

    #[test]
    fn gemv_call_becomes_cblas() {
        let expr: Expr = "(gemv #4 #8 alpha A B beta C)".parse().unwrap();
        let c = emit_kernel(
            "g",
            &expr,
            &[
                CInput::scalar("alpha"),
                CInput::matrix("A", 4, 8),
                CInput::vector("B", 8),
                CInput::scalar("beta"),
                CInput::vector("C", 4),
            ],
        )
        .unwrap();
        assert!(c.contains("cblas_dgemv(CblasRowMajor, CblasNoTrans, 4, 8,"));
    }

    #[test]
    fn memset_uses_libc() {
        let expr: Expr = "(memset #16 0)".parse().unwrap();
        let c = emit_kernel("z", &expr, &[]).unwrap();
        assert!(c.contains("#include <string.h>"));
        assert!(c.contains("memset(t0, 0, 16 * sizeof(double));"));
    }

    #[test]
    fn nested_build_indexing() {
        // A matrix built from an input matrix's entries.
        let expr = dsl::transposeb(2, 3, dsl::sym("A"));
        let c = emit_kernel("t", &expr, &[CInput::matrix("A", 2, 3)]).unwrap();
        assert!(c.contains("for (int i0 = 0; i0 < 3; i0++)"));
        assert!(c.contains("for (int i1 = 0; i1 < 2; i1++)"));
    }

    #[test]
    fn tuples_are_rejected() {
        let expr = dsl::tuple(dsl::num(1.0), dsl::num(2.0));
        assert!(matches!(
            emit_kernel("t", &expr, &[]),
            Err(CodegenError::Unsupported(_))
        ));
    }

    #[test]
    fn torch_calls_are_rejected() {
        let expr: Expr = "(sum #8 xs)".parse().unwrap();
        assert!(matches!(
            emit_kernel("s", &expr, &[CInput::vector("xs", 8)]),
            Err(CodegenError::Unsupported(_))
        ));
    }
}
