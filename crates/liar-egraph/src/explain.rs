//! Proof production: a provenance-tracking explanation forest and
//! replayable rewrite explanations, in the style of egg's `explain`
//! module (Flatt et al., "Small Proofs from Congruence Closure").
//!
//! # How provenance is recorded
//!
//! When explanations are enabled ([`EGraph::with_explanations_enabled`](crate::EGraph::with_explanations_enabled)),
//! every id issued by the e-graph carries the *original* (uncanonicalized)
//! e-node it was created for, so each id denotes one precise term
//! (`Explain::term_of`). Ids form a forest that mirrors the union-find:
//! every union links two trees with an edge tagged by a [`Justification`]
//! — the rewrite rule (plus its substitution) that performed it, or
//! congruence. Adding a node that hash-conses onto an existing class still
//! allocates a fresh id for the new spelling, linked to the old one by a
//! congruence edge, which is what keeps every edge's endpoints *exact*
//! terms rather than whatever term happened to create a class.
//!
//! # From forest to proof
//!
//! `Explain::explain` walks the unique forest path between two ids and
//! flattens it into a sequence of [`ProofStep`]s, each rewriting one full
//! term into the next by applying a named rule at an explicit position
//! (congruence edges expand recursively into their children's
//! sub-proofs). The result is an [`Explanation`]: a checkable certificate,
//! not a trust-me log — [`Explanation::check`] replays every step against
//! a rule set using the legacy oracle matcher (pattern rules) or a
//! single-rule saturation replay (rules with custom searchers/appliers)
//! and fails on any illegal step.
//!
//! Forest walks are iterative (deep rewrite chains must not overflow the
//! stack); recursion is only used where depth is bounded by *term* height
//! (congruence descent).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::pattern::Subst;
use crate::{Analysis, EGraph, Id, Language, Pattern, RecExpr, Rewrite, Runner};

/// Why two e-classes were merged: the provenance tag on one explanation
/// forest edge.
#[derive(Debug, Clone)]
pub enum Justification<L: Language> {
    /// A named rewrite rule fired with the given substitution.
    Rule {
        /// The rule's name (shared with every edge the rule creates).
        name: Arc<str>,
        /// The substitution the rule was applied under (diagnostic: checking
        /// re-derives bindings by replaying, so proofs do not trust it).
        subst: Arc<Subst<L>>,
    },
    /// Congruence: the two terms have matching operators and pairwise-equal
    /// children (recorded by `rebuild()` and by hash-cons collisions).
    Congruence,
    /// A union asserted directly (e.g. [`EGraph::union`](crate::EGraph::union)
    /// outside any rule application). Steps justified this way fail
    /// [`Explanation::check`] — certificates cannot contain assumptions.
    Direct,
}

/// The name [`ProofStep::rule`] carries for [`Justification::Direct`]
/// edges. [`Explanation::check`] rejects such steps.
pub const UNJUSTIFIED: &str = "<unjustified-union>";

/// Which way a rule was applied in a [`ProofStep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Left-hand side rewritten to right-hand side.
    Forward,
    /// Right-hand side rewritten back to left-hand side.
    Backward,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Forward => write!(f, "→"),
            Direction::Backward => write!(f, "←"),
        }
    }
}

/// One step of an [`Explanation`]: `before` rewritten into `after` by
/// applying `rule` (in `direction`) to the subterm at `position`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProofStep<L: Language> {
    /// The whole term before this step (canonical node table).
    pub before: RecExpr<L>,
    /// The whole term after this step (canonical node table).
    pub after: RecExpr<L>,
    /// Name of the rewrite rule applied ([`UNJUSTIFIED`] for direct
    /// unions, which never check).
    pub rule: String,
    /// Whether the rule was applied left-to-right or right-to-left.
    pub direction: Direction,
    /// Path of child indices from the root to the rewritten subterm
    /// (empty = the step rewrites the whole term).
    pub position: Vec<usize>,
}

impl<L: Language> ProofStep<L> {
    /// The rewritten subterm of [`before`](ProofStep::before) (canonical).
    pub fn before_subtree(&self) -> RecExpr<L> {
        let ids = path_ids(&self.before, &self.position).expect("recorded position is valid");
        canonical_subtree(&self.before, *ids.last().expect("path includes the root"))
    }

    /// The rewritten subterm of [`after`](ProofStep::after) (canonical).
    pub fn after_subtree(&self) -> RecExpr<L> {
        let ids = path_ids(&self.after, &self.position).expect("recorded position is valid");
        canonical_subtree(&self.after, *ids.last().expect("path includes the root"))
    }
}

/// A replayable proof that two terms are equal: a chain of
/// [`ProofStep`]s rewriting [`source`](Explanation::source) into
/// [`target`](Explanation::target).
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation<L: Language> {
    /// The starting term (canonical node table).
    pub source: RecExpr<L>,
    /// The final term.
    pub target: RecExpr<L>,
    /// The rewrite chain; empty when `source == target`.
    pub steps: Vec<ProofStep<L>>,
}

/// Why a proof failed to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofError {
    /// Index of the offending step, when one step is to blame.
    pub step: Option<usize>,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.step {
            Some(i) => write!(f, "proof step {}: {}", i + 1, self.message),
            None => write!(f, "proof: {}", self.message),
        }
    }
}

impl std::error::Error for ProofError {}

impl<L: Language + 'static> Explanation<L> {
    /// Number of rewrite steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when source and target are the same term (zero steps).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Replay every step against `rules` and verify the chain, treating
    /// the proof as an untrusted certificate.
    ///
    /// Checks, per step: the rule exists; the context outside
    /// [`position`](ProofStep::position) is unchanged; and the rewrite at
    /// the position is derivable —
    ///
    /// * **pattern → pattern rules, forward**: the step's before-subterm is
    ///   matched with the legacy **oracle** matcher
    ///   ([`Pattern::match_class_oracle`]) and the right-hand side is
    ///   instantiated under each binding; some instantiation must equal the
    ///   after-subterm exactly;
    /// * **everything else** (backward steps, custom searchers or
    ///   appliers): a fresh e-graph is seeded with the before- and
    ///   after-subterms and the rule (oracle-matched, via
    ///   [`Rewrite::with_oracle_searcher`]) is run for one bounded step —
    ///   the two subterms must end up in the same e-class.
    ///
    /// Also verifies the chain itself: `steps[0].before == source`,
    /// each `after` equals the next `before`, and the last `after == target`.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProofError`] found.
    pub fn check<A>(&self, rules: &[Rewrite<L, A>]) -> Result<(), ProofError>
    where
        A: Analysis<L> + Default + 'static,
    {
        let err = |step: Option<usize>, message: String| Err(ProofError { step, message });
        if self.steps.is_empty() {
            if self.source != self.target {
                return err(None, "no steps, but source differs from target".into());
            }
            return Ok(());
        }
        if self.steps[0].before != self.source {
            return err(Some(0), "first step does not start at the source term".into());
        }
        if self.steps.last().expect("nonempty").after != self.target {
            return err(
                Some(self.steps.len() - 1),
                "last step does not end at the target term".into(),
            );
        }
        for (i, w) in self.steps.windows(2).enumerate() {
            if w[0].after != w[1].before {
                return err(Some(i + 1), "step does not start where the previous ended".into());
            }
        }
        for (i, step) in self.steps.iter().enumerate() {
            if step.rule == UNJUSTIFIED {
                return err(Some(i), "union was asserted directly, not derived by a rule".into());
            }
            let Some(rule) = rules.iter().find(|r| r.name() == step.rule) else {
                return err(Some(i), format!("rule {:?} is not in the rule set", step.rule));
            };
            if path_ids(&step.before, &step.position).is_none()
                || path_ids(&step.after, &step.position).is_none()
            {
                return err(Some(i), "position does not exist in the term".into());
            }
            if !context_matches(&step.before, &step.after, &step.position) {
                return err(Some(i), "term changed outside the rewritten position".into());
            }
            let before_sub = step.before_subtree();
            let after_sub = step.after_subtree();
            let ok = match (rule.searcher_pattern(), rule.applier_pattern(), step.direction) {
                (Some(lhs), Some(rhs), Direction::Forward) => {
                    check_pattern_step::<L, A>(lhs, rhs, &before_sub, &after_sub)
                }
                _ => check_replay_step(rule, &before_sub, &after_sub),
            };
            if !ok {
                return err(
                    Some(i),
                    format!(
                        "rule {:?} ({}) cannot rewrite {} into {}",
                        step.rule, step.direction, before_sub, after_sub
                    ),
                );
            }
        }
        Ok(())
    }
}

impl<L: Language> fmt::Display for Explanation<L> {
    /// A numbered, human-readable proof: one line per step, annotated
    /// with the rule, direction and position.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "   0: {}", self.source)?;
        for (i, step) in self.steps.iter().enumerate() {
            let pos = if step.position.is_empty() {
                "root".to_string()
            } else {
                step.position
                    .iter()
                    .map(|j| format!(".{j}"))
                    .collect::<String>()
            };
            writeln!(
                f,
                "{:>4}: {}    [{} {} at {}]",
                i + 1,
                step.after,
                step.rule,
                step.direction,
                pos
            )?;
        }
        Ok(())
    }
}

/// Strict check of a forward pattern step: oracle-match `from` against the
/// before-subterm's root and require some instantiation of `to` to be the
/// after-subterm.
fn check_pattern_step<L, A>(
    from: &Pattern<L>,
    to: &Pattern<L>,
    before: &RecExpr<L>,
    after: &RecExpr<L>,
) -> bool
where
    L: Language + 'static,
    A: Analysis<L> + Default + 'static,
{
    let mut egraph: EGraph<L, A> = EGraph::new(A::default());
    let root = egraph.add_expr(before);
    let substs = from.match_class_oracle(&egraph, root);
    for subst in substs {
        let out = to.instantiate(&mut egraph, &subst);
        // No unions ever happen here, so equal classes mean the
        // instantiation built exactly the after-subterm.
        if let Some(target) = egraph.lookup_expr(after) {
            if egraph.find(out) == egraph.find(target) {
                return true;
            }
        }
    }
    false
}

/// Replay check for custom rules (and backward pattern steps): seed a
/// fresh e-graph with both subterms, run one bounded saturation step of
/// the oracle-matched rule, and require the subterms to merge.
fn check_replay_step<L, A>(rule: &Rewrite<L, A>, before: &RecExpr<L>, after: &RecExpr<L>) -> bool
where
    L: Language + 'static,
    A: Analysis<L> + Default + 'static,
{
    let oracle = rule.with_oracle_searcher();
    let mut egraph: EGraph<L, A> = EGraph::new(A::default());
    let t = egraph.add_expr(before);
    let u = egraph.add_expr(after);
    if egraph.find(t) == egraph.find(u) {
        return true; // identical modulo sharing
    }
    let mut runner = Runner::new(egraph).with_iter_limit(1).with_node_limit(100_000);
    runner.run(std::slice::from_ref(&oracle));
    if runner.egraph.find(t) == runner.egraph.find(u) {
        return true;
    }
    // One more bounded step: the first application may only have built the
    // bridging node (e.g. a congruence-completing spelling). The size guard
    // keeps quadratic intro-style searchers from exploding the replay.
    if runner.egraph.num_nodes() < 20_000 {
        let mut second = Runner::new(runner.egraph)
            .with_iter_limit(1)
            .with_node_limit(100_000);
        second.run(std::slice::from_ref(&oracle));
        return second.egraph.find(t) == second.egraph.find(u);
    }
    false
}

// ---------------------------------------------------------------------------
// Canonical term tables.

/// Rebuild the tree reachable from `root` into a **canonical** node table:
/// DFS post-order (children left to right), every distinct subtree stored
/// once. Two equal trees — however their source tables were laid out —
/// canonicalize to identical tables, which is what lets proof terms be
/// compared with `==`. Iterative: safe on arbitrarily deep terms.
pub(crate) fn canonical_build<L: Language>(root: Id, mut node_of: impl FnMut(Id) -> L) -> RecExpr<L> {
    enum Frame {
        Enter(Id),
        Exit(Id),
    }
    let mut out = RecExpr::default();
    let mut interned: HashMap<L, Id> = HashMap::new();
    let mut memo: HashMap<Id, Id> = HashMap::new();
    let mut stack = vec![Frame::Enter(root)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(id) => {
                if memo.contains_key(&id) {
                    continue;
                }
                stack.push(Frame::Exit(id));
                let node = node_of(id);
                for &c in node.children().iter().rev() {
                    stack.push(Frame::Enter(c));
                }
            }
            Frame::Exit(id) => {
                if memo.contains_key(&id) {
                    continue;
                }
                let node = node_of(id).map_children(|c| memo[&c]);
                let out_id = *interned
                    .entry(node.clone())
                    .or_insert_with(|| out.add(node));
                memo.insert(id, out_id);
            }
        }
    }
    out
}

/// Canonicalize the subtree of `expr` rooted at `root` (see
/// [`canonical_build`]).
pub(crate) fn canonical_subtree<L: Language>(expr: &RecExpr<L>, root: Id) -> RecExpr<L> {
    canonical_build(root, |id| expr.node(id).clone())
}

/// Canonicalize a whole expression into the node-table layout proof terms
/// use (DFS post-order, shared subtrees deduplicated): two equal trees
/// canonicalize to `==`-equal tables, so this is how callers compare their
/// own terms against [`Explanation`] endpoints.
pub fn canonical_expr<L: Language>(expr: &RecExpr<L>) -> RecExpr<L> {
    canonical_subtree(expr, expr.root())
}

/// The node ids of `expr` along `position` (root first); `None` when the
/// path walks out of the tree.
pub(crate) fn path_ids<L: Language>(expr: &RecExpr<L>, position: &[usize]) -> Option<Vec<Id>> {
    if expr.is_empty() {
        return None;
    }
    let mut ids = vec![expr.root()];
    for &j in position {
        let cur = *ids.last().expect("nonempty");
        let &child = expr.node(cur).children().get(j)?;
        ids.push(child);
    }
    Some(ids)
}

/// Replace the subtree of `expr` at `position` with `sub`, returning a
/// canonical table. `None` when the position does not exist. Other
/// occurrences of a shared subtree are *not* replaced — the position
/// names one occurrence.
pub(crate) fn replace_at<L: Language>(
    expr: &RecExpr<L>,
    position: &[usize],
    sub: &RecExpr<L>,
) -> Option<RecExpr<L>> {
    let path = path_ids(expr, position)?;
    let mut naive = expr.clone();
    // Graft sub's table (order is irrelevant; the canonical pass prunes
    // garbage and re-orders).
    let mut map: Vec<Id> = Vec::with_capacity(sub.len());
    for node in sub.nodes() {
        let node = node.clone().map_children(|c| map[c.index()]);
        map.push(naive.add(node));
    }
    let mut new_id = *map.last()?;
    for depth in (0..position.len()).rev() {
        let mut node = naive.node(path[depth]).clone();
        node.children_mut()[position[depth]] = new_id;
        new_id = naive.add(node);
    }
    Some(canonical_subtree(&naive, new_id))
}

/// True when `before` and `after` are identical everywhere except (possibly)
/// the subtree at `position`.
pub(crate) fn context_matches<L: Language>(
    before: &RecExpr<L>,
    after: &RecExpr<L>,
    position: &[usize],
) -> bool {
    let (Some(pb), Some(pa)) = (path_ids(before, position), path_ids(after, position)) else {
        return false;
    };
    for depth in 0..position.len() {
        let nb = before.node(pb[depth]);
        let na = after.node(pa[depth]);
        if !nb.matches(na) || nb.children().len() != na.children().len() {
            return false;
        }
        for (k, (cb, ca)) in nb.children().iter().zip(na.children()).enumerate() {
            if k == position[depth] {
                continue;
            }
            if canonical_subtree(before, *cb) != canonical_subtree(after, *ca) {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// The explanation forest.

/// One id's record in the explanation forest.
#[derive(Debug, Clone)]
struct ExplainNode<L: Language> {
    /// The original (uncanonicalized) e-node this id was created for; its
    /// children reference other forest ids, so each id denotes one exact
    /// term.
    node: L,
    /// Parent pointer in the forest (`== self` at a tree root).
    parent: Id,
    /// Label of the edge to `parent` (meaningless at a root).
    justification: Justification<L>,
    /// For rule edges: true when the rule rewrote `term(self)` into
    /// `term(parent)` (left-to-right).
    forward: bool,
}

/// The provenance store behind an explanations-enabled e-graph: one
/// [`ExplainNode`] per issued id, plus a memo of original spellings.
#[derive(Debug, Clone)]
pub(crate) struct Explain<L: Language> {
    nodes: Vec<ExplainNode<L>>,
    /// Original (uncanonicalized) node → the id that denotes exactly it.
    uncanon_memo: HashMap<L, Id>,
}

impl<L: Language> Default for Explain<L> {
    fn default() -> Self {
        Explain {
            nodes: Vec::new(),
            uncanon_memo: HashMap::new(),
        }
    }
}

/// A step before terms are materialized: rewrite the subterm at
/// `position` into `term(to)` via `rule`.
struct LocalStep {
    position: Vec<usize>,
    rule: String,
    direction: Direction,
    to: Id,
}

impl<L: Language> Explain<L> {
    /// Record the original node behind a freshly issued id. Must be called
    /// for every id, in issue order.
    pub(crate) fn add_node(&mut self, id: Id, node: L) {
        debug_assert_eq!(id.index(), self.nodes.len(), "ids must be recorded in order");
        self.nodes.push(ExplainNode {
            node,
            parent: id,
            justification: Justification::Direct,
            forward: true,
        });
    }

    /// The id denoting exactly `node` (by original spelling), if recorded.
    pub(crate) fn uncanon(&self, node: &L) -> Option<Id> {
        self.uncanon_memo.get(node).copied()
    }

    /// Remember that `id` denotes exactly `node`.
    pub(crate) fn record_uncanon(&mut self, node: L, id: Id) {
        self.uncanon_memo.insert(node, id);
    }

    /// Iterate the forest in id order (for snapshot serialization): one
    /// `(original node, parent, edge justification, forward)` tuple per
    /// issued id.
    pub(crate) fn forest(&self) -> impl Iterator<Item = (&L, Id, &Justification<L>, bool)> {
        self.nodes
            .iter()
            .map(|n| (&n.node, n.parent, &n.justification, n.forward))
    }

    /// The original-spelling memo (for snapshot serialization).
    pub(crate) fn uncanon_entries(&self) -> &HashMap<L, Id> {
        &self.uncanon_memo
    }

    /// Rebuild a forest from snapshot-restored parts: `nodes[i]` is id
    /// `i`'s `(original node, parent, justification, forward)` record.
    pub(crate) fn from_parts(
        nodes: Vec<(L, Id, Justification<L>, bool)>,
        uncanon_memo: HashMap<L, Id>,
    ) -> Self {
        Explain {
            nodes: nodes
                .into_iter()
                .map(|(node, parent, justification, forward)| ExplainNode {
                    node,
                    parent,
                    justification,
                    forward,
                })
                .collect(),
            uncanon_memo,
        }
    }

    /// Link the trees of `a` and `b` with an edge labeled `justification`.
    /// `forward` = the rule rewrote `term(a)` into `term(b)`. The two ids
    /// must belong to different trees (the caller unions their classes).
    pub(crate) fn union(&mut self, a: Id, b: Id, justification: Justification<L>, forward: bool) {
        self.make_leader(a);
        let n = &mut self.nodes[a.index()];
        n.parent = b;
        n.justification = justification;
        n.forward = forward;
    }

    /// Reverse the parent pointers on the path from `id` to its root so
    /// that `id` becomes the root of its tree. Iterative: rewrite chains
    /// can be very deep.
    fn make_leader(&mut self, id: Id) {
        let mut chain = vec![id];
        loop {
            let last = *chain.last().expect("nonempty");
            let parent = self.nodes[last.index()].parent;
            if parent == last {
                break;
            }
            chain.push(parent);
        }
        // Save the edges before overwriting them: edge i connects
        // chain[i] → chain[i+1].
        let edges: Vec<(Justification<L>, bool)> = chain
            .iter()
            .map(|id| {
                let n = &self.nodes[id.index()];
                (n.justification.clone(), n.forward)
            })
            .collect();
        for i in 0..chain.len() - 1 {
            let (x, p) = (chain[i], chain[i + 1]);
            let n = &mut self.nodes[p.index()];
            n.parent = x;
            n.justification = edges[i].0.clone();
            n.forward = !edges[i].1;
        }
        let n = &mut self.nodes[id.index()];
        n.parent = id;
        n.justification = Justification::Direct;
        n.forward = true;
    }

    /// The exact term id `denotes` (canonical node table).
    pub(crate) fn term_of(&self, id: Id) -> RecExpr<L> {
        canonical_build(id, |i| self.nodes[i.index()].node.clone())
    }

    /// Produce the proof that `a` and `b` denote equal terms. The caller
    /// must ensure their classes are equal (same forest tree).
    pub(crate) fn explain(&self, a: Id, b: Id) -> Explanation<L> {
        let mut locals = Vec::new();
        // Generous global budget: a runaway proof means a forest invariant
        // was broken, and looping forever would be worse than panicking.
        let mut fuel: usize = 10_000_000;
        self.local_steps(a, b, &mut Vec::new(), &mut locals, &mut fuel);

        let source = self.term_of(a);
        let target = self.term_of(b);
        let mut steps = Vec::with_capacity(locals.len());
        let mut current = source.clone();
        for local in locals {
            let sub = self.term_of(local.to);
            let after =
                replace_at(&current, &local.position, &sub).expect("proof positions are valid");
            let before = std::mem::replace(&mut current, after);
            steps.push(ProofStep {
                before,
                after: current.clone(),
                rule: local.rule,
                direction: local.direction,
                position: local.position,
            });
        }
        debug_assert_eq!(current, target, "flattened proof must reach the target term");
        Explanation { source, target, steps }
    }

    /// Append the steps rewriting `term(a)` into `term(b)` (both at
    /// `position` inside the overall term) to `out`.
    fn local_steps(
        &self,
        a: Id,
        b: Id,
        position: &mut Vec<usize>,
        out: &mut Vec<LocalStep>,
        fuel: &mut usize,
    ) {
        if a == b {
            return;
        }
        // The unique forest path a → … → lca ← … ← b.
        let mut anc_a = vec![a];
        loop {
            let last = *anc_a.last().expect("nonempty");
            let parent = self.nodes[last.index()].parent;
            if parent == last {
                break;
            }
            anc_a.push(parent);
        }
        let index_of: HashMap<Id, usize> =
            anc_a.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        let mut anc_b = vec![b];
        let lca = loop {
            let last = *anc_b.last().expect("nonempty");
            if let Some(&i) = index_of.get(&last) {
                break i;
            }
            let parent = self.nodes[last.index()].parent;
            assert_ne!(parent, last, "explain: ids are not in the same forest tree");
            anc_b.push(parent);
        };
        for i in 0..lca {
            self.emit_edge(anc_a[i], anc_a[i + 1], true, position, out, fuel);
        }
        for j in (0..anc_b.len() - 1).rev() {
            self.emit_edge(anc_b[j], anc_b[j + 1], false, position, out, fuel);
        }
    }

    /// Emit the steps for one forest edge `x → parent`, traversed in
    /// storage direction (`along` = true) or against it.
    fn emit_edge(
        &self,
        x: Id,
        parent: Id,
        along: bool,
        position: &mut Vec<usize>,
        out: &mut Vec<LocalStep>,
        fuel: &mut usize,
    ) {
        *fuel = fuel
            .checked_sub(1)
            .expect("explanation exceeded the step budget (forest invariant broken?)");
        let n = &self.nodes[x.index()];
        match &n.justification {
            Justification::Rule { name, .. } => {
                let forward = if along { n.forward } else { !n.forward };
                out.push(LocalStep {
                    position: position.clone(),
                    rule: name.to_string(),
                    direction: if forward { Direction::Forward } else { Direction::Backward },
                    to: if along { parent } else { x },
                });
            }
            Justification::Direct => {
                let forward = if along { n.forward } else { !n.forward };
                out.push(LocalStep {
                    position: position.clone(),
                    rule: UNJUSTIFIED.to_string(),
                    direction: if forward { Direction::Forward } else { Direction::Backward },
                    to: if along { parent } else { x },
                });
            }
            Justification::Congruence => {
                // Same operator, children pairwise equal: recurse into the
                // children (depth bounded by term height). Congruence edges
                // only reference child paths recorded *before* the edge, so
                // this terminates.
                let (from_node, to_node) = if along {
                    (&n.node, &self.nodes[parent.index()].node)
                } else {
                    (&self.nodes[parent.index()].node, &n.node)
                };
                debug_assert!(
                    from_node.matches(to_node),
                    "congruence edge between non-congruent nodes"
                );
                for (j, (ca, cb)) in from_node
                    .children()
                    .iter()
                    .zip(to_node.children())
                    .enumerate()
                {
                    if ca == cb {
                        continue;
                    }
                    position.push(j);
                    self.local_steps(*ca, *cb, position, out, fuel);
                    position.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    type EG = EGraph<SymbolLang, ()>;

    fn e(s: &str) -> RecExpr<SymbolLang> {
        s.parse().unwrap()
    }

    fn comm() -> Rewrite<SymbolLang, ()> {
        Rewrite::from_patterns("comm-add", "(+ ?x ?y)", "(+ ?y ?x)")
    }

    fn shift() -> Rewrite<SymbolLang, ()> {
        Rewrite::from_patterns("mul2-shift", "(* ?a 2)", "(<< ?a 1)")
    }

    fn run(expr: &str, rules: &[Rewrite<SymbolLang, ()>]) -> Runner<SymbolLang, ()> {
        let mut eg = EG::default().with_explanations_enabled();
        eg.add_expr(&e(expr));
        let mut runner = Runner::new(eg).with_iter_limit(8);
        runner.run(rules);
        runner
    }

    #[test]
    fn canonical_tables_are_layout_independent() {
        // f(a, a) written with and without sharing.
        let mut shared = RecExpr::default();
        let a = shared.add(SymbolLang::leaf("a"));
        shared.add(SymbolLang::new("f", vec![a, a]));
        let mut dup = RecExpr::default();
        let a1 = dup.add(SymbolLang::leaf("a"));
        let a2 = dup.add(SymbolLang::leaf("a"));
        dup.add(SymbolLang::new("f", vec![a1, a2]));
        assert_ne!(shared, dup);
        assert_eq!(canonical_expr(&shared), canonical_expr(&dup));
    }

    #[test]
    fn replace_at_rewrites_one_occurrence() {
        let expr = canonical_expr(&e("(f (g a) (g a))"));
        let replaced = replace_at(&expr, &[1], &e("b")).unwrap();
        assert_eq!(replaced, canonical_expr(&e("(f (g a) b)")));
        // Out-of-tree positions are rejected.
        assert!(replace_at(&expr, &[2], &e("b")).is_none());
        assert!(replace_at(&expr, &[0, 0, 0], &e("b")).is_none());
        // Root replacement.
        assert_eq!(replace_at(&expr, &[], &e("b")).unwrap(), canonical_expr(&e("b")));
    }

    #[test]
    fn context_check_catches_side_edits() {
        let before = canonical_expr(&e("(f a b)"));
        let legit = canonical_expr(&e("(f a c)"));
        let rogue = canonical_expr(&e("(f x c)"));
        assert!(context_matches(&before, &legit, &[1]));
        assert!(!context_matches(&before, &rogue, &[1]));
        assert!(context_matches(&before, &rogue, &[])); // everything may change at the root
    }

    #[test]
    fn simple_rule_proof_checks() {
        let rules = vec![shift()];
        let mut runner = run("(* a 2)", &rules);
        let proof = runner
            .egraph
            .explain_equivalence(&e("(* a 2)"), &e("(<< a 1)"));
        assert_eq!(proof.len(), 1);
        assert_eq!(proof.steps[0].rule, "mul2-shift");
        assert_eq!(proof.steps[0].direction, Direction::Forward);
        assert!(proof.steps[0].position.is_empty());
        proof.check(&rules).unwrap();
    }

    #[test]
    fn backward_steps_check() {
        // Proof between two rewritten forms passes through the pivot
        // backwards: (+ b a) ← (+ a b) is a backward comm-add step…
        let rules = vec![comm()];
        let mut runner = run("(+ a b)", &rules);
        let proof = runner
            .egraph
            .explain_equivalence(&e("(+ b a)"), &e("(+ a b)"));
        assert!(!proof.is_empty());
        proof.check(&rules).unwrap();
        assert!(proof
            .steps
            .iter()
            .any(|s| s.direction == Direction::Backward || s.rule == "comm-add"));
    }

    #[test]
    fn congruence_only_proof_flattens_to_child_steps() {
        // Union a*2 ~ a<<1 by rule; f-wrappers merge purely by congruence.
        let rules = vec![shift()];
        let mut runner = run("(f (* a 2))", &rules);
        let proof = runner
            .egraph
            .explain_equivalence(&e("(f (* a 2))"), &e("(f (<< a 1))"));
        assert_eq!(proof.len(), 1, "congruence expands into the child rule step");
        assert_eq!(proof.steps[0].position, vec![0]);
        assert_eq!(proof.steps[0].rule, "mul2-shift");
        proof.check(&rules).unwrap();
    }

    #[test]
    fn proof_chains_through_intermediate_terms() {
        let rules = vec![comm(), shift()];
        let mut runner = run("(+ (* a 2) b)", &rules);
        let proof = runner
            .egraph
            .explain_equivalence(&e("(+ (* a 2) b)"), &e("(+ b (<< a 1))"));
        assert!(proof.len() >= 2, "needs a shift and a commute");
        proof.check(&rules).unwrap();
        // The chain is well-formed: each step starts where the last ended.
        for w in proof.steps.windows(2) {
            assert_eq!(w[0].after, w[1].before);
        }
    }

    #[test]
    fn direct_unions_fail_the_check() {
        let mut eg = EG::default().with_explanations_enabled();
        let a = eg.add_expr(&e("a"));
        let b = eg.add_expr(&e("b"));
        eg.union(a, b);
        eg.rebuild();
        let proof = eg.explain_equivalence(&e("a"), &e("b"));
        assert_eq!(proof.steps[0].rule, UNJUSTIFIED);
        let err = proof.check::<()>(&[comm()]).unwrap_err();
        assert!(err.message.contains("asserted directly"), "{err}");
    }

    #[test]
    fn unknown_rule_fails_the_check() {
        let rules = vec![shift()];
        let mut runner = run("(* a 2)", &rules);
        let proof = runner
            .egraph
            .explain_equivalence(&e("(* a 2)"), &e("(<< a 1)"));
        let err = proof.check::<()>(&[comm()]).unwrap_err();
        assert!(err.message.contains("not in the rule set"), "{err}");
    }

    #[test]
    fn tampered_proofs_fail_the_check() {
        let rules = vec![shift()];
        let mut runner = run("(* a 2)", &rules);
        let proof = runner
            .egraph
            .explain_equivalence(&e("(* a 2)"), &e("(<< a 1)"));

        // Forge the result term: the rule cannot derive it.
        let mut forged = proof.clone();
        forged.steps[0].after = canonical_expr(&e("(<< b 1)"));
        forged.target = forged.steps[0].after.clone();
        assert!(forged.check(&rules).is_err());

        // Break the chain.
        let mut broken = proof.clone();
        broken.source = canonical_expr(&e("(* b 2)"));
        assert!(broken.check(&rules).is_err());
    }

    #[test]
    fn explanations_off_contract() {
        let mut eg = EG::default();
        let a = eg.add_expr(&e("(* a 2)"));
        let b = eg.add_expr(&e("(<< a 1)"));
        eg.union(a, b);
        eg.rebuild();
        assert!(!eg.are_explanations_enabled());
        assert!(eg.try_explain_equivalence(&e("(* a 2)"), &e("(<< a 1)")).is_none());
    }

    #[test]
    #[should_panic(expected = "explanations disabled or terms not equivalent")]
    fn explain_equivalence_panics_when_disabled() {
        let mut eg = EG::default();
        eg.add_expr(&e("(* a 2)"));
        let _ = eg.explain_equivalence(&e("(* a 2)"), &e("(* a 2)"));
    }

    #[test]
    fn non_equivalent_terms_yield_no_proof() {
        let mut eg = EG::default().with_explanations_enabled();
        eg.add_expr(&e("(* a 2)"));
        eg.add_expr(&e("(* b 2)"));
        assert!(eg.try_explain_equivalence(&e("(* a 2)"), &e("(* b 2)")).is_none());
        // Terms never added are not equivalent either.
        assert!(eg.try_explain_equivalence(&e("(* a 2)"), &e("(h q)")).is_none());
    }

    #[test]
    fn identical_terms_have_empty_proofs() {
        let mut eg = EG::default().with_explanations_enabled();
        eg.add_expr(&e("(f a)"));
        let proof = eg.explain_equivalence(&e("(f a)"), &e("(f a)"));
        assert!(proof.is_empty());
        proof.check::<()>(&[]).unwrap();
    }

    #[test]
    fn proofs_display_numbered_steps() {
        let rules = vec![shift()];
        let mut runner = run("(f (* a 2))", &rules);
        let proof = runner
            .egraph
            .explain_equivalence(&e("(f (* a 2))"), &e("(f (<< a 1))"));
        let text = proof.to_string();
        assert!(text.contains("0: (f (* a 2))"), "{text}");
        assert!(text.contains("mul2-shift"), "{text}");
        assert!(text.contains("at .0"), "{text}");
    }

    #[test]
    fn deep_chains_do_not_overflow() {
        // 300 sequential applications of a growing rule: the forest walk
        // and term materialization must stay iterative.
        let grow = Rewrite::<SymbolLang, ()>::from_patterns("grow", "(g ?x)", "(g (f ?x))");
        let mut eg = EG::default().with_explanations_enabled();
        eg.add_expr(&e("(g a)"));
        let mut runner = Runner::new(eg).with_iter_limit(120).with_node_limit(usize::MAX);
        runner.run(std::slice::from_ref(&grow));
        // Build the 100-deep right-hand term textually.
        let mut term = "a".to_string();
        for _ in 0..100 {
            term = format!("(f {term})");
        }
        let deep: RecExpr<SymbolLang> = format!("(g {term})").parse().unwrap();
        let proof = runner.egraph.explain_equivalence(&e("(g a)"), &deep);
        assert!(proof.len() >= 100);
        proof.check(std::slice::from_ref(&grow)).unwrap();
    }
}
