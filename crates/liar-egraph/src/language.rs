//! The [`Language`] trait and the flat term representation [`RecExpr`].

use std::fmt;
use std::str::FromStr;

use crate::Id;

/// A node type that can live inside an e-graph.
///
/// A `Language` value is an *operator plus child slots*: two nodes `match`
/// when they have the same operator and payload, irrespective of what their
/// children point at. Children are [`Id`]s — e-class ids inside an
/// [`EGraph`](crate::EGraph), or node indices inside a [`RecExpr`].
///
/// `Send + Sync` is required so that a whole e-graph can be shared
/// immutably across the worker threads of the parallel search phase (see
/// [`Runner::with_threads`](crate::Runner::with_threads)); node types are
/// plain data, so this costs implementors nothing.
pub trait Language: fmt::Debug + Clone + Eq + Ord + std::hash::Hash + Send + Sync {
    /// The children of this node.
    fn children(&self) -> &[Id];

    /// Mutable access to the children of this node.
    fn children_mut(&mut self) -> &mut [Id];

    /// True when `self` and `other` have the same operator and payload
    /// (children are ignored).
    fn matches(&self, other: &Self) -> bool;

    /// Printable operator name (used by [`RecExpr`]'s `Display`, pattern
    /// diagnostics and Graphviz export).
    fn display_op(&self) -> String;

    /// A hashable discriminant of this node's *operator* (payload plus
    /// arity, children ignored), used by the e-graph's operator index
    /// ([`EGraph::classes_with_op`](crate::EGraph::classes_with_op)) and by
    /// compiled patterns to skip e-classes that cannot possibly match.
    ///
    /// **Contract:** `a.matches(b)` must imply `a.op_key() == b.op_key()`.
    /// (The converse need not hold — a hash collision merely costs a few
    /// extra candidate visits, which `matches` then filters out.)
    ///
    /// The default hashes [`display_op`](Language::display_op) and the
    /// arity, which satisfies the contract for any language whose
    /// `matches` implies equal operator text and arity; implementors can
    /// override it with a cheaper, allocation-free hash.
    fn op_key(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.display_op().hash(&mut h);
        self.children().len().hash(&mut h);
        h.finish()
    }

    /// Parse an operator token with already-parsed children.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when `op` is unknown or `children`
    /// has the wrong arity. The default implementation always errors; only
    /// languages with a textual syntax need to override it.
    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, String> {
        let _ = children;
        Err(format!("language has no textual syntax (op: {op})"))
    }

    /// Apply `f` to each child.
    fn for_each<F: FnMut(Id)>(&self, f: F) {
        self.children().iter().copied().for_each(f)
    }

    /// Rebuild this node with every child mapped through `f`.
    fn map_children<F: FnMut(Id) -> Id>(mut self, mut f: F) -> Self {
        for c in self.children_mut() {
            *c = f(*c);
        }
        self
    }

    /// True for nodes with no children.
    fn is_leaf(&self) -> bool {
        self.children().is_empty()
    }

    /// Fold over the children.
    fn fold<T, F: FnMut(T, Id) -> T>(&self, init: T, f: F) -> T {
        self.children().iter().copied().fold(init, f)
    }

    /// True if all children satisfy `f`.
    fn all<F: FnMut(Id) -> bool>(&self, f: F) -> bool {
        self.children().iter().copied().all(f)
    }
}

/// A term stored as a flat post-order node table.
///
/// `nodes[i]`'s children are indices `< i`; the last node is the root. This
/// is the on-the-side representation used for inserting terms into e-graphs,
/// for extraction results, and for the shift/substitution operators that the
/// LIAR rules apply to class representatives.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecExpr<L> {
    nodes: Vec<L>,
}

impl<L> Default for RecExpr<L> {
    fn default() -> Self {
        RecExpr { nodes: Vec::new() }
    }
}

impl<L: Language> RecExpr<L> {
    /// Create an expression from a post-order node table.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a node's child points at or past the node
    /// itself, which would make the table cyclic.
    pub fn from_nodes(nodes: Vec<L>) -> Self {
        if cfg!(debug_assertions) {
            for (i, n) in nodes.iter().enumerate() {
                for c in n.children() {
                    debug_assert!(c.index() < i, "child {c} of node {i} out of order");
                }
            }
        }
        RecExpr { nodes }
    }

    /// Append a node whose children must already be in the table; returns
    /// its index as an [`Id`].
    pub fn add(&mut self, node: L) -> Id {
        debug_assert!(
            node.children().iter().all(|c| c.index() < self.nodes.len()),
            "node {node:?} has out-of-bounds children"
        );
        self.nodes.push(node);
        Id::from_index(self.nodes.len() - 1)
    }

    /// The node table, in post order.
    pub fn nodes(&self) -> &[L] {
        &self.nodes
    }

    /// Number of nodes in the term (its AST size).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the expression has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of the root node.
    ///
    /// # Panics
    ///
    /// Panics if the expression is empty.
    pub fn root(&self) -> Id {
        assert!(!self.nodes.is_empty(), "empty RecExpr has no root");
        Id::from_index(self.nodes.len() - 1)
    }

    /// The node at index `id`.
    pub fn node(&self, id: Id) -> &L {
        &self.nodes[id.index()]
    }

    /// Copy the subtree rooted at `id` in `other` into `self`, returning the
    /// new root id.
    pub fn append_subtree(&mut self, other: &RecExpr<L>, id: Id) -> Id {
        let node = other.node(id).clone();
        let node = node.map_children(|c| self.append_subtree(other, c));
        self.add(node)
    }

    /// Build an expression by recursively expanding a root with a
    /// child-resolving closure (used by extractors).
    pub fn build_from<F>(root: &L, mut resolve: F) -> Self
    where
        F: FnMut(Id) -> L,
    {
        fn go<L: Language>(
            expr: &mut RecExpr<L>,
            node: &L,
            resolve: &mut dyn FnMut(Id) -> L,
        ) -> Id {
            let node = node.clone().map_children(|c| {
                let child = resolve(c);
                go(expr, &child, resolve)
            });
            expr.add(node)
        }
        let mut expr = RecExpr::default();
        go(&mut expr, root, &mut resolve);
        expr
    }

    fn fmt_node(&self, f: &mut fmt::Formatter<'_>, id: Id) -> fmt::Result {
        let node = self.node(id);
        if node.is_leaf() {
            write!(f, "{}", node.display_op())
        } else {
            write!(f, "({}", node.display_op())?;
            for c in node.children() {
                write!(f, " ")?;
                self.fmt_node(f, *c)?;
            }
            write!(f, ")")
        }
    }
}

impl<L: Language> fmt::Display for RecExpr<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nodes.is_empty() {
            write!(f, "()")
        } else {
            self.fmt_node(f, self.root())
        }
    }
}

/// Error produced when parsing a [`RecExpr`] from an s-expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecExprParseError(pub String);

impl fmt::Display for RecExprParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for RecExprParseError {}

/// Node-construction callback for [`parse_sexp`]: `(operator, children)`
/// to a node id, or an error message.
pub(crate) type MakeNode<'a> = &'a mut dyn FnMut(&str, Vec<Id>) -> Result<Id, String>;

/// Tokenize an s-expression into parens and atoms.
pub(crate) fn tokenize(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '(' | ')' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// A generic s-expression parser driven by a node-construction callback.
///
/// `make(op, children)` is called for every atom/list head with the ids of
/// already-parsed children.
pub(crate) fn parse_sexp(s: &str, make: MakeNode<'_>) -> Result<Id, RecExprParseError> {
    let tokens = tokenize(s);
    let mut pos = 0;
    let root = parse_tokens(&tokens, &mut pos, make).map_err(RecExprParseError)?;
    if pos != tokens.len() {
        return Err(RecExprParseError(format!(
            "trailing tokens after expression: {:?}",
            &tokens[pos..]
        )));
    }
    Ok(root)
}

fn parse_tokens(tokens: &[String], pos: &mut usize, make: MakeNode<'_>) -> Result<Id, String> {
    let tok = tokens
        .get(*pos)
        .ok_or_else(|| "unexpected end of input".to_string())?;
    *pos += 1;
    match tok.as_str() {
        "(" => {
            let op = tokens
                .get(*pos)
                .ok_or_else(|| "missing operator after '('".to_string())?
                .clone();
            if op == "(" || op == ")" {
                return Err(format!("expected operator, found {op:?}"));
            }
            *pos += 1;
            let mut children = Vec::new();
            loop {
                let next = tokens
                    .get(*pos)
                    .ok_or_else(|| "missing ')'".to_string())?;
                if next == ")" {
                    *pos += 1;
                    break;
                }
                children.push(parse_tokens(tokens, pos, make)?);
            }
            make(&op, children)
        }
        ")" => Err("unexpected ')'".to_string()),
        atom => make(atom, Vec::new()),
    }
}

impl<L: Language> FromStr for RecExpr<L> {
    type Err = RecExprParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut expr = RecExpr::default();
        parse_sexp(s, &mut |op, children| {
            L::from_op(op, children).map(|node| expr.add(node))
        })?;
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["a", "(f a b)", "(+ (* a 2) (g b))"] {
            let e: RecExpr<SymbolLang> = s.parse().unwrap();
            assert_eq!(e.to_string(), s);
        }
    }

    #[test]
    fn parse_errors() {
        assert!("(f a".parse::<RecExpr<SymbolLang>>().is_err());
        assert!(")".parse::<RecExpr<SymbolLang>>().is_err());
        assert!("(f a) b".parse::<RecExpr<SymbolLang>>().is_err());
        assert!("".parse::<RecExpr<SymbolLang>>().is_err());
        assert!("(())".parse::<RecExpr<SymbolLang>>().is_err());
    }

    #[test]
    fn append_subtree_copies() {
        let a: RecExpr<SymbolLang> = "(f a b)".parse().unwrap();
        let mut b: RecExpr<SymbolLang> = "c".parse().unwrap();
        let id = b.append_subtree(&a, a.root());
        assert_eq!(id, b.root());
        assert_eq!(b.to_string(), "(f a b)");
    }

    #[test]
    fn len_counts_nodes() {
        let e: RecExpr<SymbolLang> = "(+ (* a 2) b)".parse().unwrap();
        assert_eq!(e.len(), 5);
    }
}
