//! The e-matching virtual machine: patterns compiled once into linear
//! instruction programs, executed over a register file.
//!
//! The interpreted matcher ([`Pattern::match_class_oracle`]) re-walks the
//! pattern tree for every candidate e-node and clones a heap-allocated
//! substitution at every branch point. This module replaces it on the hot
//! path with the abstract-machine design used by egg and Z3 (de Moura &
//! Bjørner, *Efficient E-Matching for SMT Solvers*, CADE 2007): each
//! [`Pattern`] is compiled **once** (at construction) into a [`Program`] —
//! a flat sequence of [`Instr`]uctions — and matching an e-class executes
//! that program with simple backtracking over a register file of e-class
//! ids plus a small bank of expression slots for shift-pattern bindings.
//! No substitutions are allocated until a full match is found.
//!
//! # Instruction set
//!
//! | instruction | effect |
//! |---|---|
//! | [`Instr::Scan`] | iterate the e-nodes of the *focus* class (register 0) whose operator matches the pattern root, writing each node's (canonicalized) children into fresh registers |
//! | [`Instr::Bind`] | the same, over the class held in an already-written register — one per inner `ENode` of the pattern |
//! | [`Instr::Compare`] | require two registers to hold the same e-class (non-linear patterns such as `(f ?x ?x)`) |
//! | [`Instr::CompareExpr`] | require an expression slot to be hash-consed to the class in a register (a variable first bound through a shift pattern, re-used as a plain variable) |
//! | [`Instr::Downshift`] | bind a shift pattern `(sh<k> ?x)`: ask the [`Analysis`] for a member of the focus class downshifted by `k`, failing the branch when none exists |
//! | [`Instr::DownshiftCompare`] / [`Instr::DownshiftCompareClass`] | the non-linear variants of `Downshift`, comparing against an earlier expression or class binding |
//!
//! Instructions are emitted in pre-order over the pattern, so backtracking
//! (earlier instructions vary slowest) enumerates matches in **exactly**
//! the order of the recursive oracle matcher — a property the differential
//! test suite relies on, and which keeps multi-threaded saturation
//! bit-identical to serial runs.
//!
//! # Compilation
//!
//! [`Program::compile`] walks the pattern once, allocating one class
//! register per `ENode` child position and one expression slot per
//! shift-bound variable. The first occurrence of a variable claims a
//! [`Slot`]; later occurrences compile to the appropriate comparison
//! instruction. Because `(sh0 ?x)` is normalized to a plain `?x` when the
//! pattern is built, a variable's binding kind (class vs. expression) is
//! static per pattern.
//!
//! The compiled program also records the pattern root's
//! [operator key](Language::op_key) when the root is a concrete node;
//! searchers use it to restrict the search to the e-graph's
//! [operator index](crate::EGraph::classes_with_op) instead of scanning
//! every e-class.

use std::collections::HashSet;
use std::sync::Arc;

use crate::pattern::{Binding, Pattern, PatternNode, Subst, Var};
use crate::{Analysis, EGraph, Id, Language, RecExpr};

/// Expression-slot bank: one optional downshifted term per shift-bound
/// variable.
type ExprSlots<L> = Vec<Option<Arc<RecExpr<L>>>>;

/// Where a pattern variable's binding lives during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// An e-class register (plain `?x` bindings).
    Reg(usize),
    /// An expression slot (`(sh<k> ?x)` bindings, `k > 0`).
    Expr(usize),
}

/// One instruction of a compiled pattern program (see the module docs for
/// the instruction-set table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr<L> {
    /// Iterate the matching e-nodes of the focus class (register 0),
    /// writing children into registers `out..`.
    Scan {
        /// Pattern node providing the operator to match (children are
        /// pattern positions and are ignored at run time).
        node: L,
        /// First of `arity` consecutive output registers.
        out: usize,
    },
    /// Iterate the matching e-nodes of the class in register `src`.
    Bind {
        /// Pattern node providing the operator to match.
        node: L,
        /// Register holding the class to scan.
        src: usize,
        /// First of `arity` consecutive output registers.
        out: usize,
    },
    /// Require registers `a` and `b` to hold the same e-class.
    Compare {
        /// Earlier binding.
        a: usize,
        /// Current position.
        b: usize,
    },
    /// Require the expression in slot `expr` to be hash-consed to the
    /// class in register `reg`.
    CompareExpr {
        /// Expression slot of the earlier shift binding.
        expr: usize,
        /// Register holding the class at the current position.
        reg: usize,
    },
    /// First occurrence of `(sh<k> ?x)`: downshift the class in `src` by
    /// `k` into expression slot `out`, failing when no member permits it.
    Downshift {
        /// Register holding the focus class.
        src: usize,
        /// Shift amount (`> 0`).
        k: u32,
        /// Expression slot receiving the downshifted term.
        out: usize,
    },
    /// Repeated `(sh<k> ?x)` where `?x` is already expression-bound:
    /// downshift and compare (syntactically, then semantically through the
    /// hash-cons) against slot `expr`.
    DownshiftCompare {
        /// Register holding the focus class.
        src: usize,
        /// Shift amount (`> 0`).
        k: u32,
        /// Expression slot of the earlier binding.
        expr: usize,
    },
    /// `(sh<k> ?x)` where `?x` is already class-bound: downshift and
    /// require the result to be hash-consed to the class in `reg`.
    DownshiftCompareClass {
        /// Register holding the focus class.
        src: usize,
        /// Shift amount (`> 0`).
        k: u32,
        /// Register of the earlier class binding.
        reg: usize,
    },
}

/// A compiled pattern: the unit the e-matching VM executes.
///
/// Built once per [`Pattern`] (see [`Pattern::compiled`]); cheap to share
/// (`Arc`) and to execute repeatedly.
#[derive(Debug)]
pub struct Program<L> {
    instrs: Vec<Instr<L>>,
    n_regs: usize,
    n_exprs: usize,
    /// `(variable, slot)` in first-occurrence order — the recipe for
    /// materializing a [`Subst`] from the register file.
    outputs: Vec<(Var, Slot)>,
    /// The root node's [`Language::op_key`] when the root is an `ENode`.
    root_op_key: Option<u64>,
    /// Nesting depth of the pattern: 0 for a bare variable, else 1 + the
    /// deepest `ENode` chain. Bounds how far from the match root the
    /// program dereferences class *contents* (see
    /// [`delta_depth`](Program::delta_depth)).
    depth: u32,
}

impl<L: Language> Program<L> {
    /// Compile a pattern node table (see [`Pattern::nodes`]) rooted at
    /// `root`.
    pub fn compile(nodes: &[PatternNode<L>], root: Id) -> Self {
        let mut compiler = Compiler {
            nodes,
            instrs: Vec::new(),
            n_regs: 1, // register 0 = the focus class
            n_exprs: 0,
            bound: Vec::new(),
            outputs: Vec::new(),
        };
        compiler.go(root, 0);
        let root_op_key = match &nodes[root.index()] {
            PatternNode::ENode(n) => Some(n.op_key()),
            _ => None,
        };
        Program {
            instrs: compiler.instrs,
            n_regs: compiler.n_regs,
            n_exprs: compiler.n_exprs,
            outputs: compiler.outputs,
            root_op_key,
            depth: depth_of(nodes, root),
        }
    }

    /// The instruction sequence, in execution order.
    pub fn instructions(&self) -> &[Instr<L>] {
        &self.instrs
    }

    /// Number of e-class registers the program uses.
    pub fn n_registers(&self) -> usize {
        self.n_regs
    }

    /// Number of expression slots (shift-pattern bindings) the program
    /// uses.
    pub fn n_expr_slots(&self) -> usize {
        self.n_exprs
    }

    /// The variables the program binds, with their slots, in
    /// first-occurrence order.
    pub fn outputs(&self) -> &[(Var, Slot)] {
        &self.outputs
    }

    /// The [operator key](Language::op_key) of the pattern root when it is
    /// a concrete node — the key searchers feed to
    /// [`EGraph::classes_with_op`](crate::EGraph::classes_with_op).
    pub fn root_op_key(&self) -> Option<u64> {
        self.root_op_key
    }

    /// The pattern depth when this program is eligible for semi-naive
    /// (delta-frontier) search, `None` otherwise.
    ///
    /// A program is eligible when it uses **no expression slots**: its
    /// match set for a class is then a function of only the e-node lists
    /// within `depth - 1` child steps of that class plus the identities of
    /// the classes bound at `depth` — so the e-graph's
    /// [delta index](crate::EGraph::dirty_since) plus a `depth - 1` parent
    /// closure over-approximates every class whose matches can have
    /// changed. Shift-pattern programs (`Downshift*` / `CompareExpr`)
    /// also consult analysis data and global hash-cons lookups, which can
    /// change without any structural dirt, so they always search
    /// whole-graph.
    pub fn delta_depth(&self) -> Option<u32> {
        (self.n_exprs == 0).then_some(self.depth)
    }

    /// Execute the program against one e-class, returning every
    /// substitution (deduplicated on canonicalized bindings, first
    /// occurrence kept — the same list the oracle matcher produces).
    pub fn run<A: Analysis<L>>(&self, egraph: &EGraph<L, A>, class: Id) -> Vec<Subst<L>> {
        let mut regs = vec![Id::from_index(0); self.n_regs];
        let mut exprs: ExprSlots<L> = vec![None; self.n_exprs];
        regs[0] = egraph.find(class);
        let mut seen: HashSet<Vec<CanonBinding<L>>> = HashSet::new();
        let mut out: Vec<Subst<L>> = Vec::new();
        self.exec(egraph, &mut regs, &mut exprs, 0, &mut |regs, exprs| {
            let key: Vec<CanonBinding<L>> = self
                .outputs
                .iter()
                .map(|&(_, slot)| match slot {
                    Slot::Reg(r) => CanonBinding::Class(egraph.find(regs[r])),
                    Slot::Expr(s) => {
                        CanonBinding::Expr(Arc::clone(exprs[s].as_ref().expect("slot written")))
                    }
                })
                .collect();
            if seen.insert(key) {
                let mut subst = Subst::default();
                for &(v, slot) in &self.outputs {
                    match slot {
                        Slot::Reg(r) => subst.insert(v, Binding::Class(regs[r])),
                        Slot::Expr(s) => subst.insert(
                            v,
                            Binding::Expr(Arc::clone(exprs[s].as_ref().expect("slot written"))),
                        ),
                    }
                }
                out.push(subst);
            }
        });
        out
    }

    /// Recursive backtracking interpreter: instruction `pc` enumerates its
    /// choices and runs the rest of the program for each.
    fn exec<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        regs: &mut Vec<Id>,
        exprs: &mut ExprSlots<L>,
        pc: usize,
        found: &mut dyn FnMut(&[Id], &ExprSlots<L>),
    ) {
        let Some(instr) = self.instrs.get(pc) else {
            found(regs, exprs);
            return;
        };
        match instr {
            Instr::Scan { node, out } | Instr::Bind { node, out, .. } => {
                let src = match instr {
                    Instr::Bind { src, .. } => *src,
                    _ => 0,
                };
                let class = egraph.find(regs[src]);
                for enode in egraph[class].iter() {
                    if !node.matches(enode) {
                        continue;
                    }
                    debug_assert_eq!(node.children().len(), enode.children().len());
                    for (i, &c) in enode.children().iter().enumerate() {
                        regs[out + i] = egraph.find(c);
                    }
                    self.exec(egraph, regs, exprs, pc + 1, found);
                }
            }
            Instr::Compare { a, b } => {
                if egraph.find(regs[*a]) == egraph.find(regs[*b]) {
                    self.exec(egraph, regs, exprs, pc + 1, found);
                }
            }
            Instr::CompareExpr { expr, reg } => {
                let e = exprs[*expr].as_ref().expect("slot written");
                if egraph.lookup_expr(e) == Some(egraph.find(regs[*reg])) {
                    self.exec(egraph, regs, exprs, pc + 1, found);
                }
            }
            Instr::Downshift { src, k, out } => {
                let Some(down) = A::downshift(egraph, regs[*src], *k) else {
                    return;
                };
                exprs[*out] = Some(Arc::new(down));
                self.exec(egraph, regs, exprs, pc + 1, found);
            }
            Instr::DownshiftCompare { src, k, expr } => {
                let Some(down) = A::downshift(egraph, regs[*src], *k) else {
                    return;
                };
                let e = exprs[*expr].as_ref().expect("slot written");
                let matched = **e == down || {
                    // Equal classes may yield different representatives;
                    // fall back to a semantic check through the e-graph
                    // (identical to the oracle matcher).
                    let (a, b) = (egraph.lookup_expr(e), egraph.lookup_expr(&down));
                    a.is_some() && a == b
                };
                if matched {
                    self.exec(egraph, regs, exprs, pc + 1, found);
                }
            }
            Instr::DownshiftCompareClass { src, k, reg } => {
                let Some(down) = A::downshift(egraph, regs[*src], *k) else {
                    return;
                };
                if egraph.lookup_expr(&down) == Some(egraph.find(regs[*reg])) {
                    self.exec(egraph, regs, exprs, pc + 1, found);
                }
            }
        }
    }
}

/// Nesting depth of the pattern position `id`: variables (plain or
/// shifted) are 0, an `ENode` is 1 + its deepest child.
fn depth_of<L: Language>(nodes: &[PatternNode<L>], id: Id) -> u32 {
    match &nodes[id.index()] {
        PatternNode::Var(_) | PatternNode::Shifted(..) => 0,
        PatternNode::ENode(n) => {
            1 + n
                .children()
                .iter()
                .map(|c| depth_of(nodes, *c))
                .max()
                .unwrap_or(0)
        }
    }
}

/// Dedup key: one entry per bound variable, in the program's output order
/// (the variable identities are implied by the position).
#[derive(Debug, PartialEq, Eq, Hash)]
enum CanonBinding<L> {
    Class(Id),
    Expr(Arc<RecExpr<L>>),
}

struct Compiler<'a, L> {
    nodes: &'a [PatternNode<L>],
    instrs: Vec<Instr<L>>,
    n_regs: usize,
    n_exprs: usize,
    /// Variables bound so far (small; linear scan).
    bound: Vec<(Var, Slot)>,
    outputs: Vec<(Var, Slot)>,
}

impl<L: Language> Compiler<'_, L> {
    fn slot_of(&self, v: Var) -> Option<Slot> {
        self.bound.iter().find(|(b, _)| *b == v).map(|&(_, s)| s)
    }

    fn bind(&mut self, v: Var, slot: Slot) {
        self.bound.push((v, slot));
        self.outputs.push((v, slot));
    }

    /// Emit instructions for the pattern position `pid`, whose e-class is
    /// held in register `reg`.
    fn go(&mut self, pid: Id, reg: usize) {
        match &self.nodes[pid.index()] {
            // Zero shifts are normalized away at pattern construction;
            // compile stragglers exactly like plain variables.
            PatternNode::Var(v) | PatternNode::Shifted(v, 0) => match self.slot_of(*v) {
                None => self.bind(*v, Slot::Reg(reg)),
                Some(Slot::Reg(r)) => self.instrs.push(Instr::Compare { a: r, b: reg }),
                Some(Slot::Expr(s)) => self.instrs.push(Instr::CompareExpr { expr: s, reg }),
            },
            PatternNode::Shifted(v, k) => match self.slot_of(*v) {
                None => {
                    let out = self.n_exprs;
                    self.n_exprs += 1;
                    self.instrs.push(Instr::Downshift { src: reg, k: *k, out });
                    self.bind(*v, Slot::Expr(out));
                }
                Some(Slot::Expr(s)) => {
                    self.instrs
                        .push(Instr::DownshiftCompare { src: reg, k: *k, expr: s });
                }
                Some(Slot::Reg(r)) => {
                    self.instrs
                        .push(Instr::DownshiftCompareClass { src: reg, k: *k, reg: r });
                }
            },
            PatternNode::ENode(node) => {
                let out = self.n_regs;
                self.n_regs += node.children().len();
                if reg == 0 && self.instrs.is_empty() {
                    self.instrs.push(Instr::Scan { node: node.clone(), out });
                } else {
                    self.instrs
                        .push(Instr::Bind { node: node.clone(), src: reg, out });
                }
                for (i, &c) in node.children().iter().enumerate() {
                    self.go(c, out + i);
                }
            }
        }
    }
}

/// The legacy recursive matcher packaged as a [`Searcher`] — the **oracle**
/// the differential tests and the e-matching bench compare the VM against.
///
/// Never uses the operator index ([`candidate_class_ids`] returns `None`),
/// so it scans every e-class the way the pre-VM engine did.
///
/// [`Searcher`]: crate::Searcher
/// [`candidate_class_ids`]: crate::Searcher::candidate_class_ids
#[derive(Debug, Clone)]
pub struct OraclePattern<L>(Pattern<L>);

impl<L: Language> OraclePattern<L> {
    /// Wrap a pattern.
    pub fn new(pattern: Pattern<L>) -> Self {
        OraclePattern(pattern)
    }

    /// The wrapped pattern.
    pub fn pattern(&self) -> &Pattern<L> {
        &self.0
    }
}

impl<L: Language, A: Analysis<L>> crate::Searcher<L, A> for OraclePattern<L> {
    fn search(&self, egraph: &EGraph<L, A>, limit: usize) -> Vec<crate::SearchMatches<L>> {
        let mut matches = Vec::new();
        let mut total = 0;
        for id in egraph.class_ids() {
            if total >= limit {
                break;
            }
            let mut substs = self.0.match_class_oracle(egraph, id);
            if substs.is_empty() {
                continue;
            }
            if total + substs.len() > limit {
                substs.truncate(limit - total);
            }
            total += substs.len();
            matches.push(crate::SearchMatches::new(id, substs));
        }
        matches
    }

    fn can_search_per_class(&self) -> bool {
        true
    }

    fn search_class(&self, egraph: &EGraph<L, A>, class: Id, limit: usize) -> Vec<Subst<L>> {
        let mut substs = self.0.match_class_oracle(egraph, class);
        substs.truncate(limit);
        substs
    }

    fn bound_vars(&self) -> Vec<Var> {
        self.0.vars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pattern, SymbolLang};

    type EG = EGraph<SymbolLang, ()>;

    fn p(s: &str) -> Pattern<SymbolLang> {
        s.parse().unwrap()
    }

    #[test]
    fn compiles_to_expected_shape() {
        let pat = p("(f (g ?x) ?y)");
        let prog = pat.compiled();
        // Scan f, Bind g; ?x and ?y are first occurrences (no instrs).
        assert!(matches!(prog.instructions()[0], Instr::Scan { .. }));
        assert!(matches!(prog.instructions()[1], Instr::Bind { .. }));
        assert_eq!(prog.instructions().len(), 2);
        assert_eq!(prog.outputs().len(), 2);
        assert!(prog.root_op_key().is_some());
    }

    #[test]
    fn nonlinear_compiles_compare() {
        let pat = p("(f ?x ?x)");
        let prog = pat.compiled();
        assert!(matches!(prog.instructions()[1], Instr::Compare { .. }));
    }

    #[test]
    fn var_root_has_no_instructions() {
        let pat = p("?x");
        let prog = pat.compiled();
        assert!(prog.instructions().is_empty());
        assert!(prog.root_op_key().is_none());
        let mut eg = EG::default();
        let id = eg.add(SymbolLang::leaf("a"));
        assert_eq!(prog.run(&eg, id).len(), 1);
    }

    #[test]
    fn vm_enumeration_order_matches_oracle() {
        let mut eg = EG::default();
        let fa = eg.add_expr(&"(f a c)".parse().unwrap());
        let fb = eg.add_expr(&"(f b d)".parse().unwrap());
        eg.union(fa, fb);
        eg.rebuild();
        let pat = p("(f ?x ?y)");
        let vm = pat.match_class(&eg, fa);
        let oracle = pat.match_class_oracle(&eg, fa);
        assert_eq!(vm.len(), oracle.len());
        for (a, b) in vm.iter().zip(&oracle) {
            let pairs = |s: &Subst<SymbolLang>| {
                s.iter()
                    .map(|(v, b)| match b {
                        Binding::Class(id) => (*v, eg.find(*id)),
                        Binding::Expr(_) => unreachable!("no shift patterns here"),
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(pairs(a), pairs(b));
        }
    }
}
