//! Semi-naive (delta-frontier) e-matching: search only where the e-graph
//! changed, replay cached matches everywhere else.
//!
//! Naive batched saturation re-matches every rule against **every**
//! candidate class on every iteration, even though late iterations change
//! only a small frontier of the e-graph. Following egglog's semi-naive
//! evaluation, [`DeltaSearch`] keeps per-rule state that splits a rule's
//! candidate universe into:
//!
//! * **pending** — classes whose matches may have changed since the rule
//!   last scanned them (seeded from the e-graph's
//!   [delta index](crate::EGraph::dirty_since), up-closed through
//!   [`parent_classes`](crate::EGraph::parent_classes) to the rule's
//!   pattern radius) → these are **scanned** by the e-matching VM;
//! * **productive** — clean classes whose previous scan found matches →
//!   their cached substitution lists are **replayed** verbatim;
//! * everything else — clean classes whose previous scan found nothing →
//!   **skipped** (their matches are provably still empty).
//!
//! The emitted match stream is therefore *item-for-item identical* to a
//! whole-graph scan over the same candidate list — same classes, same
//! substitutions, same order, same truncation points — so schedulers,
//! appliers, explanations and reports cannot observe the difference;
//! only the work drops. The differential wall in
//! `tests/ematch_differential.rs` and the proptest sweep in
//! `tests/prop_seminaive.rs` hold the two engines equal on real kernels
//! and random graphs.
//!
//! # Soundness of the frontier
//!
//! A rule is eligible when its searcher reports a
//! [`delta_depth`](crate::Searcher::delta_depth) `d`: its match set for a
//! class depends only on the e-node lists of classes within `d - 1` child
//! steps plus class identities at `d`. Dirt is recorded where node lists
//! change: class creation, node adds, merge winners, and parents of merge
//! losers (whose member nodes are rewritten in place). A clean class's
//! matches can change only if some class within `d - 1` child steps was
//! dirtied — so the frontier is the dirty set up-closed `d - 1` levels
//! through parent back-pointers (themselves a sound over-approximation:
//! never pruned). Cached substitutions always bind ids that are still
//! canonical: if a bound class had merged away, its parent chain puts the
//! caching class inside the frontier and the stale entry is re-scanned.

use std::collections::HashMap;
use std::sync::Arc;

use crate::rewrite::SearchMatches;
use crate::{Analysis, EGraph, Id, Language, Rewrite, Subst};

/// The full (untruncated) match lists of the scans that actually ran, in
/// plan order — what [`DeltaSearch::commit`] folds back into the cache.
/// The lists are already behind `Arc`s because emitted matches share them.
pub type ScanResults<L> = Vec<(Id, Arc<Vec<Subst<L>>>)>;

/// One scheduled unit of a rule's semi-naive search.
#[derive(Debug, Clone)]
pub enum PlanEntry<L> {
    /// Run the e-matching VM over this (pending) class.
    Scan(Id),
    /// Emit this (clean, productive) class's cached substitutions.
    Replay(Id, Arc<Vec<Subst<L>>>),
}

/// A rule's search schedule for one iteration: entries in ascending class
/// id over the rule's candidate universe, each either a fresh scan or a
/// cache replay. Built by [`DeltaSearch::begin`], executed by the runner
/// (serially or chunked across threads), then confirmed back via
/// [`DeltaSearch::commit`].
#[derive(Debug, Clone)]
pub struct SearchPlan<L> {
    /// The scheduled entries, ascending by class id.
    pub entries: Vec<PlanEntry<L>>,
    /// Number of [`PlanEntry::Scan`] entries — the `frontier_candidates`
    /// statistic.
    pub n_scans: usize,
}

/// Per-rule semi-naive state (see the module docs).
#[derive(Debug, Clone)]
struct RuleState<L> {
    /// Delta-index version this rule has fully synced to: every change
    /// sealed under an earlier version is reflected in `pending`.
    synced: u64,
    /// Classes that must be scanned before their cache can be trusted;
    /// sorted ascending, canonical as of the last sync.
    pending: Vec<Id>,
    /// Clean classes with a non-empty cached match list; sorted ascending.
    productive: Vec<Id>,
    /// Cached **full** (untruncated) substitution lists for `productive`
    /// classes. Shared via `Arc` so plans can carry them across the
    /// parallel search phase without copying.
    cache: HashMap<Id, Arc<Vec<Subst<L>>>>,
    /// The rule's [`delta_fingerprint`](crate::Searcher::delta_fingerprint)
    /// as of the last plan; a change invalidates everything above.
    aux_fp: u64,
}

impl<L> Default for RuleState<L> {
    fn default() -> Self {
        RuleState {
            synced: 0,
            pending: Vec::new(),
            productive: Vec::new(),
            cache: HashMap::new(),
            aux_fp: 0,
        }
    }
}

/// Memoized frontier closures for one search phase.
///
/// All rules synced to the same version with the same pattern radius share
/// one dirty-set closure; this memo (create one per iteration, while the
/// e-graph is unchanged) computes each distinct `(synced, radius)` closure
/// once.
#[derive(Debug, Default)]
pub struct ClosureMemo {
    /// `(synced, radius, closure, outermost layer)` — the layer lets a
    /// deeper-radius request continue the walk where a shallower one
    /// stopped instead of restarting from the dirty set.
    entries: Vec<(u64, u32, Vec<Id>, Vec<Id>)>,
}

impl ClosureMemo {
    /// The frontier for a rule synced at `synced` with parent-closure
    /// `radius`: [`EGraph::dirty_since`]`(synced)` up-closed `radius`
    /// levels through parent back-pointers. Sorted, deduplicated,
    /// canonical.
    pub fn frontier<L: Language, A: Analysis<L>>(
        &mut self,
        egraph: &EGraph<L, A>,
        synced: u64,
        radius: u32,
    ) -> &[Id] {
        if let Some(pos) = self
            .entries
            .iter()
            .position(|(s, r, ..)| *s == synced && *r == radius)
        {
            return &self.entries[pos].2;
        }
        // Continue from the deepest shallower closure at this version, or
        // bottom out at the raw dirty set (memoized as the radius-0 entry
        // so sibling radii share one `dirty_since`).
        let base = self
            .entries
            .iter()
            .filter(|(s, r, ..)| *s == synced && *r < radius)
            .max_by_key(|(_, r, ..)| *r);
        let (base_radius, mut all, mut layer) = match base {
            Some((_, r, all, layer)) => (*r, all.clone(), layer.clone()),
            None => {
                let dirty = egraph.dirty_since(synced);
                let layer = dirty.clone();
                if radius > 0 {
                    self.entries.push((synced, 0, dirty.clone(), layer.clone()));
                }
                (0, dirty, layer)
            }
        };
        if base_radius < radius && all.len() * 2 >= egraph.num_classes() {
            // The dirty set already covers most of the graph: one parent
            // step will (almost) saturate it, so take the conservative
            // superset — every class — without paying for the walk. The
            // frontier is an over-approximation either way; scans re-derive
            // the actual matches.
            all = egraph.class_ids();
            layer = Vec::new();
        } else {
            close_over_parents(egraph, &mut all, &mut layer, radius - base_radius);
        }
        self.entries.push((synced, radius, all, layer));
        &self.entries.last().expect("just pushed").2
    }
}

/// Up-close `all` (sorted, canonical, with `layer` its outermost ring)
/// through parent back-pointers, `steps` more levels. Membership is
/// tracked in a bitmap indexed by raw id, so the walk is linear in visited
/// parent edges with one final sort — dirty sets in the tens of thousands
/// make per-layer re-sorting and binary-search probing the dominant search
/// cost otherwise. Stops early when the closure saturates (covers every
/// class) or a layer adds nothing.
fn close_over_parents<L: Language, A: Analysis<L>>(
    egraph: &EGraph<L, A>,
    all: &mut Vec<Id>,
    layer: &mut Vec<Id>,
    steps: u32,
) {
    let total = egraph.num_classes();
    if steps == 0 || layer.is_empty() || all.len() >= total {
        return;
    }
    let mut seen: Vec<bool> = Vec::new();
    let mark = |seen: &mut Vec<bool>, id: Id| {
        let i = id.index();
        if i >= seen.len() {
            seen.resize(i + 1, false);
        }
        !std::mem::replace(&mut seen[i], true)
    };
    for &id in all.iter() {
        mark(&mut seen, id);
    }
    let mut grew = false;
    for _ in 0..steps {
        let mut next: Vec<Id> = Vec::new();
        for &id in layer.iter() {
            for &(_, p) in &egraph.class(id).parents {
                let parent = egraph.find(p);
                if mark(&mut seen, parent) {
                    next.push(parent);
                }
            }
        }
        all.extend_from_slice(&next);
        grew = grew || !next.is_empty();
        *layer = next;
        if layer.is_empty() || all.len() >= total {
            break;
        }
    }
    if grew {
        all.sort_unstable();
    }
}

/// The semi-naive search engine: per-rule frontier state over one rule
/// slice (rules are identified by their index, like the
/// [`Scheduler`](crate::Scheduler)'s per-rule statistics), driven by the
/// [`Runner`](crate::Runner) or directly by tests.
///
/// Protocol per iteration, per eligible rule: [`begin`](DeltaSearch::begin)
/// builds a [`SearchPlan`]; the caller executes it (emitting matches with
/// whole-graph truncation semantics); [`commit`](DeltaSearch::commit)
/// records which scans actually ran, updating the cache. Entries past a
/// match-limit cutoff are neither emitted nor committed — their classes
/// stay pending and are re-scanned next iteration, exactly as the
/// whole-graph engine would revisit them. A banned rule simply skips an
/// iteration: its `synced` version stays put, so the dirt keeps
/// accumulating and nothing is stranded.
#[derive(Debug, Clone)]
pub struct DeltaSearch<L> {
    rules: Vec<RuleState<L>>,
}

impl<L: Language> DeltaSearch<L> {
    /// Fresh state for `n_rules` rules, all fully unsynced (the first
    /// search of each rule scans its entire candidate universe).
    pub fn new(n_rules: usize) -> Self {
        Self::new_synced(n_rules, 0)
    }

    /// Warm state for `n_rules` rules, pre-synced to delta version
    /// `synced` — the first search of each rule scans only classes dirtied
    /// *after* that version instead of its whole universe.
    ///
    /// This is the warm-start entry point: restore a snapshot whose delta
    /// index was sealed at `synced`, add new roots, and resume with the
    /// snapshot's classes pre-sealed so only the new work hits the
    /// frontier. It is **sound only when** every rule in the slice was
    /// already saturated against the pre-`synced` graph (its matches there
    /// were applied and are no-ops now) — otherwise matches in old classes
    /// are silently skipped. Rules with a nonzero
    /// [`delta_fingerprint`](crate::Searcher::delta_fingerprint) are
    /// unaffected: their fingerprint never matches the fresh state's zero,
    /// so their first plan rescans the whole universe as usual.
    ///
    /// `new_synced(n, 0)` is exactly [`new`](DeltaSearch::new).
    pub fn new_synced(n_rules: usize, synced: u64) -> Self {
        DeltaSearch {
            rules: (0..n_rules)
                .map(|_| RuleState {
                    synced,
                    ..RuleState::default()
                })
                .collect(),
        }
    }

    /// Number of rules this state tracks.
    pub fn n_rules(&self) -> usize {
        self.rules.len()
    }

    /// Build rule `rule_idx`'s plan for this iteration.
    ///
    /// `depth` is the rule's [`delta_depth`](crate::Searcher::delta_depth);
    /// `universe` is the candidate list the whole-graph engine would
    /// iterate (the operator-index bucket, or all class ids), sorted
    /// ascending; `full_universe` declares that `universe` is exactly the
    /// live class-id list, letting membership tests use the union-find
    /// instead of binary searches; `aux_fp` is the rule's
    /// [`delta_fingerprint`](crate::Searcher::delta_fingerprint) on this
    /// snapshot; `limit` is the rule's match budget this iteration;
    /// `min_yield` is the rule's
    /// [`min_class_yield`](crate::Searcher::min_class_yield);
    /// `closures` memoizes frontier closures across rules.
    ///
    /// The plan stops early once the *known* yields of its entries alone
    /// meet `limit` — each replay contributes its cached length, each scan
    /// its guaranteed `min_yield` floor. Execution (whose running total
    /// can only be larger at every prefix) would stop at or before that
    /// point anyway, so later entries could never run this iteration. They
    /// stay pending / productive untouched — exactly the classes the
    /// whole-graph engine would also never reach under the same budget.
    ///
    /// # Panics
    ///
    /// Panics if the e-graph is dirty (plans are only valid against a
    /// rebuilt snapshot).
    #[allow(clippy::too_many_arguments)]
    pub fn begin<A: Analysis<L>>(
        &mut self,
        egraph: &EGraph<L, A>,
        rule_idx: usize,
        depth: u32,
        universe: &[Id],
        full_universe: bool,
        aux_fp: u64,
        limit: usize,
        min_yield: usize,
        closures: &mut ClosureMemo,
    ) -> SearchPlan<L> {
        assert!(egraph.is_clean(), "semi-naive plans require a clean e-graph");
        let radius = depth.saturating_sub(1);
        let state = &mut self.rules[rule_idx];
        // Membership in the universe; for the full class list the
        // union-find answers it without probing a 4-byte-per-class array.
        let in_universe = |id: Id| {
            if full_universe {
                egraph.find(id) == id
            } else {
                universe.binary_search(&id).is_ok()
            }
        };

        if aux_fp != state.aux_fp {
            // The rule's global inputs changed: every cached list is stale
            // and even never-productive classes may match now. Rescan the
            // whole universe — the stream a first-ever search would emit —
            // planning only the prefix the budget could possibly reach.
            state.aux_fp = aux_fp;
            state.synced = egraph.delta_version();
            state.pending = universe.to_vec();
            state.productive.clear();
            state.cache.clear();
            let n = match min_yield {
                0 => universe.len(),
                m => universe.len().min(limit.div_ceil(m)),
            };
            return SearchPlan {
                entries: universe[..n].iter().map(|&id| PlanEntry::Scan(id)).collect(),
                n_scans: n,
            };
        }

        let frontier = closures.frontier(egraph, state.synced, radius);
        state.synced = egraph.delta_version();

        // Dirt outside the universe can never be scanned by this rule, and
        // a class only enters the universe through changes that re-dirty
        // it — so intersect up front (probing the smaller side) instead of
        // walking the whole closure per rule. The frontier is all live
        // canonical classes, so against the full universe it IS the
        // intersection.
        let touched: Vec<Id> = if full_universe {
            frontier.to_vec()
        } else if universe.len() <= frontier.len() {
            universe
                .iter()
                .copied()
                .filter(|id| frontier.binary_search(id).is_ok())
                .collect()
        } else {
            frontier
                .iter()
                .copied()
                .filter(|id| universe.binary_search(id).is_ok())
                .collect()
        };

        // pending ∪ touched (plain sorted merge — no `find` per entry:
        // ids that merged away are dropped lazily when the walk below
        // reaches them, so an always-truncated pending tail costs nothing
        // per iteration).
        if !touched.is_empty() {
            let mut merged = Vec::with_capacity(state.pending.len() + touched.len());
            let (mut i, mut j) = (0, 0);
            while i < state.pending.len() || j < touched.len() {
                match (state.pending.get(i), touched.get(j)) {
                    (Some(&p), Some(&f)) if p == f => {
                        i += 1;
                        j += 1;
                        merged.push(f);
                    }
                    (Some(&p), Some(&f)) if p < f => {
                        i += 1;
                        merged.push(p);
                    }
                    (_, Some(&f)) => {
                        j += 1;
                        merged.push(f);
                    }
                    (Some(&p), None) => {
                        i += 1;
                        merged.push(p);
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
            state.pending = merged;
        }

        // Walk pending ∪ productive ascending — the order the whole-graph
        // engine visits candidates in. Pending ids outside the universe
        // are dropped for good: a class only ever *gains* root-operator
        // nodes through changes that re-dirty it. Productive ids are
        // always inside the universe (their nodes never leave), but may
        // have merged away, in which case the winner is pending and the
        // dead cache entry is evicted.
        let mut entries = Vec::new();
        let mut n_scans = 0;
        let mut known_yield = 0;
        let mut kept_pending = Vec::new();
        let mut kept_productive = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < state.pending.len() || j < state.productive.len() {
            if known_yield >= limit {
                // The budget is provably exhausted before any further
                // entry: retain the tails untouched (stale ids among them
                // are cleaned whenever the walk eventually reaches them).
                kept_pending.extend_from_slice(&state.pending[i..]);
                kept_productive.extend_from_slice(&state.productive[j..]);
                break;
            }
            let (id, scan) = match (state.pending.get(i), state.productive.get(j)) {
                (Some(&p), Some(&q)) if p == q => {
                    i += 1;
                    j += 1;
                    (p, true)
                }
                (Some(&p), Some(&q)) if p < q => {
                    i += 1;
                    (p, true)
                }
                (_, Some(&q)) => {
                    j += 1;
                    (q, false)
                }
                (Some(&p), None) => {
                    i += 1;
                    (p, true)
                }
                (None, None) => unreachable!("loop condition"),
            };
            if scan {
                if in_universe(id) {
                    known_yield += min_yield;
                    entries.push(PlanEntry::Scan(id));
                    n_scans += 1;
                    kept_pending.push(id);
                    // A pending id superseding a productive one keeps its
                    // cache entry until the scan commits (in case the
                    // match limit cuts the scan off this iteration).
                    if state.cache.contains_key(&id) {
                        kept_productive.push(id);
                    }
                } else {
                    // Outside the universe — merged away (the winner is
                    // dirty, hence pending) or lacking the root-operator
                    // node. It cannot match now and cannot start to
                    // without being re-dirtied: drop it for good.
                    state.cache.remove(&id);
                }
            } else if in_universe(id) {
                let cached = Arc::clone(state.cache.get(&id).expect("productive id is cached"));
                known_yield += cached.len();
                entries.push(PlanEntry::Replay(id, cached));
                kept_productive.push(id);
            } else {
                // Merged away (the winner is pending) or dropped out of
                // the universe (the departure re-dirtied it, but the
                // intersection above filtered it from `touched`): the
                // cached list is stale — evict rather than replay.
                state.cache.remove(&id);
            }
        }
        state.pending = kept_pending;
        state.productive = kept_productive;
        SearchPlan { entries, n_scans }
    }

    /// Record the scans that actually ran (in plan order — ascending class
    /// id — with their **full** untruncated match lists). Scanned classes
    /// leave `pending`; non-empty results enter the replay cache, empty
    /// ones evict it. Both sorted sets are rebuilt by one merge walk, so a
    /// commit is `O(pending + productive + scans)` rather than quadratic.
    pub fn commit(&mut self, rule_idx: usize, scans: ScanResults<L>) {
        if scans.is_empty() {
            return;
        }
        debug_assert!(
            scans.windows(2).all(|w| w[0].0 < w[1].0),
            "scans must arrive in ascending plan order"
        );
        let state = &mut self.rules[rule_idx];

        // pending \ scanned.
        let mut kept = Vec::with_capacity(state.pending.len());
        let mut j = 0;
        for &p in &state.pending {
            while j < scans.len() && scans[j].0 < p {
                j += 1;
            }
            if j < scans.len() && scans[j].0 == p {
                continue;
            }
            kept.push(p);
        }
        state.pending = kept;

        // productive merged with the scan results: non-empty scans enter
        // (or refresh) the cache, empty ones leave it.
        let mut merged = Vec::with_capacity(state.productive.len() + scans.len());
        let mut scans = scans.into_iter().peekable();
        let mut i = 0;
        loop {
            let next_scan = scans.peek().map(|(id, _)| *id);
            match (state.productive.get(i).copied(), next_scan) {
                (Some(p), Some(s)) if p < s => {
                    i += 1;
                    merged.push(p);
                }
                (Some(p), Some(s)) if p == s => {
                    i += 1;
                    let (id, full) = scans.next().expect("peeked");
                    if full.is_empty() {
                        state.cache.remove(&id);
                    } else {
                        merged.push(id);
                        state.cache.insert(id, full);
                    }
                }
                (_, Some(_)) => {
                    let (id, full) = scans.next().expect("peeked");
                    if full.is_empty() {
                        state.cache.remove(&id);
                    } else {
                        merged.push(id);
                        state.cache.insert(id, full);
                    }
                }
                (Some(p), None) => {
                    i += 1;
                    merged.push(p);
                }
                (None, None) => break,
            }
        }
        state.productive = merged;
    }

    /// One-shot serial convenience: plan, execute and commit rule
    /// `rule_idx`'s search in one call, returning the same match list (and
    /// truncation behaviour) as the whole-graph engine under `limit`.
    ///
    /// Ineligible rules (no [`delta_depth`](crate::Searcher::delta_depth))
    /// fall back to the exact whole-graph path. This is the entry point
    /// the differential tests drive; [`Runner`](crate::Runner) uses
    /// [`begin`](DeltaSearch::begin)/[`commit`](DeltaSearch::commit)
    /// directly so the execution can fan out across threads.
    pub fn search_rule<A>(
        &mut self,
        egraph: &EGraph<L, A>,
        rule: &Rewrite<L, A>,
        rule_idx: usize,
        limit: usize,
        closures: &mut ClosureMemo,
    ) -> Vec<SearchMatches<L>>
    where
        L: 'static,
        A: Analysis<L> + 'static,
    {
        let Some(depth) = rule.delta_depth() else {
            return whole_graph_search(egraph, rule, limit);
        };
        let candidates = rule.candidate_class_ids(egraph);
        let full_universe = candidates.is_none();
        let universe = candidates.unwrap_or_else(|| egraph.class_ids());
        let aux_fp = rule.delta_fingerprint(egraph);
        let min_yield = rule.min_class_yield(egraph);
        let plan = self.begin(
            egraph,
            rule_idx,
            depth,
            &universe,
            full_universe,
            aux_fp,
            limit,
            min_yield,
            closures,
        );
        let (matches, scans) = execute_plan_serial(&plan, egraph, rule, limit);
        self.commit(rule_idx, scans);
        matches
    }
}

/// Execute a plan serially with whole-graph truncation semantics.
///
/// Returns the emitted matches plus the `(class, full result)` list of
/// scans that ran before the limit cut off — the argument for
/// [`DeltaSearch::commit`]. Entries past the cutoff are untouched.
pub fn execute_plan_serial<L: Language + 'static, A: Analysis<L> + 'static>(
    plan: &SearchPlan<L>,
    egraph: &EGraph<L, A>,
    rule: &Rewrite<L, A>,
    limit: usize,
) -> (Vec<SearchMatches<L>>, ScanResults<L>) {
    let mut total = 0;
    let mut out = Vec::new();
    let mut scans = Vec::new();
    for entry in &plan.entries {
        if total >= limit {
            break;
        }
        match entry {
            PlanEntry::Scan(id) => {
                let full = Arc::new(rule.search_class(egraph, *id, usize::MAX));
                emit(*id, &full, limit, &mut total, &mut out);
                scans.push((*id, full));
            }
            PlanEntry::Replay(id, cached) => {
                emit(*id, cached, limit, &mut total, &mut out);
            }
        }
    }
    (out, scans)
}

/// Append `full`'s prefix under the remaining budget as a
/// [`SearchMatches`] — the exact truncation the whole-graph searcher
/// applies across candidate classes. The list is shared, not copied: the
/// emitted matches view the same allocation the replay cache keeps.
pub(crate) fn emit<L>(
    class: Id,
    full: &Arc<Vec<Subst<L>>>,
    limit: usize,
    total: &mut usize,
    out: &mut Vec<SearchMatches<L>>,
) {
    let take = full.len().min(limit - *total);
    if take == 0 {
        return;
    }
    out.push(SearchMatches::shared(class, Arc::clone(full), take));
    *total += take;
}

/// The whole-graph serial search for one rule — the fallback for
/// ineligible rules, identical to the runner's serial per-rule arm.
fn whole_graph_search<L: Language + 'static, A: Analysis<L> + 'static>(
    egraph: &EGraph<L, A>,
    rule: &Rewrite<L, A>,
    limit: usize,
) -> Vec<SearchMatches<L>> {
    if !rule.can_search_per_class() {
        return rule.search(egraph, limit);
    }
    let ids = rule
        .candidate_class_ids(egraph)
        .unwrap_or_else(|| egraph.class_ids());
    let mut total = 0;
    let mut out = Vec::new();
    for id in ids {
        if total >= limit {
            break;
        }
        let substs = rule.search_class(egraph, id, limit - total);
        if !substs.is_empty() {
            total += substs.len();
            out.push(SearchMatches::new(id, substs));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EGraph, SymbolLang};

    type EG = EGraph<SymbolLang, ()>;

    fn comm() -> Rewrite<SymbolLang, ()> {
        Rewrite::from_patterns("comm-add", "(+ ?x ?y)", "(+ ?y ?x)")
    }

    /// Substitution lists compared through the union-find, ordered.
    fn same_matches(eg: &EG, a: &[SearchMatches<SymbolLang>], b: &[SearchMatches<SymbolLang>]) {
        assert_eq!(a.len(), b.len(), "match-set lengths diverged");
        let find = |id| eg.find(id);
        for (ma, mb) in a.iter().zip(b) {
            assert_eq!(ma.class, mb.class);
            assert_eq!(ma.substs().len(), mb.substs().len());
            for (sa, sb) in ma.substs().iter().zip(mb.substs()) {
                assert!(sa.same_as(sb, &find), "substs diverged on {}", ma.class);
            }
        }
    }

    #[test]
    fn first_search_equals_whole_graph_then_frontier_shrinks() {
        let mut eg = EG::default();
        eg.add_expr(&"(+ (+ a b) c)".parse().unwrap());
        eg.rebuild();
        let rule = comm();
        let mut ds = DeltaSearch::new(1);
        let mut memo = ClosureMemo::default();
        let fresh = ds.search_rule(&eg, &rule, 0, usize::MAX, &mut memo);
        let whole = rule.search(&eg, usize::MAX);
        same_matches(&eg, &fresh, &whole);

        // Nothing changed: the replayed result is identical and no class
        // is scanned.
        let mut memo = ClosureMemo::default();
        let plan = ds.begin(
            &eg,
            0,
            rule.delta_depth().unwrap(),
            &rule.candidate_class_ids(&eg).unwrap(),
            false,
            rule.delta_fingerprint(&eg),
            usize::MAX,
            0,
            &mut memo,
        );
        assert_eq!(plan.n_scans, 0, "clean e-graph must need no scans");
        let (replayed, scans) = execute_plan_serial(&plan, &eg, &rule, usize::MAX);
        assert!(scans.is_empty());
        same_matches(&eg, &replayed, &whole);
    }

    #[test]
    fn dirtied_classes_rescan_and_agree_after_merge() {
        let mut eg = EG::default();
        let ab = eg.add_expr(&"(+ a b)".parse().unwrap());
        let cd = eg.add_expr(&"(+ c d)".parse().unwrap());
        eg.rebuild();
        let rule = comm();
        let mut ds = DeltaSearch::new(1);
        ds.search_rule(&eg, &rule, 0, usize::MAX, &mut ClosureMemo::default());

        // Merge the two (+ ...) classes: both engines must agree on the
        // collapsed class's (deduplicated) matches.
        eg.union(ab, cd);
        eg.rebuild();
        let fresh = ds.search_rule(&eg, &rule, 0, usize::MAX, &mut ClosureMemo::default());
        let whole = rule.search(&eg, usize::MAX);
        same_matches(&eg, &fresh, &whole);
    }

    #[test]
    fn truncated_scans_stay_pending() {
        let mut eg = EG::default();
        for name in ["a", "b", "c", "d"] {
            let leaf = eg.add(SymbolLang::leaf(name));
            let z = eg.add(SymbolLang::leaf("z"));
            eg.add(SymbolLang::new("+", vec![leaf, z]));
        }
        eg.rebuild();
        let rule = comm();
        let mut ds = DeltaSearch::new(1);
        // Limit 2: only the first two (+ ...) classes are scanned.
        let first = ds.search_rule(&eg, &rule, 0, 2, &mut ClosureMemo::default());
        assert_eq!(first.iter().map(|m| m.len()).sum::<usize>(), 2);
        // The rest stayed pending: a second search under a bigger budget
        // still finds everything the whole-graph engine does.
        let second = ds.search_rule(&eg, &rule, 0, usize::MAX, &mut ClosureMemo::default());
        let whole = rule.search(&eg, usize::MAX);
        same_matches(&eg, &second, &whole);
    }

    #[test]
    fn parent_closure_rescans_grandparents() {
        // Depth-2 pattern: growing the *inner* (h _) class changes the
        // outer (f _) class's match set without dirtying the (f _) class
        // itself — only the radius-1 parent closure catches it.
        let mut eg = EG::default();
        eg.add_expr(&"(f (h a))".parse().unwrap());
        eg.rebuild();
        let rule = Rewrite::<SymbolLang, ()>::from_patterns("deep", "(f (h ?x))", "(k ?x)");
        let mut ds = DeltaSearch::new(1);
        ds.search_rule(&eg, &rule, 0, usize::MAX, &mut ClosureMemo::default());

        // (h a) ∪ (h b): the merged class gains a second h-node, so the
        // (f _) class now matches twice (?x = a and ?x = b).
        let hb = eg.add_expr(&"(h b)".parse().unwrap());
        let ha = eg.lookup_expr(&"(h a)".parse().unwrap()).unwrap();
        eg.union(ha, hb);
        eg.rebuild();
        let fresh = ds.search_rule(&eg, &rule, 0, usize::MAX, &mut ClosureMemo::default());
        let whole = rule.search(&eg, usize::MAX);
        same_matches(&eg, &fresh, &whole);
        assert_eq!(fresh.iter().map(|m| m.len()).sum::<usize>(), 2);
    }
}
