//! Graphviz export of e-graphs, for debugging and documentation.

use std::fmt;

use crate::{Analysis, EGraph, Language};

/// Renders an e-graph in Graphviz `dot` format via `Display`.
///
/// Each e-class becomes a cluster; e-nodes point at the clusters of their
/// children (mirroring the figures in the paper and the egg docs).
///
/// ```
/// use liar_egraph::{Dot, EGraph, SymbolLang};
/// let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
/// eg.add_expr(&"(f a)".parse().unwrap());
/// let dot = Dot::new(&eg).to_string();
/// assert!(dot.starts_with("digraph egraph"));
/// ```
pub struct Dot<'a, L: Language, A: Analysis<L>> {
    egraph: &'a EGraph<L, A>,
}

impl<'a, L: Language, A: Analysis<L>> Dot<'a, L, A> {
    /// Wrap an e-graph for rendering.
    pub fn new(egraph: &'a EGraph<L, A>) -> Self {
        Dot { egraph }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl<L: Language, A: Analysis<L>> fmt::Display for Dot<'_, L, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "digraph egraph {{")?;
        writeln!(f, "  compound=true; clusterrank=local;")?;
        for class in self.egraph.classes_sorted() {
            writeln!(f, "  subgraph cluster_{} {{", class.id)?;
            writeln!(f, "    style=dotted; label=\"e{}\";", class.id)?;
            for (i, node) in class.iter().enumerate() {
                writeln!(
                    f,
                    "    n{}_{} [label=\"{}\"];",
                    class.id,
                    i,
                    escape(&node.display_op())
                )?;
            }
            writeln!(f, "  }}")?;
        }
        for class in self.egraph.classes_sorted() {
            for (i, node) in class.iter().enumerate() {
                for (arg, child) in node.children().iter().enumerate() {
                    let child = self.egraph.find(*child);
                    // Point at the first node of the child's cluster.
                    writeln!(
                        f,
                        "  n{}_{} -> n{}_0 [lhead=cluster_{}, label=\"{}\"];",
                        class.id, i, child, child, arg
                    )?;
                }
            }
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    #[test]
    fn dot_contains_clusters_and_edges() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add_expr(&"(f a b)".parse().unwrap());
        let dot = Dot::new(&eg).to_string();
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("label=\"f\""));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add(SymbolLang::leaf("a\"b"));
        let dot = Dot::new(&eg).to_string();
        assert!(dot.contains("a\\\"b"));
    }
}
