//! Graphviz export of e-graphs, for debugging and documentation.

use std::collections::BTreeSet;
use std::fmt;

use crate::{Analysis, EGraph, Id, Language};

/// Renders an e-graph in Graphviz `dot` format via `Display`.
///
/// Each e-class becomes a cluster; e-nodes point at the clusters of their
/// children (mirroring the figures in the paper and the egg docs).
/// [`Dot::with_highlights`] emphasizes a set of classes — the CLI uses it
/// to render the e-classes an explanation's proof path touches
/// (`liar dot --explain`).
///
/// ```
/// use liar_egraph::{Dot, EGraph, SymbolLang};
/// let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
/// eg.add_expr(&"(f a)".parse().unwrap());
/// let dot = Dot::new(&eg).to_string();
/// assert!(dot.starts_with("digraph egraph"));
/// ```
pub struct Dot<'a, L: Language, A: Analysis<L>> {
    egraph: &'a EGraph<L, A>,
    highlights: BTreeSet<Id>,
}

impl<'a, L: Language, A: Analysis<L>> Dot<'a, L, A> {
    /// Wrap an e-graph for rendering.
    pub fn new(egraph: &'a EGraph<L, A>) -> Self {
        Dot {
            egraph,
            highlights: BTreeSet::new(),
        }
    }

    /// Emphasize the given e-classes (ids are canonicalized): their
    /// clusters render bold red, and edges between two highlighted
    /// clusters are drawn red — together, the certificate path of an
    /// explanation.
    pub fn with_highlights(mut self, classes: impl IntoIterator<Item = Id>) -> Self {
        self.highlights = classes.into_iter().map(|id| self.egraph.find(id)).collect();
        self
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl<L: Language, A: Analysis<L>> fmt::Display for Dot<'_, L, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "digraph egraph {{")?;
        writeln!(f, "  compound=true; clusterrank=local;")?;
        for class in self.egraph.classes_sorted() {
            let lit = self.highlights.contains(&class.id);
            writeln!(f, "  subgraph cluster_{} {{", class.id)?;
            if lit {
                writeln!(f, "    style=bold; color=red; label=\"e{} *\";", class.id)?;
            } else {
                writeln!(f, "    style=dotted; label=\"e{}\";", class.id)?;
            }
            for (i, node) in class.iter().enumerate() {
                writeln!(
                    f,
                    "    n{}_{} [label=\"{}\"];",
                    class.id,
                    i,
                    escape(&node.display_op())
                )?;
            }
            writeln!(f, "  }}")?;
        }
        for class in self.egraph.classes_sorted() {
            let from_lit = self.highlights.contains(&class.id);
            for (i, node) in class.iter().enumerate() {
                for (arg, child) in node.children().iter().enumerate() {
                    let child = self.egraph.find(*child);
                    let attrs = if from_lit && self.highlights.contains(&child) {
                        ", color=red"
                    } else {
                        ""
                    };
                    // Point at the first node of the child's cluster.
                    writeln!(
                        f,
                        "  n{}_{} -> n{}_0 [lhead=cluster_{}, label=\"{}\"{}];",
                        class.id, i, child, child, arg, attrs
                    )?;
                }
            }
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    #[test]
    fn dot_contains_clusters_and_edges() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add_expr(&"(f a b)".parse().unwrap());
        let dot = Dot::new(&eg).to_string();
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("label=\"f\""));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add(SymbolLang::leaf("a\"b"));
        let dot = Dot::new(&eg).to_string();
        assert!(dot.contains("a\\\"b"));
    }

    /// Snapshot: the exact render of a tiny highlighted e-graph, pinning
    /// the `--explain` output format (update deliberately when the format
    /// changes).
    #[test]
    fn highlight_snapshot() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let a = eg.add(SymbolLang::leaf("a"));
        eg.add(SymbolLang::new("f", vec![a]));
        let f = eg.lookup_expr(&"(f a)".parse().unwrap()).unwrap();
        let dot = Dot::new(&eg).with_highlights([a, f]).to_string();
        let expected = "\
digraph egraph {
  compound=true; clusterrank=local;
  subgraph cluster_0 {
    style=bold; color=red; label=\"e0 *\";
    n0_0 [label=\"a\"];
  }
  subgraph cluster_1 {
    style=bold; color=red; label=\"e1 *\";
    n1_0 [label=\"f\"];
  }
  n1_0 -> n0_0 [lhead=cluster_0, label=\"0\", color=red];
}
";
        assert_eq!(dot, expected);
    }

    #[test]
    fn unhighlighted_edges_stay_plain() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let a = eg.add(SymbolLang::leaf("a"));
        eg.add(SymbolLang::new("f", vec![a]));
        eg.add(SymbolLang::new("g", vec![a]));
        let dot = Dot::new(&eg).with_highlights([a]).to_string();
        // Only the `a` cluster is bold; no edge connects two highlighted
        // clusters, so no edge is red.
        assert_eq!(dot.matches("style=bold").count(), 1);
        assert!(!dot.contains("color=red]"));
    }
}
