//! Rule scheduling: bounding how many matches each rule may contribute per
//! iteration.
//!
//! The LIAR intro rules (`a → fst (tuple a b)` and friends) match huge
//! numbers of classes; the paper runs them under a wall-clock budget, and
//! practical engines (egg) additionally rate-limit individual rules. The
//! [`BackoffScheduler`] reproduces egg's exponential-backoff policy.

/// Decides, per iteration and per rule, how many substitutions a rule may
/// produce (`None` = the rule is banned this iteration), and observes how
/// many it did produce.
///
/// Budgets are enforced *outside* the matcher: the engine hands each
/// e-matching VM invocation the rule's remaining budget and truncates the
/// (deduplicated) per-class substitution list, so a scheduler observes the
/// same match counts whether rules run on the compiled VM, the legacy
/// oracle matcher, or a custom searcher — and whether the search phase is
/// serial or parallel. Ban decisions therefore fire at identical
/// `(iteration, rule)` points across all engines.
pub trait Scheduler {
    /// Maximum number of substitutions rule `rule_idx` may produce during
    /// `iteration`, or `None` when banned.
    fn match_limit(&mut self, iteration: usize, rule_idx: usize, rule_name: &str) -> Option<usize>;

    /// Record that the rule produced `n_matches` substitutions.
    fn record(&mut self, iteration: usize, rule_idx: usize, n_matches: usize);
}

/// No limits: every rule applies every match, every iteration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimpleScheduler;

impl Scheduler for SimpleScheduler {
    fn match_limit(
        &mut self,
        _iteration: usize,
        _rule_idx: usize,
        _rule_name: &str,
    ) -> Option<usize> {
        Some(usize::MAX)
    }

    fn record(&mut self, _iteration: usize, _rule_idx: usize, _n_matches: usize) {}
}

#[derive(Debug, Clone)]
struct RuleStats {
    match_limit: usize,
    ban_length: usize,
    times_banned: usize,
    banned_until: usize,
}

/// Exponential-backoff scheduler in the style of egg.
///
/// Each rule starts with a per-iteration match budget; a rule that exceeds
/// it is banned for `ban_length` iterations, and each subsequent ban doubles
/// both the budget and the ban length. This keeps explosive rules (the
/// intro rules) from starving the rest of the rule set while still letting
/// them run.
#[derive(Debug, Clone)]
pub struct BackoffScheduler {
    default_limit: usize,
    default_ban: usize,
    stats: Vec<RuleStats>,
    overrides: Vec<(String, usize)>,
}

impl Default for BackoffScheduler {
    fn default() -> Self {
        BackoffScheduler::new(1000, 2)
    }
}

impl BackoffScheduler {
    /// A scheduler with the given initial per-rule match budget and ban
    /// length (in iterations).
    pub fn new(default_limit: usize, default_ban: usize) -> Self {
        BackoffScheduler {
            default_limit,
            default_ban,
            stats: Vec::new(),
            overrides: Vec::new(),
        }
    }

    /// Override the initial match budget for a specific rule name.
    pub fn with_rule_limit(mut self, name: impl Into<String>, limit: usize) -> Self {
        self.overrides.push((name.into(), limit));
        self
    }

    fn stats_for(&mut self, rule_idx: usize, rule_name: &str) -> &mut RuleStats {
        while self.stats.len() <= rule_idx {
            self.stats.push(RuleStats {
                match_limit: self.default_limit,
                ban_length: self.default_ban,
                times_banned: 0,
                banned_until: 0,
            });
        }
        if let Some((_, limit)) = self
            .overrides
            .iter()
            .find(|(n, _)| n == rule_name)
            .cloned()
        {
            // Apply the override once (while untouched).
            if self.stats[rule_idx].times_banned == 0 {
                self.stats[rule_idx].match_limit =
                    limit << self.stats[rule_idx].times_banned;
            }
        }
        &mut self.stats[rule_idx]
    }
}

impl Scheduler for BackoffScheduler {
    fn match_limit(&mut self, iteration: usize, rule_idx: usize, rule_name: &str) -> Option<usize> {
        let stats = self.stats_for(rule_idx, rule_name);
        if iteration < stats.banned_until {
            None
        } else {
            Some(stats.match_limit << stats.times_banned)
        }
    }

    fn record(&mut self, iteration: usize, rule_idx: usize, n_matches: usize) {
        let stats = &mut self.stats[rule_idx];
        let threshold = stats.match_limit << stats.times_banned;
        if n_matches >= threshold {
            let ban = stats.ban_length << stats.times_banned;
            stats.times_banned += 1;
            stats.banned_until = iteration + 1 + ban;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_never_bans() {
        let mut s = SimpleScheduler;
        assert_eq!(s.match_limit(0, 0, "r"), Some(usize::MAX));
        s.record(0, 0, 1_000_000);
        assert_eq!(s.match_limit(1, 0, "r"), Some(usize::MAX));
    }

    #[test]
    fn backoff_bans_and_doubles() {
        let mut s = BackoffScheduler::new(10, 2);
        assert_eq!(s.match_limit(0, 0, "r"), Some(10));
        s.record(0, 0, 10); // hits the limit -> ban for 2 iterations
        assert_eq!(s.match_limit(1, 0, "r"), None);
        assert_eq!(s.match_limit(2, 0, "r"), None);
        // Back with a doubled budget.
        assert_eq!(s.match_limit(3, 0, "r"), Some(20));
        s.record(3, 0, 20); // ban doubles too (4 iterations)
        assert_eq!(s.match_limit(4, 0, "r"), None);
        assert_eq!(s.match_limit(7, 0, "r"), None);
        assert_eq!(s.match_limit(8, 0, "r"), Some(40));
    }

    #[test]
    fn under_limit_never_bans() {
        let mut s = BackoffScheduler::new(10, 2);
        for it in 0..50 {
            assert!(s.match_limit(it, 0, "r").is_some());
            s.record(it, 0, 3);
        }
    }

    #[test]
    fn per_rule_override() {
        let mut s = BackoffScheduler::new(1000, 2).with_rule_limit("explosive", 5);
        assert_eq!(s.match_limit(0, 0, "explosive"), Some(5));
        assert_eq!(s.match_limit(0, 1, "tame"), Some(1000));
    }
}
