//! The e-graph data structure: hash-consed nodes, union-find classes,
//! deferred congruence-closure rebuilding.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::attribution::Attribution;
use crate::delta::DeltaIndex;
use crate::explain::{Explain, Explanation, Justification};
use crate::pattern::Subst;
use crate::unionfind::UnionFind;
use crate::{Analysis, Id, Language, RecExpr};

/// An equivalence class of e-nodes.
#[derive(Debug, Clone)]
pub struct EClass<L, D> {
    /// The canonical id of this class (at the time of the last rebuild).
    pub id: Id,
    /// The e-nodes in this class, with canonicalized children after a
    /// rebuild.
    pub nodes: Vec<L>,
    /// The analysis fact for this class.
    pub data: D,
    /// Back-pointers: every (parent node, parent class) that has this class
    /// as a child. Used by rebuilding and analysis propagation.
    pub(crate) parents: Vec<(L, Id)>,
}

impl<L: Language, D> EClass<L, D> {
    /// Iterate over the e-nodes in this class.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &L> {
        self.nodes.iter()
    }

    /// Number of e-nodes in this class.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the class has no nodes (cannot happen for classes created
    /// through [`EGraph::add`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// An e-graph parameterized over a [`Language`] and an [`Analysis`].
///
/// Mirrors the design of egg: additions hash-cons into `memo`, unions are
/// recorded in a union-find and invalidate congruence, and an explicit
/// [`rebuild`](EGraph::rebuild) restores the invariants in a batch
/// (deferred rebuilding is what makes batched equality saturation fast).
pub struct EGraph<L: Language, A: Analysis<L>> {
    /// The analysis instance (may carry configuration).
    pub analysis: A,
    unionfind: UnionFind,
    memo: HashMap<L, Id>,
    classes: HashMap<Id, EClass<L, A::Data>>,
    /// The operator index: [`Language::op_key`] → ascending ids of the
    /// classes containing at least one e-node with that operator. Kept
    /// incrementally by [`add`](EGraph::add) and recomputed wholesale at
    /// the end of every [`rebuild`](EGraph::rebuild); exact whenever the
    /// e-graph is clean. Compiled patterns use it to visit only the
    /// classes whose members can possibly match their root operator.
    classes_by_op: HashMap<u64, Vec<Id>>,
    /// The versioned delta index: which classes were created, gained
    /// nodes, or absorbed a merge since each [`rebuild`](EGraph::rebuild)
    /// (which seals an epoch). Semi-naive searchers
    /// ([`seminaive`](crate::seminaive)) restrict their scans to this
    /// frontier.
    delta: DeltaIndex,
    /// Parent nodes whose children were just unioned and need
    /// re-canonicalization.
    pending: Vec<(L, Id)>,
    /// Nodes whose analysis data may be stale.
    analysis_pending: Vec<(L, Id)>,
    clean: bool,
    /// The explanation forest, when proof production is enabled (see
    /// [`with_explanations_enabled`](EGraph::with_explanations_enabled)).
    /// `None` is the default fast path: it pays nothing.
    explain: Option<Explain<L>>,
    /// The rule currently applying (name + substitution): unions performed
    /// while this is set are justified by that rule in the explanation
    /// forest. Set by [`Rewrite::apply`](crate::Rewrite::apply).
    rule_context: Option<(Arc<str>, Arc<Subst<L>>)>,
    /// The growth-attribution ledger, when enabled (see
    /// [`with_attribution_enabled`](EGraph::with_attribution_enabled)).
    /// `None` is the default fast path: each recording site pays one
    /// branch.
    attribution: Option<Attribution>,
}

impl<L: Language, A: Analysis<L> + Default> Default for EGraph<L, A> {
    fn default() -> Self {
        Self::new(A::default())
    }
}

impl<L: Language, A: Analysis<L>> fmt::Debug for EGraph<L, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EGraph")
            .field("classes", &self.classes.len())
            .field("nodes", &self.memo.len())
            .field("ids", &self.unionfind.len())
            .field("clean", &self.clean)
            .finish()
    }
}

impl<L: Language, A: Analysis<L>> EGraph<L, A> {
    /// Create an empty e-graph with the given analysis.
    pub fn new(analysis: A) -> Self {
        EGraph {
            analysis,
            unionfind: UnionFind::default(),
            memo: HashMap::new(),
            classes: HashMap::new(),
            classes_by_op: HashMap::new(),
            delta: DeltaIndex::default(),
            pending: Vec::new(),
            analysis_pending: Vec::new(),
            clean: true,
            explain: None,
            rule_context: None,
            attribution: None,
        }
    }

    /// Enable proof production: every union is recorded in an explanation
    /// forest, and [`explain_equivalence`](EGraph::explain_equivalence)
    /// can later produce a replayable [`Explanation`] for any pair of
    /// equal terms.
    ///
    /// Must be called on an **empty** e-graph (every id needs a
    /// provenance record). With explanations enabled, [`add`](EGraph::add)
    /// returns *precise* ids — an id that denotes exactly the node that was
    /// added, which may not be the canonical class id; call
    /// [`find`](EGraph::find) when canonicality matters.
    ///
    /// # Panics
    ///
    /// Panics if the e-graph already contains nodes.
    pub fn with_explanations_enabled(mut self) -> Self {
        assert!(
            self.is_empty(),
            "explanations must be enabled before any node is added"
        );
        self.explain = Some(Explain::default());
        self
    }

    /// True when this e-graph records explanations.
    pub fn are_explanations_enabled(&self) -> bool {
        self.explain.is_some()
    }

    /// Set (or clear) the rule context: while set, every union is
    /// justified by the named rule in the explanation forest. The
    /// saturation engine calls this around each rule application; custom
    /// drivers performing explained unions should do the same. No-op
    /// semantics-wise when explanations are disabled.
    pub fn set_rule_context(&mut self, context: Option<(Arc<str>, Arc<Subst<L>>)>) {
        self.rule_context = context;
    }

    /// Enable growth attribution: every class creation, e-node add and
    /// merge is charged to its originating rule (or a builtin origin) in
    /// an [`Attribution`] ledger whose per-origin counts sum exactly to
    /// the e-graph's node/class totals — see the
    /// [`attribution`](crate::attribution) module docs for the charging
    /// rules and the conservation identities.
    ///
    /// Like explanations, attribution is strictly observational (the
    /// e-graph's contents, reports, solutions and proofs are bit-identical
    /// with it on or off, serial or parallel) and the `None` default pays
    /// one branch per recording site.
    ///
    /// # Panics
    ///
    /// Panics if the e-graph already contains nodes — the conservation
    /// invariant needs the whole history.
    pub fn with_attribution_enabled(mut self) -> Self {
        assert!(
            self.is_empty(),
            "attribution must be enabled before any node is added"
        );
        self.attribution = Some(Attribution::default());
        self
    }

    /// True when this e-graph charges growth to rules.
    pub fn is_attribution_enabled(&self) -> bool {
        self.attribution.is_some()
    }

    /// The growth-attribution ledger, when enabled.
    pub fn attribution(&self) -> Option<&Attribution> {
        self.attribution.as_ref()
    }

    /// Set (or clear) the attribution charging origin — the rule name
    /// growth is charged to while it applies. Set by
    /// [`Rewrite::apply`](crate::Rewrite::apply) around each rule's batch;
    /// a no-op when attribution is disabled.
    pub fn set_attribution_origin(&mut self, origin: Option<Arc<str>>) {
        if let Some(attr) = &mut self.attribution {
            attr.set_origin(origin);
        }
    }

    /// The e-classes (ascending id) containing at least one e-node whose
    /// [`Language::op_key`] equals `key` — the e-matching VM's entry point
    /// for operator-rooted patterns.
    ///
    /// Exact on a clean e-graph (including classes freshly created by
    /// [`add`](EGraph::add)); may contain stale ids while unions are
    /// pending, so index-driven searchers fall back to a full scan when
    /// [`is_clean`](EGraph::is_clean) is false.
    pub fn classes_with_op(&self, key: u64) -> &[Id] {
        self.classes_by_op.get(&key).map_or(&[], |ids| ids.as_slice())
    }

    /// The delta index version: incremented by every
    /// [`rebuild`](EGraph::rebuild), which seals the changes recorded
    /// since the previous one into an epoch. See [`DeltaIndex::version`].
    pub fn delta_version(&self) -> u64 {
        self.delta.version()
    }

    /// Every e-class that changed (was created, gained e-nodes, absorbed
    /// a merged class, or had its analysis data refined) at delta epoch
    /// `>= since`, including the
    /// not-yet-sealed changes — canonicalized, sorted, deduplicated. See
    /// [`DeltaIndex::dirty_since`].
    pub fn dirty_since(&self, since: u64) -> Vec<Id> {
        self.delta.dirty_since(since, |id| self.unionfind.find(id))
    }

    /// The underlying [`DeltaIndex`] (read-only; for snapshotting).
    pub fn delta(&self) -> &DeltaIndex {
        &self.delta
    }

    /// Replace the delta index (for snapshot restore). The index must
    /// describe this e-graph: its recorded ids are interpreted against
    /// this graph's union-find.
    pub fn set_delta(&mut self, delta: DeltaIndex) {
        self.delta = delta;
    }

    /// The hash-cons memo (for snapshot serialization). With explanations
    /// enabled the stored ids are *precise* creation ids; otherwise they
    /// are canonical as of the last rebuild.
    pub(crate) fn snapshot_memo(&self) -> &HashMap<L, Id> {
        &self.memo
    }

    /// The class table (for snapshot serialization).
    pub(crate) fn snapshot_classes(&self) -> &HashMap<Id, EClass<L, A::Data>> {
        &self.classes
    }

    /// The union-find (for snapshot serialization).
    pub(crate) fn snapshot_unionfind(&self) -> &UnionFind {
        &self.unionfind
    }

    /// The explanation forest, when enabled (for snapshot serialization).
    pub(crate) fn snapshot_explain(&self) -> Option<&Explain<L>> {
        self.explain.as_ref()
    }

    /// Assemble an e-graph from snapshot-restored parts. The caller
    /// (snapshot restore) has validated that `classes` keys are canonical
    /// in `unionfind` and that every child id is in range; this
    /// constructor recomputes the operator index exactly the way
    /// [`rebuild`](EGraph::rebuild) does (ascending-id iteration keeps
    /// buckets sorted) and marks the graph clean.
    pub(crate) fn from_snapshot_parts(
        analysis: A,
        unionfind: UnionFind,
        memo: HashMap<L, Id>,
        classes: HashMap<Id, EClass<L, A::Data>>,
        delta: DeltaIndex,
        explain: Option<Explain<L>>,
    ) -> Self {
        let mut classes_by_op: HashMap<u64, Vec<Id>> = HashMap::new();
        let mut ids: Vec<Id> = classes.keys().copied().collect();
        ids.sort();
        for id in ids {
            for node in &classes[&id].nodes {
                let bucket = classes_by_op.entry(node.op_key()).or_default();
                if bucket.last() != Some(&id) {
                    bucket.push(id);
                }
            }
        }
        EGraph {
            analysis,
            unionfind,
            memo,
            classes,
            classes_by_op,
            delta,
            pending: Vec::new(),
            analysis_pending: Vec::new(),
            clean: true,
            explain,
            rule_context: None,
            // Snapshots carry no ledger: attribution counts from empty
            // (the conservation identities need the whole history), so a
            // restored graph starts un-attributed.
            attribution: None,
        }
    }

    /// The canonical ids of every class holding a parent e-node of `id`'s
    /// class (sorted, deduplicated). An over-approximation: parent
    /// back-pointers are never pruned, so a listed class may no longer
    /// contain a node with this class as a child — which is exactly the
    /// sound direction for frontier up-closure in
    /// [`seminaive`](crate::seminaive) search.
    pub fn parent_classes(&self, id: Id) -> Vec<Id> {
        let mut out: Vec<Id> = self
            .class(id)
            .parents
            .iter()
            .map(|(_, p)| self.find(*p))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of e-classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of distinct e-nodes (exact after a rebuild).
    pub fn num_nodes(&self) -> usize {
        self.classes.values().map(|c| c.nodes.len()).sum()
    }

    /// Entries in the hash-cons memo — a growth gauge for observability
    /// (tracks allocation pressure; can exceed [`num_nodes`](EGraph::num_nodes)
    /// between rebuilds while stale keys await congruence repair).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// True when congruence and analysis invariants hold (no unions since
    /// the last [`rebuild`](EGraph::rebuild)).
    pub fn is_clean(&self) -> bool {
        self.clean
    }

    /// True when nothing has ever been added.
    pub fn is_empty(&self) -> bool {
        self.unionfind.is_empty()
    }

    /// Canonicalize an e-class id.
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find(id)
    }

    /// Canonicalize an e-class id with path compression.
    pub fn find_mut(&mut self, id: Id) -> Id {
        self.unionfind.find_mut(id)
    }

    /// Iterate over the e-classes (unspecified order).
    pub fn classes(&self) -> impl Iterator<Item = &EClass<L, A::Data>> {
        self.classes.values()
    }

    /// The e-classes sorted by id — use this wherever determinism matters
    /// (searchers, reports).
    pub fn classes_sorted(&self) -> Vec<&EClass<L, A::Data>> {
        let mut cs: Vec<_> = self.classes.values().collect();
        cs.sort_by_key(|c| c.id);
        cs
    }

    /// Ids of all e-classes, sorted.
    pub fn class_ids(&self) -> Vec<Id> {
        let mut ids: Vec<_> = self.classes.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Access a class by (possibly stale) id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued by this e-graph.
    pub fn class(&self, id: Id) -> &EClass<L, A::Data> {
        let id = self.find(id);
        self.classes
            .get(&id)
            .unwrap_or_else(|| panic!("no class for id {id}"))
    }

    /// The analysis fact of a class.
    pub fn data(&self, id: Id) -> &A::Data {
        &self.class(id).data
    }

    fn canonicalize(&self, node: L) -> L {
        node.map_children(|c| self.find(c))
    }

    /// Look up the e-class of an e-node without adding it.
    pub fn lookup(&self, node: L) -> Option<Id> {
        let node = self.canonicalize(node);
        self.memo.get(&node).map(|&id| self.find(id))
    }

    /// Look up the e-class of a whole expression without adding it.
    pub fn lookup_expr(&self, expr: &RecExpr<L>) -> Option<Id> {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let node = node.clone().map_children(|c| ids[c.index()]);
            ids.push(self.lookup(node)?);
        }
        ids.last().copied()
    }

    /// Add an e-node (children must be valid ids), returning its class.
    ///
    /// With explanations enabled the returned id is *precise* — it denotes
    /// exactly the node that was added (possibly a fresh non-canonical id
    /// linked to the existing class by a congruence edge); call
    /// [`find`](EGraph::find) when the canonical id is needed.
    pub fn add(&mut self, node: L) -> Id {
        if self.explain.is_some() {
            return self.add_explained(node);
        }
        let node = self.canonicalize(node);
        if let Some(&existing) = self.memo.get(&node) {
            return self.find(existing);
        }
        let id = self.unionfind.make_set();
        let data = A::make(self, &node);
        for child in node.children() {
            let child = self.find(*child);
            self.classes
                .get_mut(&child)
                .expect("child class must exist")
                .parents
                .push((node.clone(), id));
        }
        self.classes.insert(
            id,
            EClass {
                id,
                nodes: vec![node.clone()],
                data,
                parents: Vec::new(),
            },
        );
        // Fresh ids are issued monotonically, so pushing keeps every
        // index bucket sorted ascending.
        self.classes_by_op.entry(node.op_key()).or_default().push(id);
        self.memo.insert(node, id);
        self.delta.record(id);
        if let Some(attr) = &mut self.attribution {
            attr.record_add();
        }
        A::modify(self, id);
        self.find_mut(id)
    }

    /// [`add`](EGraph::add) with provenance: the forest records the
    /// *original* (uncanonicalized) spelling behind every id, and a node
    /// that hash-conses onto an existing class still gets a fresh id for
    /// its exact spelling, linked by a congruence edge — which is what
    /// keeps rule edges' endpoints exact terms.
    fn add_explained(&mut self, original: L) -> Id {
        let cnode = self.canonicalize(original.clone());
        if let Some(&existing) = self.memo.get(&cnode) {
            let explain = self.explain.as_ref().expect("explanations enabled");
            if let Some(id) = explain.uncanon(&original) {
                return id;
            }
            // Congruent spelling of an existing class: issue a precise id
            // for it. No class is created (the canonical class already has
            // the canonical node), so congruence invariants are untouched
            // and `clean` stays as-is.
            let canonical = self.unionfind.find(existing);
            let new_id = self.unionfind.make_set();
            let explain = self.explain.as_mut().expect("explanations enabled");
            explain.add_node(new_id, original.clone());
            explain.union(new_id, existing, Justification::Congruence, true);
            explain.record_uncanon(original, new_id);
            self.unionfind.union_roots(canonical, new_id);
            return new_id;
        }
        let id = self.unionfind.make_set();
        {
            let explain = self.explain.as_mut().expect("explanations enabled");
            explain.add_node(id, original.clone());
            explain.record_uncanon(original, id);
        }
        let data = A::make(self, &cnode);
        for child in cnode.children() {
            let child = self.find(*child);
            self.classes
                .get_mut(&child)
                .expect("child class must exist")
                .parents
                .push((cnode.clone(), id));
        }
        self.classes.insert(
            id,
            EClass {
                id,
                nodes: vec![cnode.clone()],
                data,
                parents: Vec::new(),
            },
        );
        self.classes_by_op.entry(cnode.op_key()).or_default().push(id);
        self.memo.insert(cnode, id);
        self.delta.record(id);
        // The congruent-spelling path above creates no class and no node
        // (only a precise id), so it charges nothing; this fresh path
        // mirrors the unexplained `add`.
        if let Some(attr) = &mut self.attribution {
            attr.record_add();
        }
        A::modify(self, id);
        id
    }

    /// Add every node of `expr`, returning the root's class.
    ///
    /// # Panics
    ///
    /// Panics if `expr` is empty.
    pub fn add_expr(&mut self, expr: &RecExpr<L>) -> Id {
        assert!(!expr.is_empty(), "cannot add an empty expression");
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let node = node.clone().map_children(|c| ids[c.index()]);
            ids.push(self.add(node));
        }
        *ids.last().unwrap()
    }

    /// Union two e-classes, returning the canonical id and whether anything
    /// changed. Invalidates congruence until the next
    /// [`rebuild`](EGraph::rebuild).
    ///
    /// With explanations enabled, the union is recorded in the forest: it
    /// is justified by the active [rule context](EGraph::set_rule_context)
    /// when one is set, and as a [`Justification::Direct`] assertion
    /// otherwise (direct assertions fail
    /// [`Explanation::check`] — derive unions through rules when proofs
    /// matter). The forest edge connects the *given* ids `a` and `b`, so
    /// explained callers should pass the precise ids of the two terms the
    /// union equates.
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        self.union_justified(a, b, false)
    }

    /// [`union`](EGraph::union) with an explicit congruence marker (used
    /// by [`rebuild`](EGraph::rebuild)'s repair loop).
    fn union_justified(&mut self, a0: Id, b0: Id, congruence: bool) -> (Id, bool) {
        let a = self.find_mut(a0);
        let b = self.find_mut(b0);
        if a == b {
            return (a, false);
        }
        if let Some(explain) = &mut self.explain {
            let justification = if congruence {
                Justification::Congruence
            } else if let Some((name, subst)) = &self.rule_context {
                Justification::Rule {
                    name: Arc::clone(name),
                    subst: Arc::clone(subst),
                }
            } else {
                Justification::Direct
            };
            explain.union(a0, b0, justification, true);
        }
        if let Some(attr) = &mut self.attribution {
            attr.record_merge(congruence);
        }
        self.clean = false;
        // Keep the class with more members as the winner to move less data.
        let (winner, loser) = {
            let ca = &self.classes[&a];
            let cb = &self.classes[&b];
            if ca.nodes.len() + ca.parents.len() >= cb.nodes.len() + cb.parents.len() {
                (a, b)
            } else {
                (b, a)
            }
        };
        self.unionfind.union_roots(winner, loser);
        // The winner's contents change (it absorbs the loser's nodes):
        // that is delta-index dirt. The loser's old id canonicalizes to
        // the winner, so one record covers both.
        self.delta.record(winner);
        let loser_class = self.classes.remove(&loser).expect("loser class exists");

        // Parents of the loser now refer to a stale id; they must be
        // re-canonicalized and re-hashed.
        self.pending.extend(loser_class.parents.iter().cloned());

        let did = {
            let winner_class = self.classes.get_mut(&winner).expect("winner class exists");
            let did = self.analysis.merge(&mut winner_class.data, loser_class.data);
            winner_class.nodes.extend(loser_class.nodes);
            if did.0 {
                // The winner's own fact changed: its pre-existing parents
                // must be re-analyzed.
                self.analysis_pending
                    .extend(winner_class.parents.iter().cloned());
            }
            if did.1 {
                self.analysis_pending
                    .extend(loser_class.parents.iter().cloned());
            }
            let winner_class = self.classes.get_mut(&winner).expect("winner class exists");
            winner_class.parents.extend(loser_class.parents);
            did
        };
        let _ = did;
        A::modify(self, winner);
        (winner, true)
    }

    /// Union the classes of two expressions (adding them if necessary) —
    /// convenience for tests and rule bootstrapping.
    pub fn union_exprs(&mut self, a: &RecExpr<L>, b: &RecExpr<L>) -> Id {
        let a = self.add_expr(a);
        let b = self.add_expr(b);
        self.union(a, b).0
    }

    /// Restore congruence and analysis invariants after unions.
    ///
    /// Returns the number of unions performed during the repair.
    pub fn rebuild(&mut self) -> usize {
        let mut n_unions = 0;
        while !self.pending.is_empty() || !self.analysis_pending.is_empty() {
            while let Some((node, enode_id)) = self.pending.pop() {
                let node = self.canonicalize(node);
                let class = self.find_mut(enode_id);
                // With explanations on, memo values stay *precise* creation
                // ids (find() canonicalizes on read), so future congruence
                // edges connect exact terms.
                let memo_id = if self.explain.is_some() { enode_id } else { class };
                if let Some(old) = self.memo.insert(node.clone(), memo_id) {
                    let (_, changed) = self.union_justified(old, enode_id, true);
                    if changed {
                        n_unions += 1;
                    }
                }
                // This parent's node list is being rewritten in place (a
                // child id changed): the class is dirty for delta-driven
                // searchers even when no congruence union fires.
                self.delta.record(class);
                self.analysis_pending.push((node, class));
            }
            while let Some((node, class)) = self.analysis_pending.pop() {
                let class = self.find_mut(class);
                let node = self.canonicalize(node);
                let data = A::make(self, &node);
                let cdata = &mut self.classes.get_mut(&class).expect("class exists").data;
                let did = self.analysis.merge(cdata, data);
                if did.0 {
                    // Analysis data is part of the class state delta-driven
                    // searchers may gate on (e.g. "has a known extent"), so
                    // a refinement is delta-index dirt even when the node
                    // list is untouched.
                    self.delta.record(class);
                    let parents = self.classes[&class].parents.clone();
                    self.analysis_pending.extend(parents);
                    A::modify(self, class);
                }
            }
        }
        self.rebuild_classes();
        let uf = &self.unionfind;
        self.delta.seal(|id| uf.find(id));
        self.clean = true;
        n_unions
    }

    /// Canonicalize and deduplicate every class's node list, and prune
    /// stale memo entries. Called at the end of [`rebuild`](EGraph::rebuild)
    /// so that [`num_nodes`](EGraph::num_nodes) counts *unique* e-nodes, the
    /// quantity the paper reports.
    fn rebuild_classes(&mut self) {
        let explain_off = self.explain.is_none();
        let uf = &self.unionfind;
        let mut retired = 0usize;
        for class in self.classes.values_mut() {
            for node in &mut class.nodes {
                for c in node.children_mut() {
                    *c = uf.find(*c);
                }
            }
            let before = class.nodes.len();
            class.nodes.sort();
            class.nodes.dedup();
            // The only place e-nodes ever disappear: spellings that became
            // equal under congruence collapse here. The ledger's node
            // identity (created − retired == num_nodes) depends on it.
            retired += before - class.nodes.len();

            for (pnode, pclass) in &mut class.parents {
                for c in pnode.children_mut() {
                    *c = uf.find(*c);
                }
                // With explanations on, parent entries keep the parent
                // e-node's *creation* id — the precise term a future
                // congruence edge must connect — at the cost of fewer
                // dedup hits below. The fast path canonicalizes as before.
                if explain_off {
                    *pclass = uf.find(*pclass);
                }
            }
            class.parents.sort();
            class.parents.dedup();
        }
        if let Some(attr) = &mut self.attribution {
            attr.record_retired(retired);
        }
        // Drop memo entries whose key is no longer canonical.
        let stale: Vec<L> = self
            .memo
            .keys()
            .filter(|n| n.children().iter().any(|c| !uf.is_canonical(*c)))
            .cloned()
            .collect();
        for key in stale {
            let id = self.memo.remove(&key).expect("key present");
            let node = key.map_children(|c| uf.find(c));
            // Keep the precise creation id under explanations (find() on
            // read canonicalizes); canonicalize eagerly on the fast path.
            let id = if explain_off { uf.find(id) } else { id };
            self.memo.entry(node).or_insert(id);
        }

        // Recompute the operator index from the (now canonical) classes.
        // Iterating classes in ascending-id order keeps every bucket
        // sorted, which index-driven searchers rely on for determinism.
        self.classes_by_op.clear();
        let mut ids: Vec<Id> = self.classes.keys().copied().collect();
        ids.sort();
        for id in ids {
            for node in &self.classes[&id].nodes {
                let bucket = self.classes_by_op.entry(node.op_key()).or_default();
                if bucket.last() != Some(&id) {
                    bucket.push(id);
                }
            }
        }
        // Post-rebuild staleness guard: every indexed id must be canonical
        // and every bucket strictly sorted (ascending-id iteration plus the
        // `last()` dedup above guarantee this *only* because `ids` was
        // sorted — this assert keeps that load-bearing detail honest).
        debug_assert!(
            self.classes_by_op.values().all(|bucket| {
                bucket.windows(2).all(|w| w[0] < w[1])
                    && bucket.iter().all(|id| self.unionfind.is_canonical(*id))
            }),
            "operator index holds stale or unsorted ids after rebuild"
        );
    }

    /// Produce a replayable proof that `a` and `b` are equal terms: a
    /// chain of [`ProofStep`](crate::ProofStep)s rewriting `a` into `b`,
    /// each justified by a named rule at an explicit position (see
    /// [`crate::explain`]). Validate it with
    /// [`Explanation::check`].
    ///
    /// Takes `&mut self` because the two terms are (re-)added to obtain
    /// precise ids; this never changes any e-class.
    ///
    /// # Panics
    ///
    /// Panics when explanations are disabled or the terms are not in the
    /// same e-class — use
    /// [`try_explain_equivalence`](EGraph::try_explain_equivalence) for an
    /// `Option` instead.
    pub fn explain_equivalence(&mut self, a: &RecExpr<L>, b: &RecExpr<L>) -> Explanation<L> {
        self.try_explain_equivalence(a, b)
            .expect("explain_equivalence: explanations disabled or terms not equivalent")
    }

    /// [`explain_equivalence`](EGraph::explain_equivalence), returning
    /// `None` when explanations are disabled, either term is absent, or
    /// the terms are not in the same e-class.
    pub fn try_explain_equivalence(
        &mut self,
        a: &RecExpr<L>,
        b: &RecExpr<L>,
    ) -> Option<Explanation<L>> {
        self.explain.as_ref()?;
        // Probe without mutating: both terms must already be (semantically)
        // present and equal.
        let (ca, cb) = (self.lookup_expr(a)?, self.lookup_expr(b)?);
        if ca != cb {
            return None;
        }
        // Re-adding yields the precise ids denoting exactly these
        // spellings (pure bookkeeping: no class changes).
        let ia = self.add_expr(a);
        let ib = self.add_expr(b);
        Some(self.explain.as_ref().expect("checked above").explain(ia, ib))
    }

    /// Check internal invariants (used by tests; O(nodes)).
    ///
    /// # Panics
    ///
    /// Panics if a congruence or hash-cons invariant is violated. Only call
    /// on a clean (rebuilt) e-graph.
    pub fn assert_invariants(&self) {
        assert!(self.clean, "assert_invariants requires a rebuilt egraph");
        for (id, class) in &self.classes {
            assert_eq!(*id, self.find(*id), "class key {id} not canonical");
            assert_eq!(class.id, *id, "class id field mismatch");
            for node in &class.nodes {
                let canon = self.canonicalize(node.clone());
                assert_eq!(&canon, node, "node {node:?} in class {id} not canonical");
                let memo_id = self
                    .memo
                    .get(&canon)
                    .unwrap_or_else(|| panic!("node {node:?} missing from memo"));
                assert_eq!(
                    self.find(*memo_id),
                    *id,
                    "memo maps {node:?} to wrong class"
                );
            }
        }
        for (node, id) in &self.memo {
            let canon = self.canonicalize(node.clone());
            assert_eq!(&canon, node, "memo key {node:?} not canonical");
            let id = self.find(*id);
            assert!(
                self.classes[&id].nodes.contains(node),
                "memo entry {node:?} not in class {id}"
            );
        }
        // Operator-index soundness: every (class, node) pair is reachable
        // through the node's op key, and every indexed id is canonical,
        // sorted and justified by some member node.
        for (id, class) in &self.classes {
            for node in &class.nodes {
                assert!(
                    self.classes_with_op(node.op_key()).contains(id),
                    "class {id} missing from op index for {node:?}"
                );
            }
        }
        for (key, ids) in &self.classes_by_op {
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "index bucket unsorted");
            for id in ids {
                assert!(self.unionfind.is_canonical(*id), "stale id {id} in op index");
                assert!(
                    self.classes[id].nodes.iter().any(|n| n.op_key() == *key),
                    "class {id} indexed under {key} without a matching node"
                );
            }
        }
    }
}

impl<L: Language, A: Analysis<L>> std::ops::Index<Id> for EGraph<L, A> {
    type Output = EClass<L, A::Data>;

    fn index(&self, id: Id) -> &Self::Output {
        self.class(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    type EG = EGraph<SymbolLang, ()>;

    fn leaf(name: &str) -> SymbolLang {
        SymbolLang::leaf(name)
    }

    #[test]
    fn hashconsing_dedupes() {
        let mut eg = EG::default();
        let a1 = eg.add(leaf("a"));
        let a2 = eg.add(leaf("a"));
        assert_eq!(a1, a2);
        assert_eq!(eg.num_classes(), 1);
        assert_eq!(eg.num_nodes(), 1);
    }

    #[test]
    fn union_merges_classes() {
        let mut eg = EG::default();
        let a = eg.add(leaf("a"));
        let b = eg.add(leaf("b"));
        assert_ne!(eg.find(a), eg.find(b));
        let (_, changed) = eg.union(a, b);
        assert!(changed);
        eg.rebuild();
        assert_eq!(eg.find(a), eg.find(b));
        assert_eq!(eg.num_classes(), 1);
        assert_eq!(eg.num_nodes(), 2);
        eg.assert_invariants();
    }

    #[test]
    fn attribution_conserves_through_congruence_repair() {
        // g(f(a)), g(f(b)): one direct union triggers two congruence
        // merges and retires the duplicated f/g spellings. Every count
        // must land in the ledger and sum back to the graph's totals.
        let mut eg = EG::default().with_attribution_enabled();
        let a = eg.add(leaf("a"));
        let b = eg.add(leaf("b"));
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        let fb = eg.add(SymbolLang::new("f", vec![b]));
        let _gfa = eg.add(SymbolLang::new("g", vec![fa]));
        let _gfb = eg.add(SymbolLang::new("g", vec![fb]));
        eg.union(a, b);
        eg.rebuild();
        let attr = eg.attribution().expect("enabled");
        assert_eq!(attr.origin(Attribution::INIT).nodes_created, 6);
        assert_eq!(attr.origin(Attribution::DIRECT).classes_merged, 1);
        assert_eq!(attr.origin(Attribution::CONGRUENCE).classes_merged, 2);
        // f(a)/f(b) and g(f(a))/g(f(b)) collapse to one spelling each.
        assert_eq!(attr.nodes_retired(), 2);
        attr.check(eg.num_nodes(), eg.num_classes()).expect("conserves");
        eg.assert_invariants();
    }

    #[test]
    fn attribution_charges_rules_and_survives_hashcons_hits() {
        let mut eg = EG::default().with_attribution_enabled();
        let id = eg.add_expr(&"(+ a b)".parse().unwrap());
        let rw = crate::Rewrite::from_patterns("comm-add", "(+ ?x ?y)", "(+ ?y ?x)");
        let matches = rw.search(&eg, usize::MAX);
        assert_eq!(rw.apply(&mut eg, &matches), 1);
        eg.rebuild();
        let attr = eg.attribution().expect("enabled");
        // The rule added the flipped node and merged it into the root.
        assert_eq!(attr.origin("comm-add").nodes_created, 1);
        assert_eq!(attr.origin("comm-add").classes_merged, 1);
        attr.check(eg.num_nodes(), eg.num_classes()).expect("conserves");
        // Re-applying only hash-conses: nothing new is charged.
        let before = attr.origin("comm-add");
        let matches = rw.search(&eg, usize::MAX);
        assert_eq!(rw.apply(&mut eg, &matches), 0);
        eg.rebuild();
        let attr = eg.attribution().expect("enabled");
        assert_eq!(attr.origin("comm-add"), before);
        attr.check(eg.num_nodes(), eg.num_classes()).expect("conserves");
        let _ = id;
    }

    #[test]
    #[should_panic(expected = "attribution must be enabled before")]
    fn attribution_on_nonempty_graph_panics() {
        let mut eg = EG::default();
        eg.add(leaf("a"));
        let _ = eg.with_attribution_enabled();
    }

    #[test]
    fn congruence_closure_via_rebuild() {
        // f(a), f(b): unioning a and b must union f(a) and f(b).
        let mut eg = EG::default();
        let a = eg.add(leaf("a"));
        let b = eg.add(leaf("b"));
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        let fb = eg.add(SymbolLang::new("f", vec![b]));
        assert_ne!(eg.find(fa), eg.find(fb));
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(fa), eg.find(fb));
        eg.assert_invariants();
    }

    #[test]
    fn congruence_cascades() {
        // g(f(a)), g(f(b)): one union, two levels of congruence.
        let mut eg = EG::default();
        let a = eg.add(leaf("a"));
        let b = eg.add(leaf("b"));
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        let fb = eg.add(SymbolLang::new("f", vec![b]));
        let gfa = eg.add(SymbolLang::new("g", vec![fa]));
        let gfb = eg.add(SymbolLang::new("g", vec![fb]));
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(gfa), eg.find(gfb));
        eg.assert_invariants();
    }

    #[test]
    fn add_expr_and_lookup_expr() {
        let mut eg = EG::default();
        let expr = "(f (g a) b)".parse().unwrap();
        let id = eg.add_expr(&expr);
        assert_eq!(eg.lookup_expr(&expr), Some(eg.find(id)));
        let missing = "(h a)".parse().unwrap();
        assert_eq!(eg.lookup_expr(&missing), None);
    }

    #[test]
    fn self_union_is_noop() {
        let mut eg = EG::default();
        let a = eg.add(leaf("a"));
        let (_, changed) = eg.union(a, a);
        assert!(!changed);
        assert!(eg.is_clean());
    }

    #[test]
    fn num_nodes_counts_unique_nodes_after_rebuild() {
        let mut eg = EG::default();
        let a = eg.add(leaf("a"));
        let b = eg.add(leaf("b"));
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        let fb = eg.add(SymbolLang::new("f", vec![b]));
        eg.union(a, b);
        eg.union(fa, fb);
        eg.rebuild();
        // f(a) and f(b) are now the same node; a and b remain distinct
        // nodes in one class.
        assert_eq!(eg.num_nodes(), 3);
        eg.assert_invariants();
    }

    #[test]
    fn operator_index_is_canonical_after_cascaded_merges() {
        // Regression guard for a latent staleness hazard: the op-index
        // rebuild happened to produce sorted, canonical buckets only
        // because classes are visited in ascending-id order. Merge chains
        // where high-id classes win structurally (congruence picks
        // winners by union-find rank, not id) used to leave that property
        // to luck; now `rebuild_classes` asserts it. Exercise it with
        // several same-operator classes collapsing across a rebuild.
        let mut eg = EG::default();
        let mut fs = Vec::new();
        for name in ["a", "b", "c", "d", "e"] {
            let x = eg.add(leaf(name));
            fs.push(eg.add(SymbolLang::new("f", vec![x])));
            eg.add(SymbolLang::new("g", vec![x]));
        }
        eg.rebuild();
        // Collapse f(e) into f(a) and f(d) into f(b) in one batch: the
        // losers' ids must vanish from every bucket.
        eg.union(fs[0], fs[4]);
        eg.union(fs[1], fs[3]);
        eg.rebuild();
        let f_key = SymbolLang::new("f", vec![fs[0]]).op_key();
        let bucket = eg.classes_with_op(f_key);
        assert!(
            bucket.windows(2).all(|w| w[0] < w[1]),
            "f bucket unsorted or duplicated: {bucket:?}"
        );
        for &id in bucket {
            assert_eq!(eg.find(id), id, "stale id {id} in f bucket");
        }
        assert_eq!(bucket.len(), 3, "5 f-classes minus 2 merges");
        eg.assert_invariants();
    }

    #[test]
    fn delta_index_tracks_adds_merges_and_congruence() {
        let mut eg = EG::default();
        let a = eg.add(leaf("a"));
        let b = eg.add(leaf("b"));
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        let fb = eg.add(SymbolLang::new("f", vec![b]));
        eg.rebuild();
        // Before any rebuild-seal boundary is crossed, everything ever
        // added is dirty relative to version 0.
        let v1 = eg.delta_version();
        assert_eq!(eg.dirty_since(0).len(), eg.num_classes());
        // Nothing changed since the seal: the frontier from v1 is empty.
        assert!(eg.dirty_since(v1).is_empty());

        // a ∪ b dirties the winner leaf class, and congruence f(a) ≡ f(b)
        // dirties the merged parent class.
        eg.union(a, b);
        eg.rebuild();
        let dirty = eg.dirty_since(v1);
        assert!(dirty.contains(&eg.find(a)), "merged leaf class not dirty");
        assert!(dirty.contains(&eg.find(fa)), "congruence-merged parent not dirty");
        assert_eq!(eg.find(fa), eg.find(fb));
        // A class untouched by the merge stays clean... (g c) on fresh ids.
        let c = eg.add(leaf("c"));
        let gc = eg.add(SymbolLang::new("g", vec![c]));
        eg.rebuild();
        let v2 = eg.delta_version();
        let dirty = eg.dirty_since(v2);
        assert!(dirty.is_empty(), "clean graph reported dirt: {dirty:?}");
        // ...and the adds before the seal are visible from v1.
        assert!(eg.dirty_since(v1).contains(&eg.find(gc)));

        // parent_classes over-approximates upward reachability.
        assert!(eg.parent_classes(eg.find(a)).contains(&eg.find(fa)));
    }
}
