//! Rule-level growth attribution: which rule created which e-nodes and
//! merged which e-classes.
//!
//! The [`Attribution`] ledger is the "why did the e-graph grow" counterpart
//! of the explanation forest's "why are these terms equal". It is gated the
//! same way ([`EGraph::with_attribution_enabled`](crate::EGraph::with_attribution_enabled));
//! the default `None` path pays one branch per recording site, which the
//! trace bench's ≤ 2% disabled-overhead gate covers.
//!
//! Every class creation, e-node add and class merge is charged to an
//! *origin*:
//!
//! * the name of the rule currently applying (set by
//!   [`Rewrite::apply`](crate::Rewrite::apply) around each rule's batch);
//! * [`Attribution::INIT`] for adds outside any rule (the initial
//!   expression, analysis-driven adds during setup);
//! * [`Attribution::CONGRUENCE`] for merges performed by
//!   [`rebuild`](crate::EGraph::rebuild)'s congruence repair;
//! * [`Attribution::DIRECT`] for merges asserted outside any rule.
//!
//! The ledger is **conservative** — its counts sum exactly to the
//! e-graph's totals ([`Attribution::check`]):
//!
//! ```text
//! num_classes == Σ classes_created − Σ classes_merged
//! num_nodes   == Σ nodes_created   − nodes_retired
//! ```
//!
//! The first identity holds because classes are only inserted by `add`
//! (charged) and only removed by a changed union (charged to the merging
//! origin). The second holds because class node lists only grow at `add`
//! (one node, charged) and at a union (the loser's nodes move to the
//! winner — no change in total), and only shrink in `rebuild`'s
//! deduplication pass, which retires nodes whose spellings became equal
//! under congruence ([`Attribution::nodes_retired`]). Because every
//! recording site runs in the serial apply/rebuild phases, the ledger is
//! bit-identical between serial and parallel search
//! (`tests/trace_determinism.rs` is the wall).

use std::collections::HashMap;
use std::sync::Arc;

/// Growth charged to one origin (a rule name or a builtin origin).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OriginCounters {
    /// E-nodes this origin added (fresh spellings only; hash-cons hits
    /// create nothing and charge nothing).
    pub nodes_created: u64,
    /// E-classes this origin created (one per fresh e-node add).
    pub classes_created: u64,
    /// E-classes this origin merged away (changed unions only).
    pub classes_merged: u64,
}

/// The growth-attribution ledger of one e-graph. See the
/// [module docs](self) for the charging rules and the conservation
/// invariant.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    counters: HashMap<Arc<str>, OriginCounters>,
    origin: Option<Arc<str>>,
    nodes_retired: u64,
}

impl Attribution {
    /// Origin charged for adds performed outside any rule application
    /// (the initial expression, direct `add` calls).
    pub const INIT: &'static str = "(init)";
    /// Origin charged for merges performed by congruence repair during
    /// [`rebuild`](crate::EGraph::rebuild).
    pub const CONGRUENCE: &'static str = "(congruence)";
    /// Origin charged for unions asserted outside any rule application.
    pub const DIRECT: &'static str = "(direct)";

    /// Set (or clear) the charging origin. The saturation engine calls
    /// this around each rule's application batch.
    pub fn set_origin(&mut self, origin: Option<Arc<str>>) {
        self.origin = origin;
    }

    fn charge(&mut self, origin: &str) -> &mut OriginCounters {
        // Single-lookup fast path: the Borrow<str> impl of Arc<str> lets
        // get_mut avoid an allocation on the hot repeat case.
        if self.counters.contains_key(origin) {
            return self.counters.get_mut(origin).expect("just checked");
        }
        self.counters.entry(Arc::from(origin)).or_default()
    }

    /// Charge one fresh e-node (and the class created for it) to the
    /// current origin, or to [`INIT`](Attribution::INIT) outside a rule.
    pub(crate) fn record_add(&mut self) {
        let origin = self.origin.clone();
        let c = self.charge(origin.as_deref().unwrap_or(Self::INIT));
        c.nodes_created += 1;
        c.classes_created += 1;
    }

    /// Charge one changed union (one class merged away): to
    /// [`CONGRUENCE`](Attribution::CONGRUENCE) when `congruence` is set,
    /// else to the current origin, else to
    /// [`DIRECT`](Attribution::DIRECT).
    pub(crate) fn record_merge(&mut self, congruence: bool) {
        if congruence {
            self.charge(Self::CONGRUENCE).classes_merged += 1;
        } else if let Some(origin) = self.origin.clone() {
            self.charge(&origin).classes_merged += 1;
        } else {
            self.charge(Self::DIRECT).classes_merged += 1;
        }
    }

    /// Record `n` e-nodes retired by rebuild's deduplication pass
    /// (spellings that became equal under congruence).
    pub(crate) fn record_retired(&mut self, n: usize) {
        self.nodes_retired += n as u64;
    }

    /// E-nodes retired by rebuild deduplication since the ledger started.
    pub fn nodes_retired(&self) -> u64 {
        self.nodes_retired
    }

    /// The per-origin counters, sorted by origin name (deterministic).
    pub fn rows(&self) -> Vec<(Arc<str>, OriginCounters)> {
        let mut rows: Vec<_> = self
            .counters
            .iter()
            .map(|(k, v)| (Arc::clone(k), *v))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// The counters charged to one origin (zero if it never charged).
    pub fn origin(&self, name: &str) -> OriginCounters {
        self.counters.get(name).copied().unwrap_or_default()
    }

    /// Sum of [`OriginCounters::nodes_created`] over all origins.
    pub fn total_nodes_created(&self) -> u64 {
        self.counters.values().map(|c| c.nodes_created).sum()
    }

    /// Sum of [`OriginCounters::classes_created`] over all origins.
    pub fn total_classes_created(&self) -> u64 {
        self.counters.values().map(|c| c.classes_created).sum()
    }

    /// Sum of [`OriginCounters::classes_merged`] over all origins.
    pub fn total_classes_merged(&self) -> u64 {
        self.counters.values().map(|c| c.classes_merged).sum()
    }

    /// Verify the conservation invariant against the e-graph's observed
    /// totals (`num_nodes`, `num_classes`).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the identity that failed.
    pub fn check(&self, num_nodes: usize, num_classes: usize) -> Result<(), String> {
        let classes = self.total_classes_created() as i128 - self.total_classes_merged() as i128;
        if classes != num_classes as i128 {
            return Err(format!(
                "class conservation violated: {} created − {} merged = {} ≠ {} classes",
                self.total_classes_created(),
                self.total_classes_merged(),
                classes,
                num_classes
            ));
        }
        let nodes = self.total_nodes_created() as i128 - self.nodes_retired as i128;
        if nodes != num_nodes as i128 {
            return Err(format!(
                "node conservation violated: {} created − {} retired = {} ≠ {} nodes",
                self.total_nodes_created(),
                self.nodes_retired,
                nodes,
                num_nodes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_rule_origin_and_builtins() {
        let mut a = Attribution::default();
        a.record_add(); // no origin → (init)
        a.set_origin(Some(Arc::from("my-rule")));
        a.record_add();
        a.record_merge(false); // rule merge
        a.record_merge(true); // congruence repair mid-rule still charges (congruence)
        a.set_origin(None);
        a.record_merge(false); // direct
        a.record_retired(3);

        assert_eq!(a.origin(Attribution::INIT).nodes_created, 1);
        assert_eq!(a.origin("my-rule").nodes_created, 1);
        assert_eq!(a.origin("my-rule").classes_merged, 1);
        assert_eq!(a.origin(Attribution::CONGRUENCE).classes_merged, 1);
        assert_eq!(a.origin(Attribution::DIRECT).classes_merged, 1);
        assert_eq!(a.nodes_retired(), 3);
        assert_eq!(a.total_nodes_created(), 2);
        assert_eq!(a.total_classes_created(), 2);
        assert_eq!(a.total_classes_merged(), 3);
    }

    #[test]
    fn rows_are_sorted_and_conservation_checks() {
        let mut a = Attribution::default();
        a.set_origin(Some(Arc::from("zeta")));
        a.record_add();
        a.set_origin(Some(Arc::from("alpha")));
        a.record_add();
        let names: Vec<_> = a.rows().iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        // 2 created − 0 merged classes, 2 created − 0 retired nodes.
        a.check(2, 2).expect("conserves");
        assert!(a.check(2, 1).is_err(), "wrong class total must fail");
        assert!(a.check(1, 2).is_err(), "wrong node total must fail");
    }
}
