//! E-class analyses: semilattice facts attached to every e-class.

use crate::{EGraph, Id, Language, RecExpr};

/// Result of merging two analysis values, reporting which side changed.
///
/// `DidMerge(a_changed, b_changed)`: the first flag is true when the merged
/// value differs from the left (surviving) input, the second when it differs
/// from the right input. The e-graph uses these flags to decide whose
/// parents need re-analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DidMerge(pub bool, pub bool);

impl std::ops::BitOr for DidMerge {
    type Output = DidMerge;

    fn bitor(self, rhs: DidMerge) -> DidMerge {
        DidMerge(self.0 | rhs.0, self.1 | rhs.1)
    }
}

/// An e-class analysis in the style of egg: each e-class carries a
/// [`Data`](Analysis::Data) value that is a join over its e-nodes, kept
/// consistent as classes merge.
///
/// Beyond the classic `make`/`merge` pair, this trait exposes three hooks
/// that LIAR's binder-aware pattern matching needs:
///
/// * [`representative`](Analysis::representative) — a small concrete term
///   for an e-class (used to apply substitution/shift operators to single
///   expressions extracted from classes, the paper's §IV.B.3).
/// * [`downshift`](Analysis::downshift) — find a term in the class whose
///   free De Bruijn indices are all `≥ k`, downshifted by `k`. Matching the
///   pattern `?x↑ᵏ` against class `c` binds `?x` to `downshift(c, k)`.
/// * [`shift_up`](Analysis::shift_up) — shift a term's free indices up by
///   `k` (used to instantiate `?x↑ᵏ` on a rule's right-hand side).
///
/// Languages without binders can ignore all three (the defaults make shift
/// patterns never match).
///
/// Analyses and their facts must be `Send + Sync`: the parallel search
/// phase shares the e-graph (including every class's `Data` and the
/// analysis instance itself) immutably across threads. Analyses that cache
/// (like LIAR's downshift cache) must use interior mutability that is
/// thread-safe (`Mutex`, not `RefCell`).
pub trait Analysis<L: Language>: Sized + Send + Sync {
    /// The per-class analysis fact.
    type Data: std::fmt::Debug + Clone + Send + Sync;

    /// Compute the fact for a freshly added e-node from its children's
    /// facts.
    fn make(egraph: &EGraph<L, Self>, enode: &L) -> Self::Data;

    /// Join `b` into `a`, reporting which side changed.
    fn merge(&mut self, a: &mut Self::Data, b: Self::Data) -> DidMerge;

    /// Hook run after a class is created or its data changes; may add nodes
    /// or unions (e.g. constant folding).
    fn modify(egraph: &mut EGraph<L, Self>, id: Id) {
        let _ = (egraph, id);
    }

    /// A small representative term of class `id`, if the analysis tracks
    /// one.
    fn representative(egraph: &EGraph<L, Self>, id: Id) -> Option<RecExpr<L>> {
        let _ = (egraph, id);
        None
    }

    /// A term equal to class `id` with all free binder indices reduced by
    /// `k`, if one exists. `downshift(_, id, 0)` should behave like
    /// [`representative`](Analysis::representative).
    fn downshift(egraph: &EGraph<L, Self>, id: Id, k: u32) -> Option<RecExpr<L>> {
        let _ = (egraph, id, k);
        None
    }

    /// Shift the free binder indices of `expr` up by `k`.
    ///
    /// Returns `None` when the language has no binders (the default).
    fn shift_up(expr: &RecExpr<L>, k: u32) -> Option<RecExpr<L>> {
        let _ = (expr, k);
        None
    }
}

/// The trivial analysis: no facts.
impl<L: Language> Analysis<L> for () {
    type Data = ();

    fn make(_egraph: &EGraph<L, Self>, _enode: &L) -> Self::Data {}

    fn merge(&mut self, _a: &mut Self::Data, _b: Self::Data) -> DidMerge {
        DidMerge(false, false)
    }
}
