//! A simple uninterpreted-symbol language, used for tests and examples.

use crate::{Id, Language};

/// An e-graph language of arbitrary named operators with any arity.
///
/// This is the engine's "hello world" language: every node is an operator
/// name plus children. LIAR's real language lives in the `liar-ir` crate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolLang {
    /// Operator name.
    pub op: String,
    /// Children e-classes.
    pub children: Vec<Id>,
}

impl SymbolLang {
    /// A node with the given operator and children.
    pub fn new(op: impl Into<String>, children: Vec<Id>) -> Self {
        SymbolLang {
            op: op.into(),
            children,
        }
    }

    /// A childless node.
    pub fn leaf(op: impl Into<String>) -> Self {
        SymbolLang::new(op, vec![])
    }
}

impl Language for SymbolLang {
    fn children(&self) -> &[Id] {
        &self.children
    }

    fn children_mut(&mut self) -> &mut [Id] {
        &mut self.children
    }

    fn matches(&self, other: &Self) -> bool {
        self.op == other.op && self.children.len() == other.children.len()
    }

    fn display_op(&self) -> String {
        self.op.clone()
    }

    fn op_key(&self) -> u64 {
        // Allocation-free override of the default (which formats
        // `display_op` into a fresh `String` per call).
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.op.hash(&mut h);
        self.children.len().hash(&mut h);
        h.finish()
    }

    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, String> {
        Ok(SymbolLang::new(op, children))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_ignores_children() {
        let a = SymbolLang::new("f", vec![Id::from_index(0)]);
        let b = SymbolLang::new("f", vec![Id::from_index(5)]);
        assert!(a.matches(&b));
        let c = SymbolLang::new("g", vec![Id::from_index(0)]);
        assert!(!a.matches(&c));
        let d = SymbolLang::new("f", vec![]);
        assert!(!a.matches(&d));
    }
}
