//! A generic equality-saturation engine.
//!
//! This crate is the bottom-most substrate of the LIAR reproduction: a
//! self-contained e-graph library in the style of `egg` (Willsey et al.,
//! POPL 2021), which the paper's Scala engine was itself modeled on.
//!
//! The pieces:
//!
//! * [`EGraph`] — hash-consed e-nodes partitioned into e-classes by a
//!   union-find, with deferred rebuilding (congruence closure).
//! * [`Language`] — the trait an IR node type implements to live in an
//!   e-graph; [`RecExpr`] is a flat term representation.
//! * [`Analysis`] — e-class analyses attaching a semilattice of facts to
//!   every e-class (used by LIAR for free-variable sets, array extents and
//!   small representatives).
//! * [`Pattern`] — a term with pattern variables, usable both as a
//!   [`Searcher`] and an [`Applier`]; supports *shift patterns* (`?x` shifted
//!   up by `k` binders) through [`Analysis`] hooks, which LIAR needs to match
//!   idioms such as `A↑↑[•1]` under binders.
//! * [`machine`] — the e-matching virtual machine: every pattern is compiled
//!   once into a linear instruction program executed over a register file,
//!   and fed from the e-graph's operator index
//!   ([`EGraph::classes_with_op`]) so a rule only visits classes whose
//!   members can match its root operator.
//! * [`Rewrite`], [`Runner`], [`BackoffScheduler`] — saturation proper, with
//!   per-iteration reports of e-node counts and timings (the raw data behind
//!   the paper's fig. 4).
//! * [`seminaive`] — semi-naive (delta-frontier) e-matching in the style of
//!   egglog: the e-graph's versioned [`DeltaIndex`] records which classes
//!   changed per rebuild, and [`DeltaSearch`] restricts each rule's scan to
//!   that frontier (replaying cached matches elsewhere) while emitting a
//!   stream bit-identical to the whole-graph engines. On by default in the
//!   [`Runner`]; see [`Runner::with_seminaive`].
//! * [`Extract`], [`Extractor`], [`DagExtractor`] and [`CostFunction`] —
//!   cost-based term extraction (the paper's §V-C extractors are cost
//!   functions over this engine), with both tree-cost and DAG-cost
//!   (shared-subterm-charged-once) accounting.
//! * [`attribution`] — opt-in growth attribution
//!   ([`EGraph::with_attribution_enabled`]): every class creation, e-node
//!   add and merge is charged to its originating rule, with a conservation
//!   invariant tying the per-rule counts to the e-graph's totals.
//! * [`explain`] — opt-in proof production
//!   ([`EGraph::with_explanations_enabled`]): every union is recorded in a
//!   provenance forest, [`EGraph::explain_equivalence`] turns any derived
//!   equality into a replayable chain of [`ProofStep`]s, and
//!   [`Explanation::check`] re-validates the chain against a rule set.
//!
//! # Example
//!
//! ```
//! use liar_egraph::{EGraph, SymbolLang, Pattern, Rewrite, Runner, Extractor, AstSize};
//!
//! // (a * 2) can be rewritten to (a << 1).
//! let mut egraph: EGraph<SymbolLang, ()> = EGraph::default();
//! let expr = "(* a 2)".parse().unwrap();
//! let root = egraph.add_expr(&expr);
//! let rules = vec![Rewrite::new(
//!     "mul2-to-shift",
//!     "(* ?x 2)".parse::<Pattern<SymbolLang>>().unwrap(),
//!     "(<< ?x 1)".parse::<Pattern<SymbolLang>>().unwrap(),
//! )];
//! let mut runner = Runner::new(egraph).with_iter_limit(4);
//! runner.run(&rules);
//! // The e-graph now contains both forms in the same e-class...
//! let shifted = runner.egraph.lookup_expr(&"(<< a 1)".parse().unwrap());
//! assert_eq!(shifted, Some(runner.egraph.find(root)));
//! // ...and an extractor picks a cheapest representative.
//! let extractor = Extractor::new(&runner.egraph, AstSize);
//! let (best_cost, _best) = extractor.find_best(root);
//! assert_eq!(best_cost, 3.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod analysis;
pub mod attribution;
mod delta;
mod dot;
mod egraph;
pub mod explain;
mod extract;
mod id;
mod language;
pub mod machine;
mod pattern;
mod rewrite;
mod runner;
mod scheduler;
pub mod seminaive;
pub mod snapshot;
mod symbol_lang;
mod unionfind;

pub use analysis::{Analysis, DidMerge};
pub use attribution::{Attribution, OriginCounters};
pub use delta::DeltaIndex;
pub use dot::Dot;
pub use egraph::{EClass, EGraph};
pub use explain::{Direction, Explanation, Justification, ProofError, ProofStep};
pub use extract::{
    AstDepth, AstSize, CostFunction, DagExtractor, ExactBudget, ExactExtractor, ExactOutcome,
    ExactReport, Extract, ExtractError, ExtractionStats, Extractor, FlatGraph,
};
pub use id::Id;
pub use language::{Language, RecExpr, RecExprParseError};
pub use machine::OraclePattern;
pub use pattern::{Binding, Pattern, PatternNode, PatternParseError, Subst, Var};
pub use rewrite::{Applier, Rewrite, SearchMatches, Searcher};
pub use runner::{Iteration, Runner, RunnerLimits, StopReason};
pub use scheduler::{BackoffScheduler, Scheduler, SimpleScheduler};
pub use seminaive::{ClosureMemo, DeltaSearch, SearchPlan};
pub use snapshot::{
    SnapshotAnalysis, SnapshotError, SnapshotReader, SnapshotWriter, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use symbol_lang::SymbolLang;
