//! Patterns: terms with variables, usable for searching and rewriting.
//!
//! Matching is performed by the compiled e-matching VM (see
//! [`machine`](crate::machine)); every pattern carries its compiled
//! [`Program`], built once at construction. The original recursive
//! tree-walk matcher survives as [`Pattern::match_class_oracle`], the
//! reference implementation the differential tests compare the VM against.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::language::parse_sexp;
use crate::machine::Program;
use crate::rewrite::{Applier, SearchMatches, Searcher};
use crate::{Analysis, EGraph, Id, Language, RecExpr};

/// Global interning table mapping pattern-variable names to dense ids.
///
/// Names are leaked once per distinct string (rule sets use a small, fixed
/// vocabulary), which is what lets [`Var`] be a `Copy` `u32` and
/// [`Var::name`] return a `'static` string.
struct VarTable {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

fn var_table() -> &'static Mutex<VarTable> {
    static TABLE: OnceLock<Mutex<VarTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        Mutex::new(VarTable {
            names: Vec::new(),
            ids: HashMap::new(),
        })
    })
}

/// A pattern variable such as `?x`.
///
/// Names are interned in a global symbol table, making `Var` a `Copy`
/// 4-byte handle: the e-matching hot loop never clones strings.
/// Equality/ordering/hashing are by interned id (ordering therefore
/// reflects first-interning order, not lexicographic order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Create a variable; the leading `?` is optional.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        let name = name.strip_prefix('?').unwrap_or(name);
        let mut table = var_table().lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(&id) = table.ids.get(name) {
            return Var(id);
        }
        let name: &'static str = Box::leak(name.to_string().into_boxed_str());
        let id = u32::try_from(table.names.len()).expect("too many distinct variables");
        table.names.push(name);
        table.ids.insert(name, id);
        Var(id)
    }

    /// The variable's name without the leading `?`.
    pub fn name(&self) -> &'static str {
        var_table().lock().unwrap_or_else(PoisonError::into_inner).names[self.0 as usize]
    }

    /// The interned symbol id.
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var(?{})", self.name())
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.name())
    }
}

/// What a pattern variable is bound to.
///
/// Ordinary variables bind e-classes. Variables matched through a *shift
/// pattern* (`?x↑ᵏ`, written `(sh<k> ?x)`) bind a concrete term — the
/// downshifted representative — which is only added to the e-graph if the
/// rule's right-hand side actually uses it.
#[derive(Debug, Clone)]
pub enum Binding<L> {
    /// Bound to an existing e-class.
    Class(Id),
    /// Bound to a term not (necessarily) in the e-graph yet. Shared via
    /// `Arc` so substitutions can cross the parallel search phase's thread
    /// boundary.
    Expr(Arc<RecExpr<L>>),
}

/// A substitution: variable → [`Binding`].
#[derive(Debug, Clone)]
pub struct Subst<L> {
    pairs: Vec<(Var, Binding<L>)>,
}

impl<L> Default for Subst<L> {
    fn default() -> Self {
        Subst { pairs: Vec::new() }
    }
}

impl<L: Language> Subst<L> {
    /// Look up a variable.
    pub fn get(&self, var: &Var) -> Option<&Binding<L>> {
        self.pairs.iter().find(|(v, _)| v == var).map(|(_, b)| b)
    }

    /// Bind a variable (must not already be bound).
    pub fn insert(&mut self, var: Var, binding: Binding<L>) {
        debug_assert!(self.get(&var).is_none(), "{var} already bound");
        self.pairs.push((var, binding));
    }

    /// Iterate over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = &(Var, Binding<L>)> {
        self.pairs.iter()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// True when `self` and `other` bind the same variables to equivalent
    /// values (classes are compared through `egraph_find`). This is the
    /// *specification* of substitution equality; the VM's hash-based dedup
    /// must agree with it.
    pub fn same_as(&self, other: &Self, egraph_find: &dyn Fn(Id) -> Id) -> bool {
        if self.pairs.len() != other.pairs.len() {
            return false;
        }
        self.pairs.iter().all(|(v, b)| match other.get(v) {
            Some(ob) => match (b, ob) {
                (Binding::Class(a), Binding::Class(c)) => egraph_find(*a) == egraph_find(*c),
                (Binding::Expr(a), Binding::Expr(c)) => a == c,
                _ => false,
            },
            None => false,
        })
    }
}

/// One node of a [`Pattern`]; children (for the `ENode` case) index into
/// the pattern's own node table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternNode<L> {
    /// A concrete language node whose children are pattern positions.
    ENode(L),
    /// A pattern variable matching any e-class.
    Var(Var),
    /// `?x` shifted up by `k` binders. On the left-hand side this matches a
    /// class containing a term with no free index `< k` and binds `?x` to
    /// that term downshifted by `k`; on the right-hand side it inserts the
    /// binding shifted up by `k`. Requires [`Analysis::downshift`] /
    /// [`Analysis::shift_up`]. Zero shifts are normalized to plain
    /// [`Var`](PatternNode::Var)s when the pattern is built.
    Shifted(Var, u32),
}

/// A term with pattern variables, stored like a [`RecExpr`].
///
/// Patterns implement both [`Searcher`] and [`Applier`], so a pair of
/// patterns forms a [`Rewrite`](crate::Rewrite). Construction compiles the
/// pattern into an e-matching VM [`Program`] exactly once; see the
/// [`machine`](crate::machine) module.
#[derive(Debug, Clone)]
pub struct Pattern<L> {
    nodes: Vec<PatternNode<L>>,
    root: Id,
    program: Arc<Program<L>>,
}

impl<L: Language> PartialEq for Pattern<L> {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.root == other.root
    }
}

impl<L: Language> Eq for Pattern<L> {}

impl<L: Language> Pattern<L> {
    /// Build a pattern from a post-order node table.
    pub fn from_nodes(nodes: Vec<PatternNode<L>>) -> Self {
        assert!(!nodes.is_empty(), "empty pattern");
        let root = Id::from_index(nodes.len() - 1);
        Pattern::with_root(nodes, root)
    }

    /// Build a pattern with an explicit root, normalizing zero shifts and
    /// compiling the VM program.
    fn with_root(mut nodes: Vec<PatternNode<L>>, root: Id) -> Self {
        for node in &mut nodes {
            if let PatternNode::Shifted(v, 0) = node {
                *node = PatternNode::Var(*v);
            }
        }
        let program = Arc::new(Program::compile(&nodes, root));
        Pattern { nodes, root, program }
    }

    /// A pattern with no variables, from a concrete term.
    pub fn from_expr(expr: &RecExpr<L>) -> Self {
        let nodes = expr
            .nodes()
            .iter()
            .map(|n| PatternNode::ENode(n.clone()))
            .collect();
        Pattern::from_nodes(nodes)
    }

    /// The nodes in post order.
    pub fn nodes(&self) -> &[PatternNode<L>] {
        &self.nodes
    }

    /// The root node index.
    pub fn root(&self) -> Id {
        self.root
    }

    /// The compiled e-matching program.
    pub fn compiled(&self) -> &Program<L> {
        &self.program
    }

    /// All variables mentioned by the pattern (in first-occurrence order).
    pub fn vars(&self) -> Vec<Var> {
        let mut vars = Vec::new();
        for node in &self.nodes {
            let v = match node {
                PatternNode::Var(v) | PatternNode::Shifted(v, _) => *v,
                PatternNode::ENode(_) => continue,
            };
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        vars
    }

    /// Match this pattern against a single e-class, returning every
    /// substitution (deduplicated), by executing the compiled VM program.
    pub fn match_class<A: Analysis<L>>(&self, egraph: &EGraph<L, A>, class: Id) -> Vec<Subst<L>> {
        self.program.run(egraph, class)
    }

    /// Match with the legacy recursive matcher — the **oracle** the
    /// differential test suite checks [`match_class`](Pattern::match_class)
    /// against. Slower (O(n²) dedup, per-branch substitution clones); not
    /// used on any production path.
    pub fn match_class_oracle<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        class: Id,
    ) -> Vec<Subst<L>> {
        let mut results = Vec::new();
        self.match_at(egraph, self.root, egraph.find(class), Subst::default(), &mut results);
        let find = |id: Id| egraph.find(id);
        let mut deduped: Vec<Subst<L>> = Vec::new();
        for s in results {
            if !deduped.iter().any(|d| d.same_as(&s, &find)) {
                deduped.push(s);
            }
        }
        deduped
    }

    /// Oracle treatment of a variable position (shared by `Var` and the
    /// normalized-away `(sh0 ?x)` case).
    fn match_var_at<A: Analysis<L>>(
        egraph: &EGraph<L, A>,
        v: Var,
        class: Id,
        subst: Subst<L>,
        out: &mut Vec<Subst<L>>,
    ) {
        match subst.get(&v) {
            Some(Binding::Class(bound)) => {
                if egraph.find(*bound) == class {
                    out.push(subst);
                }
            }
            Some(Binding::Expr(e)) => {
                if egraph.lookup_expr(e) == Some(class) {
                    out.push(subst);
                }
            }
            None => {
                let mut s = subst;
                s.insert(v, Binding::Class(class));
                out.push(s);
            }
        }
    }

    fn match_at<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        pid: Id,
        class: Id,
        subst: Subst<L>,
        out: &mut Vec<Subst<L>>,
    ) {
        match &self.nodes[pid.index()] {
            PatternNode::Var(v) | PatternNode::Shifted(v, 0) => {
                Self::match_var_at(egraph, *v, class, subst, out);
            }
            PatternNode::Shifted(v, k) => {
                let Some(down) = A::downshift(egraph, class, *k) else {
                    return;
                };
                match subst.get(v) {
                    Some(Binding::Expr(e)) => {
                        if **e == down {
                            out.push(subst);
                        } else {
                            // Equal classes may yield different
                            // representatives; fall back to a semantic
                            // check through the e-graph.
                            let (a, b) = (egraph.lookup_expr(e), egraph.lookup_expr(&down));
                            if a.is_some() && a == b {
                                out.push(subst);
                            }
                        }
                    }
                    Some(Binding::Class(bound)) => {
                        if egraph.lookup_expr(&down) == Some(egraph.find(*bound)) {
                            out.push(subst);
                        }
                    }
                    None => {
                        let mut s = subst;
                        s.insert(*v, Binding::Expr(Arc::new(down)));
                        out.push(s);
                    }
                }
            }
            PatternNode::ENode(pnode) => {
                for enode in egraph[class].iter() {
                    if !pnode.matches(enode) {
                        continue;
                    }
                    debug_assert_eq!(pnode.children().len(), enode.children().len());
                    let mut substs = vec![subst.clone()];
                    for (pc, ec) in pnode.children().iter().zip(enode.children()) {
                        let mut next = Vec::new();
                        for s in substs {
                            self.match_at(egraph, *pc, egraph.find(*ec), s, &mut next);
                        }
                        substs = next;
                        if substs.is_empty() {
                            break;
                        }
                    }
                    out.extend(substs);
                }
            }
        }
    }

    /// Instantiate this pattern under `subst`, adding nodes to the e-graph;
    /// returns the root's class.
    ///
    /// # Panics
    ///
    /// Panics if a variable is unbound, or if a shifted variable is used
    /// with an analysis that does not provide
    /// [`representative`](Analysis::representative) / [`shift_up`](Analysis::shift_up).
    pub fn instantiate<A: Analysis<L>>(&self, egraph: &mut EGraph<L, A>, subst: &Subst<L>) -> Id {
        self.instantiate_at(egraph, self.root, subst)
    }

    fn instantiate_at<A: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, A>,
        pid: Id,
        subst: &Subst<L>,
    ) -> Id {
        match &self.nodes[pid.index()] {
            PatternNode::Var(v) => match subst.get(v) {
                Some(Binding::Class(id)) => egraph.find(*id),
                Some(Binding::Expr(e)) => egraph.add_expr(e),
                None => panic!("unbound pattern variable {v}"),
            },
            PatternNode::Shifted(v, k) => {
                let expr: RecExpr<L> = match subst.get(v) {
                    Some(Binding::Expr(e)) => (**e).clone(),
                    Some(Binding::Class(id)) => A::representative(egraph, *id)
                        .unwrap_or_else(|| panic!("analysis provides no representative for {v}")),
                    None => panic!("unbound pattern variable {v}"),
                };
                let shifted = A::shift_up(&expr, *k)
                    .unwrap_or_else(|| panic!("analysis does not support shifting (for {v})"));
                egraph.add_expr(&shifted)
            }
            PatternNode::ENode(node) => {
                let node = node.clone().map_children(|c| {
                    // Children of a pattern ENode index pattern positions.
                    self.instantiate_at(egraph, c, subst)
                });
                egraph.add(node)
            }
        }
    }
}

impl<L: Language, A: Analysis<L>> Searcher<L, A> for Pattern<L> {
    fn search(&self, egraph: &EGraph<L, A>, limit: usize) -> Vec<SearchMatches<L>> {
        let ids = match <Self as Searcher<L, A>>::candidate_class_ids(self, egraph) {
            Some(ids) => ids,
            None => egraph.class_ids(),
        };
        let mut matches = Vec::new();
        let mut total = 0;
        for id in ids {
            if total >= limit {
                break;
            }
            let mut substs = self.match_class(egraph, id);
            if substs.is_empty() {
                continue;
            }
            if total + substs.len() > limit {
                substs.truncate(limit - total);
            }
            total += substs.len();
            matches.push(SearchMatches::new(id, substs));
        }
        matches
    }

    fn can_search_per_class(&self) -> bool {
        true
    }

    fn search_class(&self, egraph: &EGraph<L, A>, class: Id, limit: usize) -> Vec<Subst<L>> {
        let mut substs = self.match_class(egraph, class);
        substs.truncate(limit);
        substs
    }

    fn candidate_class_ids(&self, egraph: &EGraph<L, A>) -> Option<Vec<Id>> {
        if !egraph.is_clean() {
            // The operator index may hold stale ids while unions are
            // pending; fall back to scanning everything.
            return None;
        }
        self.program
            .root_op_key()
            .map(|key| egraph.classes_with_op(key).to_vec())
    }

    fn as_pattern(&self) -> Option<&Pattern<L>> {
        Some(self)
    }

    fn delta_depth(&self) -> Option<u32> {
        self.program.delta_depth()
    }

    fn bound_vars(&self) -> Vec<Var> {
        self.vars()
    }
}

impl<L: Language, A: Analysis<L>> Applier<L, A> for Pattern<L> {
    fn apply(&self, egraph: &mut EGraph<L, A>, class: Id, subst: &Subst<L>) -> Vec<Id> {
        let new_id = self.instantiate(egraph, subst);
        let (id, changed) = egraph.union(class, new_id);
        if changed {
            vec![id]
        } else {
            vec![]
        }
    }

    fn bound_vars(&self) -> Vec<Var> {
        self.vars()
    }

    fn as_pattern(&self) -> Option<&Pattern<L>> {
        Some(self)
    }
}

/// Error produced when parsing a [`Pattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternParseError(pub String);

impl fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern parse error: {}", self.0)
    }
}

impl std::error::Error for PatternParseError {}

/// Parse `sh<k>` operator names used for shift patterns.
fn parse_shift_op(op: &str) -> Option<u32> {
    op.strip_prefix("sh").and_then(|k| k.parse().ok())
}

impl<L: Language> FromStr for Pattern<L> {
    type Err = PatternParseError;

    /// Parse a pattern from an s-expression.
    ///
    /// Tokens starting with `?` are variables; `(sh<k> ?x)` (e.g. `(sh2
    /// ?a)`) is `?x` shifted up by `k`; everything else is handed to
    /// [`Language::from_op`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut nodes: Vec<PatternNode<L>> = Vec::new();
        let root = parse_sexp(s, &mut |op, children| {
            if let Some(rest) = op.strip_prefix('?') {
                if !children.is_empty() {
                    return Err(format!("variable ?{rest} cannot have children"));
                }
                if rest.is_empty() {
                    return Err("empty variable name".to_string());
                }
                nodes.push(PatternNode::Var(Var::new(rest)));
                return Ok(Id::from_index(nodes.len() - 1));
            }
            if let Some(k) = parse_shift_op(op) {
                if children.len() == 1 {
                    if let PatternNode::Var(v) = nodes[children[0].index()].clone() {
                        nodes.pop();
                        nodes.push(PatternNode::Shifted(v, k));
                        return Ok(Id::from_index(nodes.len() - 1));
                    }
                }
                return Err(format!("(sh{k} ...) takes exactly one variable argument"));
            }
            let node = L::from_op(op, children)?;
            nodes.push(PatternNode::ENode(node));
            Ok(Id::from_index(nodes.len() - 1))
        })
        .map_err(|e| PatternParseError(e.0))?;
        Ok(Pattern::with_root(nodes, root))
    }
}

impl<L: Language> fmt::Display for Pattern<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go<L: Language>(
            p: &Pattern<L>,
            f: &mut fmt::Formatter<'_>,
            id: Id,
        ) -> fmt::Result {
            match &p.nodes[id.index()] {
                PatternNode::Var(v) => write!(f, "{v}"),
                PatternNode::Shifted(v, k) => write!(f, "(sh{k} {v})"),
                PatternNode::ENode(n) => {
                    if n.is_leaf() {
                        write!(f, "{}", n.display_op())
                    } else {
                        write!(f, "({}", n.display_op())?;
                        for c in n.children() {
                            write!(f, " ")?;
                            go(p, f, *c)?;
                        }
                        write!(f, ")")
                    }
                }
            }
        }
        go(self, f, self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    type EG = EGraph<SymbolLang, ()>;

    #[test]
    fn parse_display_roundtrip() {
        for s in ["?x", "(f ?x ?y)", "(f (g ?x) a)", "(f (sh2 ?a) ?b)"] {
            let p: Pattern<SymbolLang> = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn zero_shift_normalizes_to_var() {
        let p: Pattern<SymbolLang> = "(f (sh0 ?a))".parse().unwrap();
        assert_eq!(p.to_string(), "(f ?a)");
        assert!(p
            .nodes()
            .iter()
            .all(|n| !matches!(n, PatternNode::Shifted(..))));
    }

    #[test]
    fn vars_are_interned_and_copy() {
        let a = Var::new("?x");
        let b = Var::new("x");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
        assert_eq!(a.name(), "x");
        let c = a; // Copy
        assert_eq!(a, c);
        assert_ne!(Var::new("y"), a);
    }

    #[test]
    fn vars_in_order() {
        let p: Pattern<SymbolLang> = "(f ?b (g ?a ?b))".parse().unwrap();
        let names: Vec<_> = p.vars().iter().map(|v| v.name().to_string()).collect();
        assert_eq!(names, ["b", "a"]);
    }

    #[test]
    fn simple_match() {
        let mut eg = EG::default();
        let expr = "(f a b)".parse().unwrap();
        let id = eg.add_expr(&expr);
        let p: Pattern<SymbolLang> = "(f ?x ?y)".parse().unwrap();
        let substs = p.match_class(&eg, id);
        assert_eq!(substs.len(), 1);
        let q: Pattern<SymbolLang> = "(g ?x)".parse().unwrap();
        assert!(q.match_class(&eg, id).is_empty());
    }

    #[test]
    fn nonlinear_pattern_requires_equal_classes() {
        let mut eg = EG::default();
        let faa = eg.add_expr(&"(f a a)".parse().unwrap());
        let fab = eg.add_expr(&"(f a b)".parse().unwrap());
        let p: Pattern<SymbolLang> = "(f ?x ?x)".parse().unwrap();
        assert_eq!(p.match_class(&eg, faa).len(), 1);
        assert_eq!(p.match_class(&eg, fab).len(), 0);
        // After unioning a and b, (f a b) also matches (f ?x ?x).
        let a = eg.lookup_expr(&"a".parse().unwrap()).unwrap();
        let b = eg.lookup_expr(&"b".parse().unwrap()).unwrap();
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(p.match_class(&eg, fab).len(), 1);
    }

    #[test]
    fn match_enumerates_class_members() {
        let mut eg = EG::default();
        let fa = eg.add_expr(&"(f a)".parse().unwrap());
        let fb = eg.add_expr(&"(f b)".parse().unwrap());
        eg.union(fa, fb);
        eg.rebuild();
        let p: Pattern<SymbolLang> = "(f ?x)".parse().unwrap();
        let substs = p.match_class(&eg, fa);
        assert_eq!(substs.len(), 2, "both f(a) and f(b) should match");
    }

    #[test]
    fn vm_and_oracle_agree_on_dedup() {
        // Two distinct members produce the same substitution after
        // canonicalization: both matchers must collapse them.
        let mut eg = EG::default();
        let fa = eg.add_expr(&"(f a)".parse().unwrap());
        let fb = eg.add_expr(&"(f b)".parse().unwrap());
        eg.union(fa, fb);
        let a = eg.lookup_expr(&"a".parse().unwrap()).unwrap();
        let b = eg.lookup_expr(&"b".parse().unwrap()).unwrap();
        eg.union(a, b);
        eg.rebuild();
        let p: Pattern<SymbolLang> = "(f ?x)".parse().unwrap();
        let vm = p.match_class(&eg, fa);
        let oracle = p.match_class_oracle(&eg, fa);
        assert_eq!(vm.len(), 1);
        assert_eq!(oracle.len(), 1);
    }

    #[test]
    fn instantiate_builds_term() {
        let mut eg = EG::default();
        let id = eg.add_expr(&"(f a b)".parse().unwrap());
        let lhs: Pattern<SymbolLang> = "(f ?x ?y)".parse().unwrap();
        let rhs: Pattern<SymbolLang> = "(g ?y ?x)".parse().unwrap();
        let subst = lhs.match_class(&eg, id).pop().unwrap();
        let new_id = rhs.instantiate(&mut eg, &subst);
        let expect = eg.lookup_expr(&"(g b a)".parse().unwrap());
        assert_eq!(expect, Some(eg.find(new_id)));
    }

    #[test]
    fn search_respects_limit() {
        let mut eg = EG::default();
        for name in ["a", "b", "c", "d"] {
            let leaf = eg.add(SymbolLang::leaf(name));
            eg.add(SymbolLang::new("f", vec![leaf]));
        }
        let p: Pattern<SymbolLang> = "(f ?x)".parse().unwrap();
        let matches = <Pattern<_> as Searcher<_, ()>>::search(&p, &eg, 2);
        let total: usize = matches.iter().map(|m| m.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn candidate_classes_come_from_operator_index() {
        let mut eg = EG::default();
        let leaf = eg.add(SymbolLang::leaf("a"));
        eg.add(SymbolLang::new("f", vec![leaf]));
        eg.add(SymbolLang::new("g", vec![leaf]));
        let p: Pattern<SymbolLang> = "(f ?x)".parse().unwrap();
        let cands =
            <Pattern<_> as Searcher<_, ()>>::candidate_class_ids(&p, &eg).expect("indexed");
        assert_eq!(cands.len(), 1, "only the f class is a candidate");
        // A variable root has no index entry point.
        let q: Pattern<SymbolLang> = "?x".parse().unwrap();
        assert!(<Pattern<_> as Searcher<_, ()>>::candidate_class_ids(&q, &eg).is_none());
    }
}
