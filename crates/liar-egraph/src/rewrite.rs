//! Rewrite rules: a searcher paired with an applier.

use std::fmt;
use std::sync::Arc;

use crate::{Analysis, EGraph, Id, Language, Pattern, Subst, Var};

/// All matches of a searcher inside one e-class.
#[derive(Debug, Clone)]
pub struct SearchMatches<L> {
    /// The matched e-class (canonical at search time).
    pub class: Id,
    substs: SubstList<L>,
}

/// Substitution storage: either owned outright, or a prefix view into a
/// list shared with the semi-naive replay cache. Sharing makes emitting a
/// cached class O(1) instead of cloning every substitution.
#[derive(Debug, Clone)]
enum SubstList<L> {
    Owned(Vec<Subst<L>>),
    Shared(Arc<Vec<Subst<L>>>, usize),
}

impl<L> SearchMatches<L> {
    /// Matches that own their substitutions.
    pub fn new(class: Id, substs: Vec<Subst<L>>) -> Self {
        SearchMatches {
            class,
            substs: SubstList::Owned(substs),
        }
    }

    /// Matches viewing the first `take` substitutions of a shared list
    /// (a semi-naive scan result or replay-cache entry).
    pub fn shared(class: Id, substs: Arc<Vec<Subst<L>>>, take: usize) -> Self {
        debug_assert!(take <= substs.len());
        SearchMatches {
            class,
            substs: SubstList::Shared(substs, take),
        }
    }

    /// The substitutions, one per way the pattern matched.
    pub fn substs(&self) -> &[Subst<L>] {
        match &self.substs {
            SubstList::Owned(v) => v,
            SubstList::Shared(v, take) => &v[..*take],
        }
    }

    /// Total number of substitutions.
    pub fn len(&self) -> usize {
        match &self.substs {
            SubstList::Owned(v) => v.len(),
            SubstList::Shared(_, take) => *take,
        }
    }

    /// True when there are no substitutions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keep only the first `n` substitutions.
    pub fn truncate(&mut self, n: usize) {
        match &mut self.substs {
            SubstList::Owned(v) => v.truncate(n),
            SubstList::Shared(_, take) => *take = (*take).min(n),
        }
    }
}

/// The left-hand side of a rewrite: finds matches in an e-graph.
///
/// `limit` bounds the total number of substitutions returned; searchers
/// must stay read-only so that a whole batch of rules can be searched
/// against one consistent e-graph snapshot. `Send + Sync` lets the
/// parallel search phase fan searcher invocations out across threads; a
/// searcher must therefore not cache state behind non-thread-safe interior
/// mutability.
pub trait Searcher<L: Language, A: Analysis<L>>: Send + Sync {
    /// Search the whole e-graph, returning at most `limit` substitutions.
    fn search(&self, egraph: &EGraph<L, A>, limit: usize) -> Vec<SearchMatches<L>>;

    /// True when [`search_class`](Searcher::search_class) is supported, in
    /// which case [`search`](Searcher::search) must be equivalent to
    /// concatenating `search_class` over [`EGraph::class_ids`] (ascending)
    /// with the limit applied across classes in that order. The parallel
    /// engine uses this to split one rule's search into per-class jobs.
    fn can_search_per_class(&self) -> bool {
        false
    }

    /// Search a single e-class, returning at most `limit` substitutions.
    ///
    /// Only called when [`can_search_per_class`](Searcher::can_search_per_class)
    /// returns true; the default panics.
    fn search_class(&self, egraph: &EGraph<L, A>, class: Id, limit: usize) -> Vec<Subst<L>> {
        let _ = (egraph, class, limit);
        unimplemented!("searcher does not support per-class search")
    }

    /// The e-classes this searcher could possibly match, **sorted
    /// ascending**, or `None` when every class must be visited (the
    /// default).
    ///
    /// Compiled patterns answer from the e-graph's
    /// [operator index](EGraph::classes_with_op); the saturation engine
    /// then only dispatches [`search_class`](Searcher::search_class) over
    /// this list. Implementations must be *sound over-approximations*: a
    /// class not listed must produce zero matches, so that skipping it is
    /// observationally identical to searching it.
    fn candidate_class_ids(&self, egraph: &EGraph<L, A>) -> Option<Vec<Id>> {
        let _ = egraph;
        None
    }

    /// Downcast to a [`Pattern`] searcher, when this searcher is one.
    ///
    /// Used by the differential test suite and the e-matching bench to
    /// swap compiled patterns for the legacy oracle matcher.
    fn as_pattern(&self) -> Option<&Pattern<L>> {
        None
    }

    /// The searcher's pattern depth when it is eligible for semi-naive
    /// (delta-frontier) search; `None` (the default) keeps it on the
    /// whole-graph path.
    ///
    /// Returning `Some(depth)` is a contract: the substitutions
    /// [`search_class`](Searcher::search_class) produces for a class must
    /// be a function of only (a) the e-node lists of classes reachable
    /// within `depth - 1` child steps of it and (b) the identities of
    /// classes at exactly `depth` steps. Compiled [`Pattern`]s without
    /// shift bindings satisfy this (see
    /// [`Program::delta_depth`](crate::machine::Program::delta_depth));
    /// custom searchers and the oracle matcher stay whole-graph.
    fn delta_depth(&self) -> Option<u32> {
        None
    }

    /// Fingerprint of the *global* inputs to
    /// [`search_class`](Searcher::search_class) — state outside the
    /// per-class window that [`delta_depth`](Searcher::delta_depth)
    /// describes. Only consulted for delta-eligible searchers: when the
    /// value changes between iterations, the semi-naive engine discards
    /// every cached result for the rule and rescans its whole candidate
    /// universe, exactly as if the rule had never searched.
    ///
    /// Compiled patterns depend on nothing global and keep the default
    /// (a constant). Searchers that pair every class with an auxiliary
    /// candidate list — the intro rules — hash that list here, because a
    /// grown or shrunk list changes the match set of *clean* classes too.
    fn delta_fingerprint(&self, egraph: &EGraph<L, A>) -> u64 {
        let _ = egraph;
        0
    }

    /// A **guaranteed lower bound** on the number of substitutions
    /// [`search_class`](Searcher::search_class) yields for *every* class
    /// in the candidate universe, on this snapshot. The default (0) is
    /// always sound.
    ///
    /// The semi-naive planner uses it to truncate plans under a match
    /// limit: once the planned entries' guaranteed yields alone meet the
    /// budget, no later entry could ever execute, so it stays pending.
    /// Only searchers whose per-class yield is uniform and known — the
    /// tuple intro rules, which emit one substitution per global candidate
    /// for every class — return a nonzero bound.
    fn min_class_yield(&self, egraph: &EGraph<L, A>) -> usize {
        let _ = egraph;
        0
    }

    /// Variables this searcher binds (used to validate rewrites).
    fn bound_vars(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// The right-hand side of a rewrite: given one match, mutate the e-graph
/// (add nodes, union classes). `Send + Sync` keeps whole [`Rewrite`]s
/// shareable across the parallel search phase's threads (appliers
/// themselves always run serially).
pub trait Applier<L: Language, A: Analysis<L>>: Send + Sync {
    /// Apply the rewrite for a single `(class, subst)` match. Returns the
    /// ids of classes that actually changed (empty when the application was
    /// a no-op, e.g. the union was already known).
    fn apply(&self, egraph: &mut EGraph<L, A>, class: Id, subst: &Subst<L>) -> Vec<Id>;

    /// Variables this applier requires to be bound.
    fn bound_vars(&self) -> Vec<Var> {
        Vec::new()
    }

    /// Downcast to a plain [`Pattern`] right-hand side, when this applier
    /// is one. Proof checking uses this: steps of pattern → pattern rules
    /// are verified by match-and-instantiate, while appliers that run code
    /// (guards, β-reduction, the intro rules) return `None` here and are
    /// re-executed during a replay check instead.
    fn as_pattern(&self) -> Option<&Pattern<L>> {
        None
    }
}

/// A named rewrite rule.
///
/// Most rules are a pair of [`Pattern`]s; rules that need to run code — the
/// LIAR β-reduction and intro rules — plug in custom [`Searcher`]s /
/// [`Applier`]s.
pub struct Rewrite<L: Language, A: Analysis<L>> {
    name: String,
    searcher: Arc<dyn Searcher<L, A>>,
    applier: Arc<dyn Applier<L, A>>,
}

impl<L: Language, A: Analysis<L>> Clone for Rewrite<L, A> {
    fn clone(&self) -> Self {
        Rewrite {
            name: self.name.clone(),
            searcher: Arc::clone(&self.searcher),
            applier: Arc::clone(&self.applier),
        }
    }
}

impl<L: Language, A: Analysis<L>> fmt::Debug for Rewrite<L, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rewrite").field("name", &self.name).finish()
    }
}

impl<L: Language + 'static, A: Analysis<L> + 'static> Rewrite<L, A> {
    /// Build a rewrite from any searcher/applier pair.
    ///
    /// # Panics
    ///
    /// Panics if the applier requires a variable the searcher does not
    /// bind.
    pub fn new(
        name: impl Into<String>,
        searcher: impl Searcher<L, A> + 'static,
        applier: impl Applier<L, A> + 'static,
    ) -> Self {
        let name = name.into();
        let bound = searcher.bound_vars();
        for v in applier.bound_vars() {
            assert!(
                bound.contains(&v),
                "rewrite {name}: applier uses unbound variable {v}"
            );
        }
        Rewrite {
            name,
            searcher: Arc::new(searcher),
            applier: Arc::new(applier),
        }
    }

    /// Build a rewrite from two pattern strings (panicking on parse errors
    /// — rules are static program text).
    ///
    /// # Panics
    ///
    /// Panics if either pattern fails to parse or the right-hand side uses
    /// an unbound variable.
    pub fn from_patterns(name: impl Into<String>, lhs: &str, rhs: &str) -> Self {
        let name = name.into();
        let lhs: Pattern<L> = lhs
            .parse()
            .unwrap_or_else(|e| panic!("rewrite {name}: bad LHS: {e}"));
        let rhs: Pattern<L> = rhs
            .parse()
            .unwrap_or_else(|e| panic!("rewrite {name}: bad RHS: {e}"));
        Rewrite::new(name, lhs, rhs)
    }

    /// The rule's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Search for matches, bounded by `limit` substitutions.
    pub fn search(&self, egraph: &EGraph<L, A>, limit: usize) -> Vec<SearchMatches<L>> {
        self.searcher.search(egraph, limit)
    }

    /// True when this rule's searcher supports per-class search (see
    /// [`Searcher::can_search_per_class`]).
    pub fn can_search_per_class(&self) -> bool {
        self.searcher.can_search_per_class()
    }

    /// Search a single e-class (see [`Searcher::search_class`]).
    pub fn search_class(
        &self,
        egraph: &EGraph<L, A>,
        class: Id,
        limit: usize,
    ) -> Vec<Subst<L>> {
        self.searcher.search_class(egraph, class, limit)
    }

    /// Candidate classes for this rule's searcher (see
    /// [`Searcher::candidate_class_ids`]).
    pub fn candidate_class_ids(&self, egraph: &EGraph<L, A>) -> Option<Vec<Id>> {
        self.searcher.candidate_class_ids(egraph)
    }

    /// This rule's left-hand side as a [`Pattern`], when the searcher is
    /// one (custom searchers return `None`).
    pub fn searcher_pattern(&self) -> Option<&Pattern<L>> {
        self.searcher.as_pattern()
    }

    /// The searcher's semi-naive eligibility (see
    /// [`Searcher::delta_depth`]).
    pub fn delta_depth(&self) -> Option<u32> {
        self.searcher.delta_depth()
    }

    /// The searcher's global-input fingerprint (see
    /// [`Searcher::delta_fingerprint`]).
    pub fn delta_fingerprint(&self, egraph: &EGraph<L, A>) -> u64 {
        self.searcher.delta_fingerprint(egraph)
    }

    /// The searcher's guaranteed per-class yield floor (see
    /// [`Searcher::min_class_yield`]).
    pub fn min_class_yield(&self, egraph: &EGraph<L, A>) -> usize {
        self.searcher.min_class_yield(egraph)
    }

    /// A copy of this rule whose pattern searcher (if any) is replaced by
    /// the legacy [`OraclePattern`](crate::OraclePattern) matcher; rules
    /// with custom searchers are returned unchanged.
    ///
    /// Appliers are untouched, so a saturation run with oracle-ized rules
    /// is the pre-VM engine — the baseline the differential tests and the
    /// e-matching bench compare against.
    pub fn with_oracle_searcher(&self) -> Self {
        match self.searcher.as_pattern() {
            Some(p) => Rewrite {
                name: self.name.clone(),
                searcher: Arc::new(crate::OraclePattern::new(p.clone())),
                applier: Arc::clone(&self.applier),
            },
            None => self.clone(),
        }
    }

    /// This rule's right-hand side as a [`Pattern`], when the applier is
    /// one (guarded and custom appliers return `None`).
    pub fn applier_pattern(&self) -> Option<&Pattern<L>> {
        self.applier.as_pattern()
    }

    /// Apply previously found matches; returns the number of applications
    /// that changed the e-graph.
    ///
    /// With explanations enabled, every union an application performs is
    /// justified by this rule in the explanation forest (via
    /// [`EGraph::set_rule_context`]), and pattern left-hand sides are
    /// instantiated first so the recorded edge connects the *matched
    /// instance* — not whatever term happened to create the matched
    /// class's id.
    pub fn apply(&self, egraph: &mut EGraph<L, A>, matches: &[SearchMatches<L>]) -> usize {
        // With attribution on, everything this batch adds or merges is
        // charged to this rule (one Arc per batch; a no-op otherwise).
        let attributed = egraph.is_attribution_enabled();
        if attributed {
            egraph.set_attribution_origin(Some(Arc::from(self.name.as_str())));
        }
        let changed = if egraph.are_explanations_enabled() {
            self.apply_explained(egraph, matches)
        } else {
            let mut changed = 0;
            for m in matches {
                for subst in m.substs() {
                    if !self.applier.apply(egraph, m.class, subst).is_empty() {
                        changed += 1;
                    }
                }
            }
            changed
        };
        if attributed {
            egraph.set_attribution_origin(None);
        }
        changed
    }

    /// The explained apply path (see [`Rewrite::apply`]).
    fn apply_explained(&self, egraph: &mut EGraph<L, A>, matches: &[SearchMatches<L>]) -> usize {
        let name: Arc<str> = Arc::from(self.name.as_str());
        let lhs = self.searcher.as_pattern();
        let mut changed = 0;
        for m in matches {
            for subst in m.substs() {
                egraph.set_rule_context(Some((Arc::clone(&name), Arc::new(subst.clone()))));
                let class = match lhs {
                    // Precise left endpoint: the matched instance itself.
                    Some(pattern) => pattern.instantiate(egraph, subst),
                    None => m.class,
                };
                if !self.applier.apply(egraph, class, subst).is_empty() {
                    changed += 1;
                }
                egraph.set_rule_context(None);
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    #[test]
    fn pattern_pair_rewrite() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let id = eg.add_expr(&"(+ a b)".parse().unwrap());
        let rw = Rewrite::from_patterns("comm-add", "(+ ?x ?y)", "(+ ?y ?x)");
        let matches = rw.search(&eg, usize::MAX);
        assert_eq!(matches.iter().map(|m| m.len()).sum::<usize>(), 1);
        let changed = rw.apply(&mut eg, &matches);
        assert_eq!(changed, 1);
        eg.rebuild();
        let flipped = eg.lookup_expr(&"(+ b a)".parse().unwrap());
        assert_eq!(flipped, Some(eg.find(id)));
        // Re-applying discovers the already-known union: no change.
        let matches = rw.search(&eg, usize::MAX);
        let changed = rw.apply(&mut eg, &matches);
        assert_eq!(changed, 0);
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn unbound_rhs_var_panics() {
        let _ = Rewrite::<SymbolLang, ()>::from_patterns("bad", "(f ?x)", "(g ?x ?y)");
    }
}
