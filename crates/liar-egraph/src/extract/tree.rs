//! Tree-cost extraction with a Dijkstra (pending-children) worklist.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::flat::{FlatGraph, FlatSource};
use super::{CostFunction, Extract, ExtractionStats, Priority};
use crate::{Analysis, EGraph, Id, Language, RecExpr};

/// Precomputes the cheapest e-node of every e-class under a
/// [`CostFunction`] with *tree* cost accounting, then reconstructs best
/// terms on demand.
///
/// This is the extraction step of equality saturation (paper §II(c), §V-C):
/// after saturation, a cost model walks the e-graph and picks one
/// expression. A subterm referenced from two places is charged at both —
/// use [`super::DagExtractor`] to charge shared work once.
///
/// # Algorithm
///
/// Knuth's generalization of Dijkstra's algorithm to grammars
/// (superior-function shortest hyperpaths), instead of whole-graph
/// value-iteration passes: every e-node carries a counter of child
/// occurrences not yet costed, leaves seed a cheapest-first heap, and
/// popping a class *finalizes* its cost and decrements the counters of
/// the e-nodes watching it. An e-node is evaluated exactly **once** — the
/// moment its last child is finalized, so at final child costs — and
/// work is `O(nodes + classes·log classes)`, not `passes × classes`; see
/// [`ExtractionStats`]. Finality of the popped minimum relies on the
/// [`CostFunction`] contract (a node costs strictly more than each
/// child); models outside the contract can keep improving a finalized
/// class, which re-notifies the watchers that already fired (counted as
/// [`revisits`](ExtractionStats::revisits), capped per class). The
/// whole-graph reference survives as `super::oracle::tree_costs` and a
/// differential test keeps the two in agreement.
///
/// Ties between equal-cost nodes of a class resolve to the earliest node
/// in class iteration order, evaluated at the final child costs — a
/// deterministic rule independent of evaluation order (the pass-based
/// predecessor kept whichever node reached the final minimum first, a
/// history-dependent choice).
///
/// All state is positional, over the [`FlatGraph`] snapshot of the
/// e-graph — built privately by [`Extractor::new`], or shared across many
/// extractions via [`Extractor::with_flat`] (the multi-target pipeline
/// flattens one saturation once and extracts every target from it).
pub struct Extractor<'a, L: Language, A: Analysis<L>, C> {
    flat: FlatSource<'a, L, A>,
    cost_fn: C,
    /// Best tree cost per class (`INFINITY` = unextractable).
    cost: Vec<f64>,
    /// Chosen e-node per class, as an index into the flat node table
    /// (`u32::MAX` = none). A class's nodes are contiguous in class
    /// iteration order, so among nodes of one class, smaller index =
    /// earlier node — the tie-break order.
    choice: Vec<u32>,
    /// Full [`CostFunction::cost`] of each e-node as last evaluated by the
    /// worklist (`INFINITY` for nodes never evaluated). When the fixpoint
    /// ran clean (`clean`), every evaluation happened at final child
    /// costs, so these are exactly the node costs at tree-best children —
    /// [`super::DagExtractor`] derives its marginals from them without
    /// re-running the cost model.
    node_full: Vec<f64>,
    /// Whether every recorded `node_full` is trustworthy: false when the
    /// cost model violated the strictly-increasing contract (revisits, or
    /// the assign-once fallback), in which case consumers must recompute.
    clean: bool,
    stats: ExtractionStats,
}

impl<'a, L: Language, A: Analysis<L>, C: CostFunction<L, A>> Extractor<'a, L, A, C> {
    /// Compute best costs for every class (worklist fixpoint over the
    /// e-graph).
    pub fn new(egraph: &'a EGraph<L, A>, cost_fn: C) -> Self {
        Self::from_source(FlatSource::Owned(FlatGraph::new(egraph)), cost_fn)
    }

    /// Like [`Extractor::new`], but over an already-flattened e-graph —
    /// use when several cost models extract from one saturation, so the
    /// flatten is paid once (see [`FlatGraph`]).
    pub fn with_flat(flat: &'a FlatGraph<'a, L, A>, cost_fn: C) -> Self {
        Self::from_source(FlatSource::Shared(flat), cost_fn)
    }

    fn from_source(flat: FlatSource<'a, L, A>, cost_fn: C) -> Self {
        let n = flat.get().num_classes();
        let num_nodes = flat.get().num_nodes();
        let mut extractor = Extractor {
            flat,
            cost_fn,
            cost: vec![f64::INFINITY; n],
            choice: vec![u32::MAX; n],
            node_full: vec![f64::INFINITY; num_nodes],
            clean: true,
            stats: ExtractionStats::default(),
        };
        extractor.worklist_fixpoint();
        if !extractor.selection_is_acyclic() {
            // The cost model violated the strictly-increasing contract and
            // the improving fixpoint produced a cyclic selection. Fall back
            // to assign-once selection, which is acyclic by construction
            // (a class is only chosen after all of its children): sound,
            // terminating, possibly suboptimal — but only models outside
            // the contract ever reach this path.
            extractor.assign_once();
            debug_assert!(extractor.selection_is_acyclic());
        }
        extractor
    }

    /// The Dijkstra worklist: leaves seed a cheapest-first heap, popping
    /// a class finalizes its cost, and an e-node is evaluated once its
    /// last child is finalized.
    fn worklist_fixpoint(&mut self) {
        let flat = self.flat.get();
        let egraph = flat.egraph();
        let position = flat.position();
        let nodes = flat.nodes();
        let node_class = flat.node_class();
        let n = flat.num_classes();
        let mut stats = ExtractionStats {
            passes: 1,
            ..ExtractionStats::default()
        };
        let mut pending = flat.node_deps().to_vec();
        let mut cost = std::mem::take(&mut self.cost);
        let mut choice = std::mem::take(&mut self.choice);
        let mut node_full = std::mem::take(&mut self.node_full);
        let mut finalized: Vec<bool> = vec![false; n];
        // Per-class improvement cap: under the strictly-increasing
        // contract a finalized class never improves, so only a
        // contract-violating model (a cycle that keeps getting cheaper)
        // can revisit one. Stop propagating at the cap; the acyclicity
        // check in [`Extractor::new`] handles the fallout.
        let cap = n as u32 + 1;
        let mut improvements: Vec<u32> = vec![0; n];
        let mut heap: BinaryHeap<Reverse<(Priority, usize)>> = BinaryHeap::new();
        // Evaluate one e-node (every child cost is finite by now) and
        // offer it to its class, earliest-in-class-wins on cost ties.
        macro_rules! evaluate {
            ($w:expr) => {{
                let w = $w;
                stats.relaxations += 1;
                let c = self.cost_fn.cost(egraph, nodes[w], &mut |id| {
                    cost[position[egraph.find(id).index()] as usize]
                });
                node_full[w] = c;
                let wc = node_class[w] as usize;
                if c < cost[wc] && improvements[wc] < cap {
                    improvements[wc] += 1;
                    cost[wc] = c;
                    choice[wc] = w as u32;
                    heap.push(Reverse((Priority(c), wc)));
                } else if c.is_finite() && c == cost[wc] && (w as u32) < choice[wc] {
                    // Canonical tie-break: re-point the choice at the
                    // earliest node achieving the (unchanged) minimum.
                    choice[wc] = w as u32;
                }
            }};
        }
        for (w, &deps) in pending.iter().enumerate() {
            if deps == 0 {
                evaluate!(w);
            }
        }
        while let Some(Reverse((Priority(c), i))) = heap.pop() {
            if c > cost[i] {
                continue; // stale: the class improved again after this push
            }
            let first = !finalized[i];
            finalized[i] = true;
            for &w in flat.class_watchers(i) {
                let w = w as usize;
                if first {
                    pending[w] -= 1;
                    if pending[w] > 0 {
                        continue; // some child is still unfinalized
                    }
                } else {
                    // A finalized class improved (contract-violating
                    // model): re-notify the watchers that already fired.
                    if pending[w] > 0 {
                        continue;
                    }
                    stats.revisits += 1;
                }
                evaluate!(w);
            }
        }
        stats.extractable_classes = cost.iter().filter(|c| c.is_finite()).count();
        self.cost = cost;
        self.choice = choice;
        self.node_full = node_full;
        self.clean = stats.revisits == 0;
        self.stats = stats;
    }

    /// Assign-once fallback for cost models outside the strictly-increasing
    /// contract: every class keeps its *first* finite-cost node, whose
    /// children were all assigned before it — acyclic by construction.
    /// Passes are capped at `#classes + 1`, enough for any acyclic
    /// dependency chain.
    fn assign_once(&mut self) {
        let flat = self.flat.get();
        let egraph = flat.egraph();
        let position = flat.position();
        let nodes = flat.nodes();
        let node_class = flat.node_class();
        let n = flat.num_classes();
        let mut cost = vec![f64::INFINITY; n];
        let mut choice = vec![u32::MAX; n];
        let max_passes = n + 1;
        for _ in 0..max_passes {
            self.stats.passes += 1;
            let mut changed = false;
            for w in 0..nodes.len() {
                let wc = node_class[w] as usize;
                if choice[wc] != u32::MAX {
                    continue;
                }
                let known = flat
                    .node_children(w)
                    .iter()
                    .all(|&c| cost[c as usize].is_finite());
                if !known {
                    continue;
                }
                let c = self.cost_fn.cost(egraph, nodes[w], &mut |id| {
                    cost[position[egraph.find(id).index()] as usize]
                });
                if c.is_finite() {
                    cost[wc] = c;
                    choice[wc] = w as u32;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.stats.extractable_classes = cost.iter().filter(|c| c.is_finite()).count();
        self.cost = cost;
        self.choice = choice;
        self.clean = false;
    }

    /// Whether the per-class selection forms a DAG (it always does for
    /// strictly-increasing cost models; see [`CostFunction`]).
    fn selection_is_acyclic(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let flat = self.flat.get();
        let n = flat.num_classes();
        let mut color: Vec<Color> = vec![Color::White; n];
        // Iterative DFS over selection edges, three-coloring the classes.
        for start in 0..n {
            if self.choice[start] == u32::MAX || color[start] != Color::White {
                continue;
            }
            let mut stack: Vec<(u32, bool)> = vec![(start as u32, false)];
            while let Some((i, expanded)) = stack.pop() {
                let i = i as usize;
                if expanded {
                    color[i] = Color::Black;
                    continue;
                }
                match color[i] {
                    Color::Black => continue,
                    Color::Grey => return false,
                    Color::White => {}
                }
                color[i] = Color::Grey;
                stack.push((i as u32, true));
                for &c in flat.node_children(self.choice[i] as usize) {
                    match color[c as usize] {
                        Color::Grey => return false,
                        Color::White => stack.push((c, false)),
                        Color::Black => {}
                    }
                }
            }
        }
        true
    }

    /// The e-graph this extractor selected over.
    pub(super) fn egraph(&self) -> &'a EGraph<L, A> {
        self.flat.get().egraph()
    }

    /// The cost model (the DAG marginals are defined against it).
    pub(super) fn cost_fn(&self) -> &C {
        &self.cost_fn
    }

    /// The flattened e-graph this extractor ran over (shared with
    /// [`super::DagExtractor`]'s selected-set fixpoint).
    pub(super) fn flat(&self) -> &FlatGraph<'a, L, A> {
        self.flat.get()
    }

    /// Best tree cost per class index (`INFINITY` = unextractable).
    pub(super) fn cost_by_index(&self) -> &[f64] {
        &self.cost
    }

    /// Full node costs at tree-best children, when the fixpoint ran
    /// clean (see the `node_full` field); `None` forces the consumer to
    /// recompute against the cost model.
    pub(super) fn node_full_costs(&self) -> Option<&[f64]> {
        self.clean.then_some(&self.node_full[..])
    }

    /// Worklist statistics of this extraction.
    pub fn stats(&self) -> ExtractionStats {
        self.stats
    }

    /// The best cost of a class, if any term is extractable.
    pub fn best_cost(&self, id: Id) -> Option<f64> {
        let i = self.flat.get().class_index(id)?;
        self.cost[i].is_finite().then_some(self.cost[i])
    }

    /// The cheapest e-node of a class.
    pub fn best_node(&self, id: Id) -> Option<&L> {
        let i = self.flat.get().class_index(id)?;
        let w = self.choice[i];
        (w != u32::MAX).then(|| self.flat.get().nodes()[w as usize])
    }

    /// Extract the best term for a class.
    ///
    /// # Panics
    ///
    /// Panics if the class has no extractable term (impossible for classes
    /// created by adding expressions). Use [`Extractor::try_find_best`]
    /// when that is not guaranteed.
    pub fn find_best(&self, id: Id) -> (f64, RecExpr<L>) {
        Extract::find_best(self, id)
    }

    /// Extract the best term for a class, or a structured
    /// [`super::ExtractError`] when the class has no extractable term.
    pub fn try_find_best(&self, id: Id) -> Result<(f64, RecExpr<L>), super::ExtractError> {
        Extract::try_find_best(self, id)
    }

    fn build_best(&self, id: Id, expr: &mut RecExpr<L>) -> Id {
        let id = self.egraph().find(id);
        let node = self
            .best_node(id)
            .unwrap_or_else(|| panic!("class {id} has no extractable term"));
        let node = node.clone().map_children(|c| self.build_best(c, expr));
        expr.add(node)
    }
}

impl<L: Language, A: Analysis<L>, C: CostFunction<L, A>> Extract<L> for Extractor<'_, L, A, C> {
    fn best_cost(&self, id: Id) -> Option<f64> {
        Extractor::best_cost(self, id)
    }

    fn extract(&self, id: Id) -> Option<(f64, RecExpr<L>)> {
        let cost = Extractor::best_cost(self, id)?;
        let mut expr = RecExpr::default();
        self.build_best(id, &mut expr);
        Some((cost, expr))
    }
}
