//! Exact DAG-cost extraction by branch-and-bound over e-class node
//! selection.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use super::dag::DagExtractor;
use super::{marginal, CostFunction, Extract, ExtractionStats};
use crate::{Analysis, EGraph, Id, Language, RecExpr};

/// Search budget of an [`ExactExtractor`]. When exceeded, the solver
/// returns the greedy [`DagExtractor`] answer (or the best improvement
/// found so far) and reports [`ExactOutcome::Budget`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactBudget {
    /// Skip the search entirely (greedy fallback) when more classes than
    /// this are reachable from the root along finite-cost candidates.
    pub max_classes: usize,
    /// Abort after this many branch-and-bound steps (one step ≈ one
    /// decision-stack operation).
    pub max_steps: u64,
    /// Abort after this much wall-clock time (checked every 1024 steps).
    pub time_limit: Option<Duration>,
}

impl Default for ExactBudget {
    fn default() -> Self {
        ExactBudget {
            max_classes: 2048,
            max_steps: 500_000,
            time_limit: None,
        }
    }
}

/// Which answer an [`ExactReport`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactOutcome {
    /// The search ran to completion: the reported selection is a true
    /// optimum of the DAG objective (assuming non-negative marginals; see
    /// [`ExactExtractor`]).
    Optimal,
    /// The [`ExactBudget`] was exhausted first: the report carries the
    /// best selection seen — at worst the greedy [`DagExtractor`] answer,
    /// never worse.
    Budget,
}

impl ExactOutcome {
    /// Stable lower-case name, for reports and bench JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            ExactOutcome::Optimal => "optimal",
            ExactOutcome::Budget => "budget",
        }
    }
}

impl std::fmt::Display for ExactOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The result of one [`ExactExtractor::solve`] call.
#[derive(Debug, Clone)]
pub struct ExactReport<L> {
    /// DAG cost of the reported selection.
    pub cost: f64,
    /// The extracted term (node-sharing, like [`DagExtractor`]'s).
    pub expr: RecExpr<L>,
    /// Whether this is a proven optimum or a budget fallback.
    pub outcome: ExactOutcome,
    /// Branch-and-bound steps spent (0 when the class-count gate fell back
    /// to greedy without searching).
    pub steps: u64,
    /// Classes reachable from the root along finite-cost candidates — the
    /// search space the class-count gate measures.
    pub reachable_classes: usize,
}

/// One selectable e-node of a class, precomputed for the search.
struct Cand<L> {
    node: L,
    marginal: f64,
    /// Distinct canonical child classes, as positions (sorted).
    children: Vec<u32>,
}

/// An operation on the decision stack: decide a class (choose one of its
/// nodes), or close a decided class once everything below it is decided.
#[derive(Clone, Copy)]
enum Op {
    Decide(u32),
    Close(u32),
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Undecided,
    /// Decided, but its selection closure is not yet complete: candidate
    /// nodes referencing an open class are rejected, which is exactly the
    /// acyclicity constraint (an open class always lies on the current
    /// decision chain, so an edge back into it would close a cycle).
    Open,
    /// Decided with a complete, acyclic closure: safe to share.
    Done,
}

/// Exact DAG-cost extraction: solves the same objective as
/// [`DagExtractor`] — pick one node per needed class, minimizing the sum
/// of marginals of the *distinct* selected classes — but exactly, by
/// depth-first branch-and-bound instead of a greedy fixpoint.
///
/// # The search
///
/// The decision stack holds classes whose node is still to be chosen.
/// Deciding a class tries its finite-marginal candidates cheapest-first;
/// choosing a node demands its children (pushing the undecided ones), and
/// the class stays *open* — rejected as a child of any candidate — until
/// its whole closure is decided, which makes every explored selection
/// acyclic by construction and never prunes an acyclic optimum. The greedy
/// [`DagExtractor`] answer seeds the incumbent, and a partial selection is
/// pruned when its accumulated cost plus a lower bound on what is still
/// demanded (the sum of the cheapest marginals of demanded-but-undecided
/// classes) cannot beat the incumbent.
///
/// The bound is admissible for cost models with **non-negative marginals**
/// (AST size and LIAR's target models — every node adds cost on top of
/// its children). For models outside that contract the search still
/// terminates and returns a sound, acyclic selection, but
/// [`ExactOutcome::Optimal`] is no longer a proof of optimality.
///
/// # Budget
///
/// Exact extraction is exponential in the worst case. [`ExactBudget`]
/// bounds the search three ways (reachable-class gate, step count, wall
/// clock); on exhaustion the solver falls back to the best answer seen —
/// at worst the greedy answer, never worse — and the report says so.
pub struct ExactExtractor<'a, L: Language, A: Analysis<L>, C> {
    dag: DagExtractor<'a, L, A, C>,
    budget: ExactBudget,
    position: HashMap<Id, usize>,
    cands: Vec<Vec<Cand<L>>>,
    /// Cheapest finite marginal per class (`INFINITY` when unextractable).
    min_marg: Vec<f64>,
}

impl<'a, L: Language, A: Analysis<L>, C: CostFunction<L, A>> ExactExtractor<'a, L, A, C> {
    /// Run greedy extraction (the incumbent) and precompute the candidate
    /// tables; the search itself runs per root in
    /// [`ExactExtractor::solve`].
    pub fn new(egraph: &'a EGraph<L, A>, cost_fn: C) -> Self {
        let dag = DagExtractor::new(egraph, cost_fn);
        let classes = egraph.classes_sorted();
        let position: HashMap<Id, usize> = classes
            .iter()
            .enumerate()
            .map(|(i, class)| (class.id, i))
            .collect();
        let tree = dag.tree_extractor();
        let mut cands: Vec<Vec<Cand<L>>> = Vec::with_capacity(classes.len());
        let mut min_marg: Vec<f64> = Vec::with_capacity(classes.len());
        for class in &classes {
            let mut list: Vec<Cand<L>> = class
                .iter()
                .filter_map(|node| {
                    let m = marginal(tree, node);
                    if !m.is_finite() {
                        return None;
                    }
                    let mut children: Vec<u32> = node
                        .children()
                        .iter()
                        .map(|&c| position[&egraph.find(c)] as u32)
                        .collect();
                    children.sort_unstable();
                    children.dedup();
                    Some(Cand {
                        node: node.clone(),
                        marginal: m,
                        children,
                    })
                })
                .collect();
            list.sort_by(|a, b| a.marginal.total_cmp(&b.marginal));
            min_marg.push(list.first().map_or(f64::INFINITY, |c| c.marginal));
            cands.push(list);
        }
        ExactExtractor {
            dag,
            budget: ExactBudget::default(),
            position,
            cands,
            min_marg,
        }
    }

    /// Replace the default [`ExactBudget`].
    pub fn with_budget(mut self, budget: ExactBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The greedy extractor seeding the incumbent (gives access to greedy
    /// DAG costs, tree costs and [`ExtractionStats`] without re-running
    /// anything).
    pub fn dag(&self) -> &DagExtractor<'a, L, A, C> {
        &self.dag
    }

    /// Fixpoint statistics of the inner greedy extraction.
    pub fn stats(&self) -> ExtractionStats {
        self.dag.stats()
    }

    /// Solve for the best DAG-cost selection of `id` exactly, within the
    /// budget. `None` when the class has no extractable term at all.
    pub fn solve(&self, id: Id) -> Option<ExactReport<L>> {
        let egraph = self.dag.tree_extractor().egraph();
        let root = self.position[&egraph.find(id)];
        // The greedy answer: the incumbent, and the fallback of every
        // budget path.
        let (greedy_cost, greedy_expr) = self.dag.extract(id)?;
        // Class-count gate: how big is the search space?
        let reachable = self.reachable_from(root);
        if reachable > self.budget.max_classes {
            return Some(ExactReport {
                cost: greedy_cost,
                expr: greedy_expr,
                outcome: ExactOutcome::Budget,
                steps: 0,
                reachable_classes: reachable,
            });
        }
        let n = self.cands.len();
        let mut search = Search {
            min_marg: &self.min_marg,
            budget: self.budget,
            started: Instant::now(),
            steps: 0,
            aborted: false,
            state: vec![State::Undecided; n],
            demanded: vec![0u32; n],
            assign: vec![usize::MAX; n],
            ops: vec![Op::Decide(root as u32)],
            pending: self.min_marg[root],
            best: greedy_cost,
            best_assign: None,
        };
        search.demanded[root] = 1;
        search.run(&self.cands, 0.0);
        let outcome = if search.aborted {
            ExactOutcome::Budget
        } else {
            ExactOutcome::Optimal
        };
        let (cost, expr) = match search.best_assign {
            // The search found a selection strictly cheaper than greedy.
            Some(assign) => (search.best, self.rebuild(&assign, root)),
            // No improvement (or none before the budget ran out): the
            // greedy incumbent *is* the answer.
            None => (greedy_cost, greedy_expr),
        };
        Some(ExactReport {
            cost,
            expr,
            outcome,
            steps: search.steps,
            reachable_classes: reachable,
        })
    }

    /// Extract the best term for a class within the budget.
    ///
    /// # Panics
    ///
    /// Panics if the class has no extractable term. Use
    /// [`Extract::try_find_best`] when extractability is not guaranteed.
    pub fn find_best(&self, id: Id) -> (f64, RecExpr<L>) {
        Extract::find_best(self, id)
    }

    /// Classes reachable from `root` along finite-marginal candidates.
    fn reachable_from(&self, root: usize) -> usize {
        let mut seen = vec![false; self.cands.len()];
        seen[root] = true;
        let mut queue = vec![root];
        let mut count = 1;
        while let Some(x) = queue.pop() {
            for cand in &self.cands[x] {
                for &c in &cand.children {
                    let c = c as usize;
                    if !seen[c] {
                        seen[c] = true;
                        count += 1;
                        queue.push(c);
                    }
                }
            }
        }
        count
    }

    /// Reconstruct the node-sharing term of a finished assignment.
    fn rebuild(&self, assign: &[usize], root: usize) -> RecExpr<L> {
        let egraph = self.dag.tree_extractor().egraph();
        let mut expr = RecExpr::default();
        let mut memo: HashMap<usize, Id> = HashMap::new();
        self.build(egraph, assign, root, &mut expr, &mut memo);
        expr
    }

    fn build(
        &self,
        egraph: &EGraph<L, A>,
        assign: &[usize],
        x: usize,
        expr: &mut RecExpr<L>,
        memo: &mut HashMap<usize, Id>,
    ) -> Id {
        if let Some(&done) = memo.get(&x) {
            return done;
        }
        let node = self.cands[x][assign[x]].node.clone().map_children(|c| {
            let c = self.position[&egraph.find(c)];
            self.build(egraph, assign, c, expr, memo)
        });
        let index = expr.add(node);
        memo.insert(x, index);
        index
    }
}

/// Mutable search state, split from the extractor so the candidate tables
/// can be borrowed across the recursion.
struct Search<'s> {
    min_marg: &'s [f64],
    budget: ExactBudget,
    started: Instant,
    steps: u64,
    aborted: bool,
    state: Vec<State>,
    /// How many live choices demand each class (for the pending bound).
    demanded: Vec<u32>,
    /// Chosen candidate index per class (`usize::MAX` = none).
    assign: Vec<usize>,
    /// The decision stack, processed top-down; truncated on backtrack.
    ops: Vec<Op>,
    /// Lower bound on the cost still to pay: the sum of cheapest marginals
    /// of demanded-but-undecided classes.
    pending: f64,
    best: f64,
    best_assign: Option<Vec<usize>>,
}

impl Search<'_> {
    fn out_of_budget(&mut self) -> bool {
        if self.aborted {
            return true;
        }
        self.steps += 1;
        if self.steps > self.budget.max_steps {
            self.aborted = true;
            return true;
        }
        if self.steps & 1023 == 0 {
            if let Some(limit) = self.budget.time_limit {
                if self.started.elapsed() >= limit {
                    self.aborted = true;
                    return true;
                }
            }
        }
        false
    }

    /// Process the top of the decision stack and recurse. Every mutation
    /// is undone before returning, so the caller's stack frame can try its
    /// next candidate.
    fn run<L: Language>(&mut self, cands: &[Vec<Cand<L>>], acc: f64) {
        if self.out_of_budget() {
            return;
        }
        if acc + self.pending >= self.best {
            return; // even the optimistic completion cannot beat the incumbent
        }
        let Some(&op) = self.ops.last() else {
            // Stack empty: every demanded class is decided and closed.
            self.best = acc;
            self.best_assign = Some(self.assign.clone());
            return;
        };
        match op {
            Op::Close(x) => {
                self.ops.pop();
                self.state[x as usize] = State::Done;
                self.run(cands, acc);
                self.state[x as usize] = State::Open;
                self.ops.push(op);
            }
            Op::Decide(x) => {
                let x = x as usize;
                if self.state[x] != State::Undecided {
                    // Already decided via another demand above this entry.
                    self.ops.pop();
                    self.run(cands, acc);
                    self.ops.push(op);
                    return;
                }
                self.ops.pop();
                self.state[x] = State::Open;
                self.pending -= self.min_marg[x];
                for (ci, cand) in cands[x].iter().enumerate() {
                    if cand
                        .children
                        .iter()
                        .any(|&c| self.state[c as usize] == State::Open)
                    {
                        continue; // would close a cycle through the decision chain
                    }
                    // Candidates are sorted by marginal: once even this
                    // one cannot beat the incumbent, none can.
                    if acc + cand.marginal + self.pending >= self.best {
                        break;
                    }
                    let ops_mark = self.ops.len();
                    self.ops.push(Op::Close(x as u32));
                    for &c in &cand.children {
                        let c = c as usize;
                        self.demanded[c] += 1;
                        if self.state[c] == State::Undecided {
                            if self.demanded[c] == 1 {
                                self.pending += self.min_marg[c];
                            }
                            self.ops.push(Op::Decide(c as u32));
                        }
                    }
                    self.assign[x] = ci;
                    self.run(cands, acc + cand.marginal);
                    for &c in &cand.children {
                        let c = c as usize;
                        self.demanded[c] -= 1;
                        if self.state[c] == State::Undecided && self.demanded[c] == 0 {
                            self.pending -= self.min_marg[c];
                        }
                    }
                    self.ops.truncate(ops_mark);
                    if self.aborted {
                        break;
                    }
                }
                self.assign[x] = usize::MAX;
                self.state[x] = State::Undecided;
                self.pending += self.min_marg[x];
                self.ops.push(Op::Decide(x as u32));
            }
        }
    }
}

impl<L: Language, A: Analysis<L>, C: CostFunction<L, A>> Extract<L>
    for ExactExtractor<'_, L, A, C>
{
    fn best_cost(&self, id: Id) -> Option<f64> {
        self.solve(id).map(|r| r.cost)
    }

    fn extract(&self, id: Id) -> Option<(f64, RecExpr<L>)> {
        self.solve(id).map(|r| (r.cost, r.expr))
    }
}
