//! DAG-cost extraction with a Dijkstra (pending-children) worklist.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use super::flat::FlatGraph;
use super::tree::Extractor;
use super::{CostFunction, Extract, ExtractionStats, Priority};
use crate::{Analysis, EGraph, Id, Language, RecExpr};

/// Per-class state of a [`DagExtractor`]: the chosen node, the set of
/// classes its sub-DAG selects — an arena slice of class positions,
/// sorted — and the total, the sum of the set's marginals (summed in
/// position order, so totals are deterministic run to run).
struct DagChoice<L> {
    node: L,
    total: f64,
    /// `start..start + len` into the extractor's set arena. Selected sets
    /// live in one shared vector rather than one allocation per class:
    /// the fixpoint adopts ~one choice per class, and the arena turns
    /// those thousands of small vectors into appends to a single one
    /// (displaced choices leave garbage behind, a few MB at worst).
    /// Entries are bare class positions; the marginal each class is
    /// charged lives in the per-class `adopted_marginal` table, keeping
    /// the hot merge loop to 4-byte entries.
    start: u32,
    len: u32,
}

/// DAG-cost extraction: charges each selected e-class **once**, no matter
/// how many times the extracted term references it.
///
/// # The DAG cost
///
/// Every e-node is assigned a *marginal* cost: its full
/// [`CostFunction::cost`] evaluated at the tree-best costs of its
/// children, minus the sum of those child costs — i.e. the cost the node
/// adds on top of work that is already paid for. The DAG cost of a
/// selection is the sum of the marginals of the *distinct* classes it
/// reaches; the extractor runs the selected-set fixpoint with the same
/// Dijkstra worklist as [`Extractor`]: e-nodes count unfinalized child
/// occurrences, a candidate set is built the moment its last child is
/// finalized, and classes finalize cheapest-total-first (sound because a
/// candidate's set contains each child's whole set, so with non-negative
/// marginals its total is never below a child's — see
/// [`ExtractionStats`]). Candidate nodes whose sub-DAG already contains
/// the candidate's own class are rejected outright, so the selection can
/// never be cyclic, even under a cost model that violates the
/// strictly-increasing contract.
///
/// The fixpoint runs over the [`FlatGraph`] its inner [`Extractor`]
/// already used — the class table, the CSR child and watcher adjacency
/// and the recorded node costs are shared, not recomputed, so the DAG
/// pass adds only the marginal and selected-set work on top of the tree
/// pass (and [`DagExtractor::with_flat`] shares the flatten itself across
/// cost models).
///
/// Two properties follow for cost models with non-negative marginals
/// (AST size, and LIAR's target cost models — see `docs/EXTRACTION.md`):
///
/// * **On trees the strategies agree:** if the best term references every
///   class once, the marginals telescope and the DAG cost equals the tree
///   cost exactly.
/// * **DAG ≤ tree everywhere:** sharing can only remove charges, so for
///   every class the DAG cost is at most the [`Extractor`] cost.
///
/// The greedy fixpoint is not guaranteed *optimal* for the DAG objective
/// — [`super::ExactExtractor`] solves the same objective exactly by
/// branch-and-bound, with this extractor's answer as its incumbent.
///
/// The extracted [`RecExpr`] shares nodes (a class appears once in the
/// flat table no matter how often it is referenced), making the sharing
/// visible to downstream consumers.
///
/// # Example
///
/// ```
/// use liar_egraph::{AstSize, DagExtractor, EGraph, Extract, Extractor, SymbolLang};
///
/// // (g a) is shared by both children of f.
/// let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
/// let root = eg.add_expr(&"(f (g a) (g a))".parse().unwrap());
/// let tree_cost = Extractor::new(&eg, AstSize).find_best(root).0;
/// let dag = DagExtractor::new(&eg, AstSize);
/// let (dag_cost, best) = dag.find_best(root);
/// assert_eq!(tree_cost, 5.0); // f + 2·(g + a)
/// assert_eq!(dag_cost, 3.0); // f + g + a, the shared class charged once
/// assert_eq!(best.to_string(), "(f (g a) (g a))");
/// ```
pub struct DagExtractor<'a, L: Language, A: Analysis<L>, C> {
    tree: Extractor<'a, L, A, C>,
    choices: Vec<Option<DagChoice<L>>>,
    /// Backing storage of every [`DagChoice`]'s selected set.
    sets: Vec<u32>,
    stats: ExtractionStats,
}

impl<'a, L: Language, A: Analysis<L>, C: CostFunction<L, A>> DagExtractor<'a, L, A, C> {
    /// Compute the best DAG-cost selection for every class.
    ///
    /// Runs tree extraction first (the marginals are defined against
    /// tree-best child costs), then the selected-set worklist fixpoint.
    pub fn new(egraph: &'a EGraph<L, A>, cost_fn: C) -> Self {
        Self::from_tree(Extractor::new(egraph, cost_fn))
    }

    /// Like [`DagExtractor::new`], but over an already-flattened e-graph —
    /// use when several cost models extract from one saturation, so the
    /// flatten is paid once (see [`FlatGraph`]).
    pub fn with_flat(flat: &'a FlatGraph<'a, L, A>, cost_fn: C) -> Self {
        Self::from_tree(Extractor::with_flat(flat, cost_fn))
    }

    fn from_tree(tree: Extractor<'a, L, A, C>) -> Self {
        let mut extractor = DagExtractor {
            tree,
            choices: Vec::new(),
            sets: Vec::new(),
            stats: ExtractionStats::default(),
        };
        extractor.worklist_fixpoint();
        extractor
    }

    fn worklist_fixpoint(&mut self) {
        let flat = self.tree.flat();
        let egraph = flat.egraph();
        let nodes = flat.nodes();
        let node_class = flat.node_class();
        let n = flat.num_classes();
        let tree_cost = self.tree.cost_by_index();
        let mut choices: Vec<Option<DagChoice<L>>> = (0..n).map(|_| None).collect();
        let mut stats = ExtractionStats {
            passes: 1,
            ..ExtractionStats::default()
        };
        // Per-node marginals: they depend only on the fixed tree costs,
        // so compute them once, over the shared flattened arrays — same
        // arithmetic as [`super::marginal`], minus its per-child hash
        // lookups. When the tree fixpoint ran clean its recorded node
        // costs *are* the full costs at tree-best children, so the cost
        // model is not consulted at all; only contract-violating models
        // pay for re-evaluation.
        let cached_full = self.tree.node_full_costs();
        let node_marginal: Vec<f64> = (0..nodes.len())
            .map(|w| {
                let child_sum: f64 = flat
                    .node_children(w)
                    .iter()
                    .map(|&c| tree_cost[c as usize])
                    .sum();
                if !child_sum.is_finite() {
                    return f64::INFINITY;
                }
                let full = match cached_full {
                    Some(full) => full[w],
                    None => self.tree.cost_fn().cost(egraph, nodes[w], &mut |id| {
                        let i = flat
                            .class_index(id)
                            .expect("cost models only query a node's own children");
                        tree_cost[i]
                    }),
                };
                full - child_sum
            })
            .collect();
        let mut pending = flat.node_deps().to_vec();
        let mut finalized: Vec<bool> = vec![false; n];
        // Per-class adoption cap, for the same reason as the tree
        // worklist's improvement cap: only ever reached by cost models
        // outside the strictly-increasing contract.
        let cap = n as u32 + 1;
        let mut adoptions: Vec<u32> = vec![0; n];
        let mut heap: BinaryHeap<Reverse<(Priority, usize)>> = BinaryHeap::new();
        let mut sets: Vec<u32> = Vec::new();
        // The marginal each class is charged under its adopted choice.
        // Set entries don't carry their marginal: by the time a class
        // appears in a parent's candidate set it is finalized, so the
        // per-class table holds exactly the value the old per-entry copies
        // held — and the hot merge loop moves 4-byte positions instead of
        // 16-byte pairs.
        let mut adopted_marginal: Vec<f64> = vec![0.0; n];
        // Candidate scratch: the accumulator and the merge output, swapped
        // after every child. Sets are stored sorted by class position, so
        // the union of the children's sets is an iterative two-way sorted
        // merge — linear in the entries touched, no sort, no per-candidate
        // allocation.
        let mut scratch: Vec<u32> = Vec::new();
        let mut scratch2: Vec<u32> = Vec::new();
        // Evaluate one e-node (every child has a — final — choice by
        // now): build its candidate set and offer it to its class.
        macro_rules! evaluate {
            ($w:expr) => {{
                let w = $w;
                stats.relaxations += 1;
                let m = node_marginal[w];
                let wc = node_class[w] as usize;
                if m.is_finite() && adoptions[wc] < cap {
                    let current = choices[wc].as_ref().map(|c| c.total);
                    let children = flat.node_children(w);
                    // Cheap lower bound: the candidate's set contains this
                    // class and (at least) each child's whole set, so its
                    // total is at least the marginal plus the costliest
                    // child. Prunes most nodes without touching sets.
                    let mut bound = m;
                    for &child in children {
                        let choice = choices[child as usize]
                            .as_ref()
                            .expect("nodes are evaluated after their children finalize");
                        bound = bound.max(m + choice.total);
                    }
                    if current.is_none_or(|c| bound < c) {
                        // Candidate set: the class itself plus the union
                        // of its children's sets, rejected when a child's
                        // set already contains the class (a cycle).
                        let wc32 = wc as u32;
                        scratch.clear();
                        scratch.push(wc32);
                        let mut cyclic = false;
                        'build: for &child in children {
                            let choice = choices[child as usize]
                                .as_ref()
                                .expect("candidates are built only after their children finalize");
                            let lo = choice.start as usize;
                            let cs = &sets[lo..lo + choice.len as usize];
                            scratch2.clear();
                            let (mut a, mut b) = (0, 0);
                            while a < scratch.len() && b < cs.len() {
                                let pa = scratch[a];
                                let pb = cs[b];
                                if pb == wc32 {
                                    cyclic = true;
                                    break 'build;
                                }
                                if pa < pb {
                                    scratch2.push(pa);
                                    a += 1;
                                } else if pb < pa {
                                    scratch2.push(pb);
                                    b += 1;
                                } else {
                                    scratch2.push(pa);
                                    a += 1;
                                    b += 1;
                                }
                            }
                            scratch2.extend_from_slice(&scratch[a..]);
                            for &pb in &cs[b..] {
                                if pb == wc32 {
                                    cyclic = true;
                                    break 'build;
                                }
                                scratch2.push(pb);
                            }
                            std::mem::swap(&mut scratch, &mut scratch2);
                        }
                        if !cyclic {
                            // Position-ordered summation: deterministic
                            // totals, bit-identical to the sorted-merge
                            // predecessor's. The candidate's own class is
                            // charged the candidate node's marginal; every
                            // other set member is finalized, so its table
                            // entry is final too.
                            let total: f64 = scratch
                                .iter()
                                .map(|&p| {
                                    if p == wc32 {
                                        m
                                    } else {
                                        adopted_marginal[p as usize]
                                    }
                                })
                                .sum();
                            if current.is_none_or(|c| total < c) {
                                adoptions[wc] += 1;
                                adopted_marginal[wc] = m;
                                let start = sets.len() as u32;
                                sets.extend_from_slice(&scratch);
                                choices[wc] = Some(DagChoice {
                                    node: nodes[w].clone(),
                                    total,
                                    start,
                                    len: scratch.len() as u32,
                                });
                                heap.push(Reverse((Priority(total), wc)));
                            }
                        }
                    }
                }
            }};
        }
        for (w, &deps) in pending.iter().enumerate() {
            if deps == 0 {
                evaluate!(w);
            }
        }
        while let Some(Reverse((Priority(t), i))) = heap.pop() {
            if choices[i].as_ref().is_none_or(|c| t > c.total) {
                continue; // stale: the class adopted a cheaper set since
            }
            let first = !finalized[i];
            finalized[i] = true;
            for &w in flat.class_watchers(i) {
                let w = w as usize;
                if first {
                    pending[w] -= 1;
                    if pending[w] > 0 {
                        continue; // some child is still unfinalized
                    }
                } else {
                    // A finalized class adopted a cheaper set
                    // (contract-violating model): re-notify the watchers
                    // that already fired.
                    if pending[w] > 0 {
                        continue;
                    }
                    stats.revisits += 1;
                }
                evaluate!(w);
            }
        }
        stats.extractable_classes = choices.iter().flatten().count();
        self.choices = choices;
        self.sets = sets;
        self.stats = stats;
    }

    /// Fixpoint statistics of this extraction (the DAG worklist; the
    /// inner tree extraction reports its own via
    /// [`Extractor::stats`]).
    pub fn stats(&self) -> ExtractionStats {
        self.stats
    }

    fn choice(&self, id: Id) -> Option<&DagChoice<L>> {
        self.choices[self.tree.flat().class_index(id)?].as_ref()
    }

    /// The chosen e-node of a class.
    pub fn best_node(&self, id: Id) -> Option<&L> {
        self.choice(id).map(|c| &c.node)
    }

    /// The number of distinct classes the best selection of `id` reaches —
    /// the size of the extracted DAG (the tree size is `extract`'s
    /// expression length only when nothing is shared).
    pub fn selected_classes(&self, id: Id) -> Option<usize> {
        self.choice(id).map(|c| c.len as usize)
    }

    /// The tree cost of the same class under the same cost function (the
    /// inner [`Extractor`] this extraction was seeded from).
    pub fn tree_cost(&self, id: Id) -> Option<f64> {
        self.tree.best_cost(id)
    }

    /// The inner tree-cost [`Extractor`] (the DAG marginals are defined
    /// against its best costs). One `DagExtractor` therefore serves both
    /// accounting strategies without running two fixpoints from scratch.
    pub fn tree_extractor(&self) -> &Extractor<'a, L, A, C> {
        &self.tree
    }

    /// Extract the best term for a class.
    ///
    /// # Panics
    ///
    /// Panics if the class has no extractable term. Use
    /// [`DagExtractor::try_find_best`] when extractability is not
    /// guaranteed.
    pub fn find_best(&self, id: Id) -> (f64, RecExpr<L>) {
        Extract::find_best(self, id)
    }

    /// Extract the best term for a class, or a structured
    /// [`super::ExtractError`] when the class has no extractable term.
    pub fn try_find_best(&self, id: Id) -> Result<(f64, RecExpr<L>), super::ExtractError> {
        Extract::try_find_best(self, id)
    }

    fn build_best(&self, id: Id, expr: &mut RecExpr<L>, memo: &mut HashMap<Id, Id>) -> Id {
        let id = self.tree.egraph().find(id);
        if let Some(&done) = memo.get(&id) {
            return done;
        }
        let node = self
            .choice(id)
            .expect("extract only reconstructs chosen classes")
            .node
            .clone()
            .map_children(|c| self.build_best(c, expr, memo));
        let index = expr.add(node);
        memo.insert(id, index);
        index
    }
}

impl<L: Language, A: Analysis<L>, C: CostFunction<L, A>> Extract<L> for DagExtractor<'_, L, A, C> {
    fn best_cost(&self, id: Id) -> Option<f64> {
        self.choice(id).map(|c| c.total)
    }

    fn extract(&self, id: Id) -> Option<(f64, RecExpr<L>)> {
        let id = self.tree.egraph().find(id);
        let total = self.choice(id)?.total;
        let mut expr = RecExpr::default();
        self.build_best(id, &mut expr, &mut HashMap::new());
        Some((total, expr))
    }
}
