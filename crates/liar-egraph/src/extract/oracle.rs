//! Whole-graph value-iteration references for the worklist extractors.
//!
//! These are the pass-based fixpoints the priority worklists replaced: every
//! pass re-evaluates *every* class until nothing changes, so they do
//! `passes × classes` work where the worklists do `O(changed)`. They survive
//! here — costs only, no selection bookkeeping — as an executable
//! specification: differential tests assert [`super::Extractor`] and
//! [`super::DagExtractor`] agree with them on every class (tree costs
//! bit-identical; DAG costs within float-summation tolerance, because the
//! worklist sums selected-set marginals in deterministic position order
//! while this reference sums a hash map).

// Only the differential tests call these, but the module compiles in every
// build so the intra-doc links pointing here resolve.
#![allow(dead_code)]

use std::collections::HashMap;

use super::CostFunction;
use crate::{Analysis, EGraph, Id, Language};

/// Best *tree* cost of every extractable class, by improving value
/// iteration (the pre-worklist `Extractor::fixpoint`). Passes are capped at
/// `#classes + 1`, enough for any acyclic dependency chain.
pub fn tree_costs<L: Language, A: Analysis<L>, C: CostFunction<L, A>>(
    egraph: &EGraph<L, A>,
    cost_fn: C,
) -> HashMap<Id, f64> {
    tree_costs_ref(egraph, &cost_fn)
}

fn tree_costs_ref<L: Language, A: Analysis<L>, C: CostFunction<L, A>>(
    egraph: &EGraph<L, A>,
    cost_fn: &C,
) -> HashMap<Id, f64> {
    let classes = egraph.classes_sorted();
    let mut costs: HashMap<Id, f64> = HashMap::new();
    for _ in 0..classes.len() + 1 {
        let mut changed = false;
        for class in &classes {
            let mut min = f64::INFINITY;
            for node in class.iter() {
                let known = node.all(|c| costs.contains_key(&egraph.find(c)));
                if !known {
                    continue;
                }
                let c = cost_fn.cost(egraph, node, &mut |id| costs[&egraph.find(id)]);
                min = min.min(c);
            }
            if min.is_finite() && costs.get(&class.id).is_none_or(|&cur| min < cur) {
                costs.insert(class.id, min);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    costs
}

/// Best greedy *DAG* cost of every extractable class, by the pre-worklist
/// selected-set pass fixpoint (the old `DagExtractor::fixpoint`): each
/// class tracks the set of classes its choice selects, each charged its
/// marginal against the tree-best costs once; passes repeat until no class
/// adopts a strictly cheaper set.
pub fn dag_costs<L: Language, A: Analysis<L>, C: CostFunction<L, A>>(
    egraph: &EGraph<L, A>,
    cost_fn: C,
) -> HashMap<Id, f64> {
    struct Choice {
        total: f64,
        set: HashMap<Id, f64>,
    }
    let tree = tree_costs_ref(egraph, &cost_fn);
    let marginal = |node: &L| -> f64 {
        let mut child_sum = 0.0;
        let mut all_known = true;
        node.for_each(|c| match tree.get(&egraph.find(c)) {
            Some(&c) => child_sum += c,
            None => all_known = false,
        });
        if !all_known {
            return f64::INFINITY;
        }
        let full = cost_fn.cost(egraph, node, &mut |id| tree[&egraph.find(id)]);
        full - child_sum
    };
    let classes = egraph.classes_sorted();
    let mut choices: HashMap<Id, Choice> = HashMap::new();
    for _ in 0..classes.len() + 1 {
        let mut changed = false;
        for class in &classes {
            let mut current = choices.get(&class.id).map(|c| c.total);
            'node: for node in class.iter() {
                let m = marginal(node);
                if !m.is_finite() {
                    continue;
                }
                let mut set: HashMap<Id, f64> = HashMap::new();
                set.insert(class.id, m);
                for &child in node.children() {
                    let child = egraph.find(child);
                    let Some(cc) = choices.get(&child) else {
                        continue 'node; // child has no choice yet
                    };
                    if cc.set.contains_key(&class.id) {
                        continue 'node; // selecting this node would be cyclic
                    }
                    for (&id, &cm) in &cc.set {
                        set.entry(id).or_insert(cm);
                    }
                }
                let total: f64 = set.values().sum();
                if current.is_none_or(|c| total < c) {
                    choices.insert(class.id, Choice { total, set });
                    current = Some(total);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    choices.into_iter().map(|(id, c)| (id, c.total)).collect()
}
