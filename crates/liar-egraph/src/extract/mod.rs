//! Cost-based extraction: picking one best term out of a saturated e-graph.
//!
//! Three strategies implement the common [`Extract`] trait:
//!
//! * [`Extractor`] — *tree* costs: a shared subterm is charged once per
//!   use, exactly as if the extracted expression were a tree. This is the
//!   classic extraction of equality saturation (paper §II(c), §V-C) and
//!   the strategy whose per-step results the pipeline reports.
//! * [`DagExtractor`] — *DAG* costs: each selected e-class is charged
//!   once, no matter how many times the extracted term refers to it. This
//!   is the right accounting for CSE-heavy rewrites (a hoisted `dot`
//!   reused by two rows costs one `dot`, not two).
//! * [`ExactExtractor`] — the same DAG objective solved *exactly* by
//!   branch-and-bound over e-class node selection, with the greedy
//!   [`DagExtractor`] result as the incumbent bound and a budget that
//!   falls back to the greedy answer ([`ExactOutcome`] reports which
//!   answer you got).
//!
//! [`Extractor`] and [`DagExtractor`] both run **Dijkstra priority
//! worklists** (Knuth's grammar generalization of Dijkstra's algorithm):
//! every e-node counts its unfinalized child occurrences, leaves seed a
//! cheapest-first heap, popping a class finalizes its cost, and an e-node
//! is evaluated exactly once — when its last child finalizes. Total work
//! is `O(nodes + classes·log classes)` rather than `passes × classes`.
//! [`ExtractionStats`] counts the evaluations and re-visits; the
//! whole-graph value-iteration they replaced survives in [`oracle`] as a
//! differential reference.
//!
//! See `docs/EXTRACTION.md` at the repo root for the full story, including
//! when the strategies agree and how the DAG cost is defined.

use crate::{Analysis, EGraph, Id, Language, RecExpr};

mod dag;
mod exact;
mod flat;
pub mod oracle;
mod tree;

pub use dag::DagExtractor;
pub use exact::{ExactBudget, ExactExtractor, ExactOutcome, ExactReport};
pub use flat::FlatGraph;
pub use tree::Extractor;

/// A local cost model: the cost of a node given its children's best costs.
///
/// Costs are `f64` because the paper's library cost models use fractional
/// discount factors (`.8N`, `.7NM`, …). The e-graph is passed in so a cost
/// model can consult e-class analyses (LIAR reads array extents from `Dim`
/// leaves this way).
///
/// Implementations should be *strictly increasing*: a node's cost should be
/// strictly greater than each child's cost. [`Extractor`] is nevertheless
/// safe (it never hangs or selects a cyclic term) for models that violate
/// this, at the price of a possibly suboptimal — but still sound —
/// selection.
pub trait CostFunction<L: Language, A: Analysis<L>> {
    /// Cost of `enode`, where `child_cost` gives the current best cost of
    /// a child class (`f64::INFINITY` when not yet known).
    fn cost<F: FnMut(Id) -> f64>(
        &self,
        egraph: &EGraph<L, A>,
        enode: &L,
        child_cost: &mut F,
    ) -> f64;

    /// Cost of a whole term (mainly for tests and reporting).
    ///
    /// # Invariant
    ///
    /// `expr` must be non-empty: an empty [`RecExpr`] has no root and
    /// therefore no cost. Debug builds assert this; release builds return
    /// `0.0` for backwards compatibility.
    fn cost_expr(&self, egraph: &EGraph<L, A>, expr: &RecExpr<L>) -> f64 {
        debug_assert!(
            !expr.is_empty(),
            "cost_expr on an empty expression — an empty RecExpr has no root"
        );
        let mut costs: Vec<f64> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let c = self.cost(egraph, node, &mut |id| costs[id.index()]);
            costs.push(c);
        }
        costs.last().copied().unwrap_or(0.0)
    }
}

/// AST size: every node costs 1 plus its children.
#[derive(Debug, Clone, Copy, Default)]
pub struct AstSize;

impl<L: Language, A: Analysis<L>> CostFunction<L, A> for AstSize {
    fn cost<F: FnMut(Id) -> f64>(
        &self,
        _egraph: &EGraph<L, A>,
        enode: &L,
        child_cost: &mut F,
    ) -> f64 {
        enode.fold(1.0, |acc, id| acc + child_cost(id))
    }
}

/// AST depth: one plus the maximum child depth.
#[derive(Debug, Clone, Copy, Default)]
pub struct AstDepth;

impl<L: Language, A: Analysis<L>> CostFunction<L, A> for AstDepth {
    fn cost<F: FnMut(Id) -> f64>(
        &self,
        _egraph: &EGraph<L, A>,
        enode: &L,
        child_cost: &mut F,
    ) -> f64 {
        enode.fold(1.0, |acc, id| acc.max(1.0 + child_cost(id)))
    }
}

/// Extraction failed: the class has no finite-cost term under the active
/// cost model.
///
/// Every candidate node of the class (transitively) costs infinity — in
/// LIAR this means the class only contains library calls the active target
/// does not offer (e.g. an `axpy` call extracted under the PyTorch model).
/// Classes created by adding expressions always have at least their
/// original term, so this is a *request* problem, not an e-graph
/// invariant violation: [`Extract::try_find_best`] surfaces it as a value
/// and the serve daemon maps it to a structured protocol error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractError {
    /// The class with no extractable term (as passed in, not canonicalized).
    pub class: Id,
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "class {} has no extractable term under this cost model",
            self.class
        )
    }
}

impl std::error::Error for ExtractError {}

/// The common interface of the extraction strategies.
///
/// [`Extractor`] (tree costs), [`DagExtractor`] (DAG costs) and
/// [`ExactExtractor`] (exact DAG costs) implement this, so downstream code
/// — the multi-target pipeline, the extraction gym — can be written once
/// against any strategy.
///
/// # Example
///
/// ```
/// use liar_egraph::{AstSize, DagExtractor, EGraph, Extract, Extractor, SymbolLang};
///
/// fn best_under<E: Extract<SymbolLang>>(e: &E, id: liar_egraph::Id) -> f64 {
///     e.extract(id).expect("extractable").0
/// }
///
/// let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
/// let root = eg.add_expr(&"(f (g a) (g a))".parse().unwrap());
/// let tree = Extractor::new(&eg, AstSize);
/// let dag = DagExtractor::new(&eg, AstSize);
/// assert_eq!(best_under(&tree, root), 5.0); // f + 2·(g + a): (g a) charged twice
/// assert_eq!(best_under(&dag, root), 3.0); // f + g + a: each class charged once
/// ```
pub trait Extract<L: Language> {
    /// The best cost of a class under this strategy, if any term is
    /// extractable from it.
    fn best_cost(&self, id: Id) -> Option<f64>;

    /// Extract the best term for a class together with its cost, or
    /// `None` when the class has no extractable term (every candidate
    /// node has infinite cost — e.g. a library call the active target
    /// does not offer).
    fn extract(&self, id: Id) -> Option<(f64, RecExpr<L>)>;

    /// Extract the best term for a class, or a structured
    /// [`ExtractError`] when the class has no extractable term.
    ///
    /// Prefer this over [`Extract::find_best`] anywhere the input is not
    /// known to be extractable — a request for a foreign target's library
    /// call should become an error reply, not a worker panic.
    fn try_find_best(&self, id: Id) -> Result<(f64, RecExpr<L>), ExtractError> {
        self.extract(id).ok_or(ExtractError { class: id })
    }

    /// Extract the best term for a class.
    ///
    /// # Panics
    ///
    /// Panics if the class has no extractable term (impossible for classes
    /// created by adding expressions). Use [`Extract::try_find_best`] when
    /// that is not guaranteed.
    fn find_best(&self, id: Id) -> (f64, RecExpr<L>) {
        self.try_find_best(id).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Statistics of one extraction fixpoint, for reporting (the extract bench
/// and the multi-target pipeline surface these).
///
/// The worklist extractors flatten the e-nodes in one seeding sweep
/// (`passes == 1`) and then evaluate each e-node once, when its last
/// child is finalized: `relaxations` counts the e-node evaluations,
/// `revisits` the re-evaluations forced by a cost model outside the
/// strictly-increasing contract (zero for well-behaved models) — where
/// the old whole-graph value iteration (`oracle`) paid
/// `passes × classes` full-class evaluations instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractionStats {
    /// Full sweeps over the e-graph (1 for the worklist extractors: the
    /// seeding sweep; the `oracle` reference counts every pass here).
    pub passes: usize,
    /// Classes with a finite-cost selection.
    pub extractable_classes: usize,
    /// E-node evaluations, total. At most one per e-node for cost models
    /// honoring the strictly-increasing contract.
    pub relaxations: usize,
    /// E-node re-evaluations after a *finalized* class improved — only a
    /// cost model outside the strictly-increasing contract can force
    /// these; zero otherwise.
    pub revisits: usize,
}

/// The marginal cost of `node` against `tree`'s best costs: the node's
/// full cost at the tree-best child costs, minus the sum of those child
/// costs — i.e. the cost the node adds on top of work that is already
/// paid for. Infinite when the node itself costs infinity or any child is
/// unextractable. Shared by the greedy [`DagExtractor`] and the
/// [`ExactExtractor`], which optimize the same objective.
pub(crate) fn marginal<L: Language, A: Analysis<L>, C: CostFunction<L, A>>(
    tree: &Extractor<'_, L, A, C>,
    node: &L,
) -> f64 {
    let egraph = tree.egraph();
    let mut child_sum = 0.0;
    let mut all_known = true;
    node.for_each(|c| match tree.best_cost(c) {
        Some(c) => child_sum += c,
        None => all_known = false,
    });
    if !all_known {
        return f64::INFINITY;
    }
    let full = tree.cost_fn().cost(egraph, node, &mut |id| {
        tree.best_cost(id).expect("all children known")
    });
    full - child_sum
}

/// A total order on `f64` priorities for the worklists (`total_cmp`:
/// `-inf < … < inf < NaN`; costs are never NaN in practice).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Priority(pub f64);

impl Eq for Priority {}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rewrite, Runner, SymbolLang};

    #[test]
    fn ast_size_picks_smaller_member() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let big = eg.add_expr(&"(+ (+ a 0) 0)".parse().unwrap());
        let small = eg.add_expr(&"a".parse().unwrap());
        eg.union(big, small);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(big);
        assert_eq!(best.to_string(), "a");
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn extraction_descends_through_children() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(f (+ a 0))".parse().unwrap());
        let rw = Rewrite::<SymbolLang, ()>::from_patterns("add0", "(+ ?x 0)", "?x");
        let mut runner = Runner::new(eg);
        runner.run(&[rw]);
        let ex = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = ex.find_best(root);
        assert_eq!(best.to_string(), "(f a)");
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn ast_depth() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(f (g a) b)".parse().unwrap());
        let ex = Extractor::new(&eg, AstDepth);
        assert_eq!(ex.best_cost(root), Some(3.0));
    }

    #[test]
    fn cost_expr_matches_extracted_cost() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(+ (* a b) c)".parse().unwrap());
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(root);
        assert_eq!(cost, AstSize.cost_expr(&eg, &best));
    }

    #[test]
    fn custom_cost_function_prefers_shift() {
        struct ShiftCheap;
        impl CostFunction<SymbolLang, ()> for ShiftCheap {
            fn cost<F: FnMut(Id) -> f64>(
                &self,
                _eg: &EGraph<SymbolLang, ()>,
                enode: &SymbolLang,
                child: &mut F,
            ) -> f64 {
                let op_cost = match enode.op.as_str() {
                    "/" => 10.0,
                    "<<" => 1.0,
                    _ => 1.0,
                };
                enode.fold(op_cost, |acc, id| acc + child(id))
            }
        }
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(/ a 2)".parse().unwrap());
        let rw =
            Rewrite::<SymbolLang, ()>::from_patterns("div2", "(/ ?x 2)", "(<< ?x 1)");
        let mut runner = Runner::new(eg);
        runner.run(&[rw]);
        let ex = Extractor::new(&runner.egraph, ShiftCheap);
        let (_, best) = ex.find_best(root);
        assert_eq!(best.to_string(), "(<< a 1)");
    }

    /// A cost model that violates the strictly-increasing contract: `f`
    /// and `g` *halve* their child's cost, so around the cycle
    /// `a = {x, (f b)}`, `b = {(g a)}` every trip gets cheaper and the
    /// naive improving fixpoint would chase it forever (and select it).
    struct Halving;
    impl CostFunction<SymbolLang, ()> for Halving {
        fn cost<F: FnMut(Id) -> f64>(
            &self,
            _eg: &EGraph<SymbolLang, ()>,
            enode: &SymbolLang,
            child: &mut F,
        ) -> f64 {
            match enode.op.as_str() {
                "f" | "g" => 0.5 * enode.fold(0.0, |acc, id| acc + child(id)),
                _ => enode.fold(1.0, |acc, id| acc + child(id)),
            }
        }
    }

    /// An e-graph where class `a = {x, (f b)}` and `b = {(g a)}` form a
    /// selection cycle under a non-strictly-increasing model.
    fn cyclic_temptation() -> (EGraph<SymbolLang, ()>, Id) {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let a = eg.add_expr(&"x".parse().unwrap());
        let ga = eg.add(SymbolLang::new("g", vec![a]));
        let fga = eg.add(SymbolLang::new("f", vec![ga]));
        eg.union(a, fga);
        eg.rebuild();
        (eg, a)
    }

    #[test]
    fn non_increasing_cost_model_terminates_without_cycles() {
        let (eg, a) = cyclic_temptation();
        let ex = Extractor::new(&eg, Halving);
        // Must terminate and reconstruct a finite term (the acyclic `x`).
        let (cost, best) = ex.find_best(a);
        assert_eq!(best.to_string(), "x");
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn dag_extractor_rejects_cycles_under_non_increasing_model() {
        let (eg, a) = cyclic_temptation();
        let ex = DagExtractor::new(&eg, Halving);
        let (_, best) = ex.find_best(a);
        assert_eq!(best.to_string(), "x");
    }

    #[test]
    fn exact_extractor_rejects_cycles_under_non_increasing_model() {
        let (eg, a) = cyclic_temptation();
        let ex = ExactExtractor::new(&eg, Halving);
        let report = ex.solve(a).expect("extractable");
        assert_eq!(report.expr.to_string(), "x");
    }

    struct NoH;
    impl CostFunction<SymbolLang, ()> for NoH {
        fn cost<F: FnMut(Id) -> f64>(
            &self,
            _eg: &EGraph<SymbolLang, ()>,
            enode: &SymbolLang,
            child: &mut F,
        ) -> f64 {
            let op = if enode.op.as_str() == "h" {
                f64::INFINITY
            } else {
                1.0
            };
            enode.fold(op, |acc, id| acc + child(id))
        }
    }

    #[test]
    fn unextractable_class_reports_none() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        // `(h a)` is the only member of its class: infinite under NoH.
        let root = eg.add_expr(&"(k (h a))".parse().unwrap());
        let inner = eg.lookup_expr(&"(h a)".parse().unwrap()).unwrap();
        let tree = Extractor::new(&eg, NoH);
        assert_eq!(tree.best_cost(inner), None);
        assert_eq!(tree.best_cost(root), None);
        assert!(Extract::extract(&tree, root).is_none());
        let dag = DagExtractor::new(&eg, NoH);
        assert_eq!(Extract::best_cost(&dag, root), None);
        assert!(dag.extract(root).is_none());
        // The leaf `a` is still extractable under both strategies.
        let leaf = eg.lookup_expr(&"a".parse().unwrap()).unwrap();
        assert_eq!(tree.best_cost(leaf), Some(1.0));
        assert_eq!(Extract::best_cost(&dag, leaf), Some(1.0));
    }

    #[test]
    fn unextractable_class_is_a_structured_error() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(k (h a))".parse().unwrap());
        let tree = Extractor::new(&eg, NoH);
        let err = Extract::try_find_best(&tree, root).unwrap_err();
        assert_eq!(err, ExtractError { class: root });
        assert!(err.to_string().contains("no extractable term"));
        let dag = DagExtractor::new(&eg, NoH);
        assert_eq!(
            Extract::try_find_best(&dag, root).unwrap_err().class,
            root
        );
        // Extractable classes answer Ok.
        let leaf = eg.lookup_expr(&"a".parse().unwrap()).unwrap();
        assert!(Extract::try_find_best(&tree, leaf).is_ok());
    }

    #[test]
    fn dag_cost_equals_tree_cost_on_trees() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        // No class is referenced twice: a genuine tree.
        let root = eg.add_expr(&"(f (g a) (h b))".parse().unwrap());
        let tree = Extractor::new(&eg, AstSize);
        let dag = DagExtractor::new(&eg, AstSize);
        assert_eq!(tree.best_cost(root), Extract::best_cost(&dag, root));
        assert_eq!(tree.find_best(root).1, dag.find_best(root).1);
    }

    #[test]
    fn dag_extractor_shares_across_rewrites() {
        // After rewriting, both arms of + are the same class; DAG cost
        // charges the shared (* a b) once.
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(+ (* a b) (* b a))".parse().unwrap());
        let rw = Rewrite::<SymbolLang, ()>::from_patterns(
            "mul-comm",
            "(* ?x ?y)",
            "(* ?y ?x)",
        );
        let mut runner = Runner::new(eg).with_iter_limit(3);
        runner.run(&[rw]);
        let tree = Extractor::new(&runner.egraph, AstSize);
        let dag = DagExtractor::new(&runner.egraph, AstSize);
        let tree_cost = tree.best_cost(root).unwrap();
        let dag_cost = Extract::best_cost(&dag, root).unwrap();
        assert_eq!(tree_cost, 7.0);
        assert_eq!(dag_cost, 4.0, "+ and one shared (* a b) sub-DAG");
        // The flat expression shares the multiplied class: 4 distinct
        // nodes even though the term references (* a b) twice.
        let (_, best) = dag.find_best(root);
        assert_eq!(best.len(), 4);
    }

    /// Regression: a class whose cheapest node sorts *after* costlier
    /// ones must still converge to the minimum regardless of the order
    /// the worklist relaxes classes in.
    #[test]
    fn dag_picks_cheapest_node_regardless_of_scan_order() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let big = eg.add_expr(&"(a x y)".parse().unwrap());
        let mid = eg.add_expr(&"(b x)".parse().unwrap());
        let leaf = eg.add_expr(&"z".parse().unwrap());
        eg.union(big, mid);
        eg.union(big, leaf);
        eg.rebuild();
        let tree = Extractor::new(&eg, AstSize);
        let dag = DagExtractor::new(&eg, AstSize);
        assert_eq!(tree.best_cost(big), Some(1.0));
        assert_eq!(
            Extract::best_cost(&dag, big),
            Some(1.0),
            "DAG cost must not exceed the tree cost"
        );
        assert_eq!(dag.find_best(big).1.to_string(), "z");
    }

    #[test]
    fn dag_never_exceeds_tree_on_random_unions() {
        // A little deterministic stress: chains with injected sharing.
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let exprs = [
            "(f (g (h a)) (g (h a)))",
            "(+ (* a b) (+ (* a b) (* a b)))",
            "(k (k (k (k a))))",
        ];
        let roots: Vec<Id> = exprs
            .iter()
            .map(|s| eg.add_expr(&s.parse().unwrap()))
            .collect();
        eg.union(roots[0], roots[2]);
        eg.rebuild();
        let tree = Extractor::new(&eg, AstSize);
        let dag = DagExtractor::new(&eg, AstSize);
        for class in eg.classes() {
            let (t, d) = (tree.best_cost(class.id), Extract::best_cost(&dag, class.id));
            match (t, d) {
                (Some(t), Some(d)) => assert!(d <= t, "class {}: dag {d} > tree {t}", class.id),
                (None, None) => {}
                _ => panic!("extractability diverged on class {}", class.id),
            }
        }
        assert!(dag.stats().passes >= 1);
        assert_eq!(dag.stats().extractable_classes, eg.num_classes());
    }

    /// The worklist extractors agree with the whole-graph value-iteration
    /// reference on every class: bit-identical tree costs, DAG costs
    /// within float-summation tolerance (see [`oracle`]).
    #[test]
    fn worklist_matches_oracle_on_rewritten_graphs() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        for s in [
            "(f (g (h a)) (g (h a)))",
            "(+ (* a b) (+ (* a b) (* a b)))",
            "(k (k (k (k a))))",
        ] {
            eg.add_expr(&s.parse().unwrap());
        }
        let rw = Rewrite::<SymbolLang, ()>::from_patterns("assoc", "(+ ?x (+ ?y ?z))", "(+ (+ ?x ?y) ?z)");
        let mut runner = Runner::new(eg).with_iter_limit(4);
        runner.run(&[rw]);
        let eg = &runner.egraph;
        let tree = Extractor::new(eg, AstSize);
        let dag = DagExtractor::new(eg, AstSize);
        let oracle_tree = oracle::tree_costs(eg, AstSize);
        let oracle_dag = oracle::dag_costs(eg, AstSize);
        for class in eg.classes() {
            assert_eq!(
                tree.best_cost(class.id),
                oracle_tree.get(&class.id).copied(),
                "tree cost diverged on class {}",
                class.id
            );
            match (Extract::best_cost(&dag, class.id), oracle_dag.get(&class.id)) {
                (Some(d), Some(&o)) => assert!(
                    (d - o).abs() < 1e-9,
                    "dag cost diverged on class {}: worklist {d}, oracle {o}",
                    class.id
                ),
                (None, None) => {}
                (d, o) => panic!("dag extractability diverged on {}: {d:?} vs {o:?}", class.id),
            }
        }
    }

    #[test]
    fn worklist_stats_count_relaxations() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add_expr(&"(f (g (h a)) (g (h a)))".parse().unwrap());
        let tree = Extractor::new(&eg, AstSize);
        let stats = tree.stats();
        assert_eq!(stats.passes, 1, "worklist does one seeding sweep");
        assert!(stats.relaxations >= eg.num_classes());
        // Children precede parents in this graph: nothing to re-visit.
        assert_eq!(stats.revisits, 0, "{stats:?}");
    }
}
