//! The flattened e-graph the worklist extractors run over.

use crate::{Analysis, EClass, EGraph, Id, Language};

/// A positional, cost-model-independent snapshot of an e-graph, shared by
/// the worklist extractors.
///
/// Flattening an e-graph — sorting the classes, assigning each a dense
/// index, laying every e-node out in one vector and building the CSR
/// child/watcher adjacency — depends only on the e-graph, not on the cost
/// model, yet it is a significant slice of an extraction. Building a
/// `FlatGraph` once and handing it to [`super::Extractor::with_flat`] /
/// [`super::DagExtractor::with_flat`] amortizes that work across every
/// cost model extracted from the same saturation — exactly the
/// multi-target pipeline's "saturate once, extract everywhere" shape,
/// extended to the flatten.
///
/// [`super::Extractor::new`] builds a private one, so single-target
/// callers never see this type.
///
/// # Example
///
/// ```
/// use liar_egraph::{AstDepth, AstSize, EGraph, Extractor, FlatGraph, SymbolLang};
///
/// let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
/// let root = eg.add_expr(&"(f (g a) (g a))".parse().unwrap());
/// let flat = FlatGraph::new(&eg); // once…
/// let size = Extractor::with_flat(&flat, AstSize); // …many extractions
/// let depth = Extractor::with_flat(&flat, AstDepth);
/// assert_eq!(size.best_cost(root), Some(5.0));
/// assert_eq!(depth.best_cost(root), Some(3.0));
/// ```
pub struct FlatGraph<'a, L: Language, A: Analysis<L>> {
    egraph: &'a EGraph<L, A>,
    /// E-classes sorted by id; all per-class vectors index into this.
    classes: Vec<&'a EClass<L, A::Data>>,
    /// Canonical class id → class index (`u32::MAX` for non-canonical
    /// ids; canonical ids are class ids, so the last sorted class bounds
    /// the table).
    position: Vec<u32>,
    /// Every e-node, flattened class by class. A class's nodes are
    /// contiguous in class iteration order, so among nodes of one class,
    /// smaller index = earlier node — the extractors' tie-break order.
    nodes: Vec<&'a L>,
    /// Owning class index per e-node.
    node_class: Vec<u32>,
    /// Child occurrence count per e-node (the pending-counter seed of the
    /// Dijkstra worklists).
    node_deps: Vec<u32>,
    /// Child *class indices* per e-node, CSR layout: node `w`'s children
    /// are `child_data[child_start[w]..child_start[w + 1]]`.
    child_start: Vec<u32>,
    child_data: Vec<u32>,
    /// E-nodes watching each class (the reverse of `child_data`, with
    /// multiplicity), CSR layout over class indices.
    watcher_start: Vec<u32>,
    watcher_data: Vec<u32>,
}

impl<'a, L: Language, A: Analysis<L>> FlatGraph<'a, L, A> {
    /// Flatten `egraph` (one sweep over all e-nodes). The watcher CSR is
    /// the transpose of the child CSR: count per class, prefix-sum, then
    /// a fill pass with a moving cursor.
    pub fn new(egraph: &'a EGraph<L, A>) -> Self {
        let classes = egraph.classes_sorted();
        let n = classes.len();
        let max_id = classes.last().map_or(0, |c| c.id.index());
        let mut position: Vec<u32> = vec![u32::MAX; max_id + 1];
        for (i, class) in classes.iter().enumerate() {
            position[class.id.index()] = i as u32;
        }
        let mut nodes: Vec<&L> = Vec::new();
        let mut node_class: Vec<u32> = Vec::new();
        let mut node_deps: Vec<u32> = Vec::new();
        let mut child_start: Vec<u32> = vec![0];
        let mut child_data: Vec<u32> = Vec::new();
        let mut watcher_start: Vec<u32> = vec![0; n + 1];
        for (i, class) in classes.iter().enumerate() {
            for node in class.iter() {
                let mut deps = 0u32;
                node.for_each(|c| {
                    deps += 1;
                    let pos = position[egraph.find(c).index()];
                    child_data.push(pos);
                    watcher_start[pos as usize + 1] += 1;
                });
                child_start.push(child_data.len() as u32);
                nodes.push(node);
                node_class.push(i as u32);
                node_deps.push(deps);
            }
        }
        for i in 0..n {
            watcher_start[i + 1] += watcher_start[i];
        }
        let mut cursor: Vec<u32> = watcher_start[..n].to_vec();
        let mut watcher_data: Vec<u32> = vec![0; child_data.len()];
        for (w, window) in child_start.windows(2).enumerate() {
            for &pos in &child_data[window[0] as usize..window[1] as usize] {
                watcher_data[cursor[pos as usize] as usize] = w as u32;
                cursor[pos as usize] += 1;
            }
        }
        FlatGraph {
            egraph,
            classes,
            position,
            nodes,
            node_class,
            node_deps,
            child_start,
            child_data,
            watcher_start,
            watcher_data,
        }
    }

    /// The e-graph this is a snapshot of.
    pub fn egraph(&self) -> &'a EGraph<L, A> {
        self.egraph
    }

    /// Number of e-classes (the range of the dense class index).
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of flattened e-nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The dense class index of an id, if it names a class.
    pub(super) fn class_index(&self, id: Id) -> Option<usize> {
        let pos = *self.position.get(self.egraph.find(id).index())?;
        (pos != u32::MAX).then_some(pos as usize)
    }

    /// Canonical class id → class index table (`u32::MAX` gaps), for hot
    /// paths that have already canonicalized.
    pub(super) fn position(&self) -> &[u32] {
        &self.position
    }

    /// The flattened e-nodes, class by class.
    pub(super) fn nodes(&self) -> &[&'a L] {
        &self.nodes
    }

    /// Owning class index per flattened e-node.
    pub(super) fn node_class(&self) -> &[u32] {
        &self.node_class
    }

    /// Child occurrence count per flattened e-node.
    pub(super) fn node_deps(&self) -> &[u32] {
        &self.node_deps
    }

    /// Child class indices of flattened node `w` (CSR row).
    pub(super) fn node_children(&self, w: usize) -> &[u32] {
        &self.child_data[self.child_start[w] as usize..self.child_start[w + 1] as usize]
    }

    /// E-nodes watching class `i` (CSR row, with multiplicity).
    pub(super) fn class_watchers(&self, i: usize) -> &[u32] {
        &self.watcher_data[self.watcher_start[i] as usize..self.watcher_start[i + 1] as usize]
    }
}

/// An owned-or-borrowed [`FlatGraph`]: [`super::Extractor::new`] flattens
/// for itself, [`super::Extractor::with_flat`] shares a caller's.
// One per extractor, moved once at construction: boxing the owned
// variant would buy nothing but a pointer chase on every access.
#[allow(clippy::large_enum_variant)]
pub(super) enum FlatSource<'a, L: Language, A: Analysis<L>> {
    Owned(FlatGraph<'a, L, A>),
    Shared(&'a FlatGraph<'a, L, A>),
}

impl<'a, L: Language, A: Analysis<L>> FlatSource<'a, L, A> {
    pub(super) fn get(&self) -> &FlatGraph<'a, L, A> {
        match self {
            FlatSource::Owned(flat) => flat,
            FlatSource::Shared(flat) => flat,
        }
    }
}
