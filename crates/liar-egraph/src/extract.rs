//! Cost-based extraction of a single best term per e-class.

use std::collections::HashMap;

use crate::{Analysis, EGraph, Id, Language, RecExpr};

/// A local cost model: the cost of a node given its children's best costs.
///
/// Costs are `f64` because the paper's library cost models use fractional
/// discount factors (`.8N`, `.7NM`, …). The e-graph is passed in so a cost
/// model can consult e-class analyses (LIAR reads array extents from `Dim`
/// leaves this way).
///
/// Implementations must be *strictly increasing*: a node's cost must be
/// strictly greater than each child's cost, otherwise extraction could
/// select a cyclic "best" term.
pub trait CostFunction<L: Language, A: Analysis<L>> {
    /// Cost of `enode`, where `child_cost` gives the current best cost of
    /// a child class (`f64::INFINITY` when not yet known).
    fn cost(
        &self,
        egraph: &EGraph<L, A>,
        enode: &L,
        child_cost: &mut dyn FnMut(Id) -> f64,
    ) -> f64;

    /// Cost of a whole term (mainly for tests and reporting).
    fn cost_expr(&self, egraph: &EGraph<L, A>, expr: &RecExpr<L>) -> f64 {
        let mut costs: Vec<f64> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let c = self.cost(egraph, node, &mut |id| costs[id.index()]);
            costs.push(c);
        }
        costs.last().copied().unwrap_or(0.0)
    }
}

/// AST size: every node costs 1 plus its children.
#[derive(Debug, Clone, Copy, Default)]
pub struct AstSize;

impl<L: Language, A: Analysis<L>> CostFunction<L, A> for AstSize {
    fn cost(
        &self,
        _egraph: &EGraph<L, A>,
        enode: &L,
        child_cost: &mut dyn FnMut(Id) -> f64,
    ) -> f64 {
        enode.fold(1.0, |acc, id| acc + child_cost(id))
    }
}

/// AST depth: one plus the maximum child depth.
#[derive(Debug, Clone, Copy, Default)]
pub struct AstDepth;

impl<L: Language, A: Analysis<L>> CostFunction<L, A> for AstDepth {
    fn cost(
        &self,
        _egraph: &EGraph<L, A>,
        enode: &L,
        child_cost: &mut dyn FnMut(Id) -> f64,
    ) -> f64 {
        enode.fold(1.0, |acc, id| acc.max(1.0 + child_cost(id)))
    }
}

/// Precomputes the cheapest e-node of every e-class under a
/// [`CostFunction`], then reconstructs best terms on demand.
///
/// This is the extraction step of equality saturation (paper §II(c), §V-C):
/// after saturation, a cost model walks the e-graph and picks one
/// expression.
pub struct Extractor<'a, L: Language, A: Analysis<L>, C> {
    egraph: &'a EGraph<L, A>,
    cost_fn: C,
    best: HashMap<Id, (f64, L)>,
}

impl<'a, L: Language, A: Analysis<L>, C: CostFunction<L, A>> Extractor<'a, L, A, C> {
    /// Compute best costs for every class (fixpoint over the e-graph).
    pub fn new(egraph: &'a EGraph<L, A>, cost_fn: C) -> Self {
        let mut extractor = Extractor {
            egraph,
            cost_fn,
            best: HashMap::new(),
        };
        extractor.fixpoint();
        extractor
    }

    fn fixpoint(&mut self) {
        let classes = self.egraph.classes_sorted();
        let mut changed = true;
        while changed {
            changed = false;
            for class in &classes {
                let current = self.best.get(&class.id).map(|(c, _)| *c);
                for node in class.iter() {
                    let cost = self.node_cost(node);
                    if cost.is_finite() && current.is_none_or(|c| cost < c) {
                        self.best.insert(class.id, (cost, node.clone()));
                        changed = true;
                        break;
                    }
                }
            }
        }
    }

    fn node_cost(&self, node: &L) -> f64 {
        // A node's cost is only finite once all children are known.
        let known = node.all(|c| self.best.contains_key(&self.egraph.find(c)));
        if !known {
            return f64::INFINITY;
        }
        self.cost_fn.cost(self.egraph, node, &mut |id| {
            self.best[&self.egraph.find(id)].0
        })
    }

    /// The best cost of a class, if any term is extractable.
    pub fn best_cost(&self, id: Id) -> Option<f64> {
        self.best.get(&self.egraph.find(id)).map(|(c, _)| *c)
    }

    /// The cheapest e-node of a class.
    pub fn best_node(&self, id: Id) -> Option<&L> {
        self.best.get(&self.egraph.find(id)).map(|(_, n)| n)
    }

    /// Extract the best term for a class.
    ///
    /// # Panics
    ///
    /// Panics if the class has no extractable term (impossible for classes
    /// created by adding expressions).
    pub fn find_best(&self, id: Id) -> (f64, RecExpr<L>) {
        let id = self.egraph.find(id);
        let (cost, _) = self.best[&id];
        let mut expr = RecExpr::default();
        self.build_best(id, &mut expr);
        (cost, expr)
    }

    fn build_best(&self, id: Id, expr: &mut RecExpr<L>) -> Id {
        let id = self.egraph.find(id);
        let (_, node) = self
            .best
            .get(&id)
            .unwrap_or_else(|| panic!("class {id} has no extractable term"));
        let node = node.clone().map_children(|c| self.build_best(c, expr));
        expr.add(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rewrite, Runner, SymbolLang};

    #[test]
    fn ast_size_picks_smaller_member() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let big = eg.add_expr(&"(+ (+ a 0) 0)".parse().unwrap());
        let small = eg.add_expr(&"a".parse().unwrap());
        eg.union(big, small);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(big);
        assert_eq!(best.to_string(), "a");
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn extraction_descends_through_children() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(f (+ a 0))".parse().unwrap());
        let rw = Rewrite::<SymbolLang, ()>::from_patterns("add0", "(+ ?x 0)", "?x");
        let mut runner = Runner::new(eg);
        runner.run(&[rw]);
        let ex = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = ex.find_best(root);
        assert_eq!(best.to_string(), "(f a)");
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn ast_depth() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(f (g a) b)".parse().unwrap());
        let ex = Extractor::new(&eg, AstDepth);
        assert_eq!(ex.best_cost(root), Some(3.0));
    }

    #[test]
    fn cost_expr_matches_extracted_cost() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(+ (* a b) c)".parse().unwrap());
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(root);
        assert_eq!(cost, AstSize.cost_expr(&eg, &best));
    }

    #[test]
    fn custom_cost_function_prefers_shift() {
        struct ShiftCheap;
        impl CostFunction<SymbolLang, ()> for ShiftCheap {
            fn cost(
                &self,
                _eg: &EGraph<SymbolLang, ()>,
                enode: &SymbolLang,
                child: &mut dyn FnMut(Id) -> f64,
            ) -> f64 {
                let op_cost = match enode.op.as_str() {
                    "/" => 10.0,
                    "<<" => 1.0,
                    _ => 1.0,
                };
                enode.fold(op_cost, |acc, id| acc + child(id))
            }
        }
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(/ a 2)".parse().unwrap());
        let rw =
            Rewrite::<SymbolLang, ()>::from_patterns("div2", "(/ ?x 2)", "(<< ?x 1)");
        let mut runner = Runner::new(eg);
        runner.run(&[rw]);
        let ex = Extractor::new(&runner.egraph, ShiftCheap);
        let (_, best) = ex.find_best(root);
        assert_eq!(best.to_string(), "(<< a 1)");
    }
}
