//! Cost-based extraction: picking one best term out of a saturated e-graph.
//!
//! Two strategies implement the common [`Extract`] trait:
//!
//! * [`Extractor`] — *tree* costs: a shared subterm is charged once per
//!   use, exactly as if the extracted expression were a tree. This is the
//!   classic extraction of equality saturation (paper §II(c), §V-C) and
//!   the strategy whose per-step results the pipeline reports.
//! * [`DagExtractor`] — *DAG* costs: each selected e-class is charged
//!   once, no matter how many times the extracted term refers to it. This
//!   is the right accounting for CSE-heavy rewrites (a hoisted `dot`
//!   reused by two rows costs one `dot`, not two).
//!
//! See `docs/EXTRACTION.md` at the repo root for the full story, including
//! when the two strategies agree and how the DAG cost is defined.

use std::collections::HashMap;

use crate::{Analysis, EGraph, Id, Language, RecExpr};

/// A local cost model: the cost of a node given its children's best costs.
///
/// Costs are `f64` because the paper's library cost models use fractional
/// discount factors (`.8N`, `.7NM`, …). The e-graph is passed in so a cost
/// model can consult e-class analyses (LIAR reads array extents from `Dim`
/// leaves this way).
///
/// Implementations should be *strictly increasing*: a node's cost should be
/// strictly greater than each child's cost. [`Extractor`] is nevertheless
/// safe (it never hangs or selects a cyclic term) for models that violate
/// this, at the price of a possibly suboptimal — but still sound —
/// selection.
pub trait CostFunction<L: Language, A: Analysis<L>> {
    /// Cost of `enode`, where `child_cost` gives the current best cost of
    /// a child class (`f64::INFINITY` when not yet known).
    fn cost(
        &self,
        egraph: &EGraph<L, A>,
        enode: &L,
        child_cost: &mut dyn FnMut(Id) -> f64,
    ) -> f64;

    /// Cost of a whole term (mainly for tests and reporting).
    ///
    /// # Invariant
    ///
    /// `expr` must be non-empty: an empty [`RecExpr`] has no root and
    /// therefore no cost. Debug builds assert this; release builds return
    /// `0.0` for backwards compatibility.
    fn cost_expr(&self, egraph: &EGraph<L, A>, expr: &RecExpr<L>) -> f64 {
        debug_assert!(
            !expr.is_empty(),
            "cost_expr on an empty expression — an empty RecExpr has no root"
        );
        let mut costs: Vec<f64> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let c = self.cost(egraph, node, &mut |id| costs[id.index()]);
            costs.push(c);
        }
        costs.last().copied().unwrap_or(0.0)
    }
}

/// AST size: every node costs 1 plus its children.
#[derive(Debug, Clone, Copy, Default)]
pub struct AstSize;

impl<L: Language, A: Analysis<L>> CostFunction<L, A> for AstSize {
    fn cost(
        &self,
        _egraph: &EGraph<L, A>,
        enode: &L,
        child_cost: &mut dyn FnMut(Id) -> f64,
    ) -> f64 {
        enode.fold(1.0, |acc, id| acc + child_cost(id))
    }
}

/// AST depth: one plus the maximum child depth.
#[derive(Debug, Clone, Copy, Default)]
pub struct AstDepth;

impl<L: Language, A: Analysis<L>> CostFunction<L, A> for AstDepth {
    fn cost(
        &self,
        _egraph: &EGraph<L, A>,
        enode: &L,
        child_cost: &mut dyn FnMut(Id) -> f64,
    ) -> f64 {
        enode.fold(1.0, |acc, id| acc.max(1.0 + child_cost(id)))
    }
}

/// The common interface of the extraction strategies.
///
/// Both [`Extractor`] (tree costs) and [`DagExtractor`] (DAG costs)
/// implement this, so downstream code — the multi-target pipeline, the
/// benches — can be written once against either strategy.
///
/// # Example
///
/// ```
/// use liar_egraph::{AstSize, DagExtractor, EGraph, Extract, Extractor, SymbolLang};
///
/// fn best_under<E: Extract<SymbolLang>>(e: &E, id: liar_egraph::Id) -> f64 {
///     e.extract(id).expect("extractable").0
/// }
///
/// let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
/// let root = eg.add_expr(&"(f (g a) (g a))".parse().unwrap());
/// let tree = Extractor::new(&eg, AstSize);
/// let dag = DagExtractor::new(&eg, AstSize);
/// assert_eq!(best_under(&tree, root), 5.0); // f + 2·(g + a): (g a) charged twice
/// assert_eq!(best_under(&dag, root), 3.0); // f + g + a: each class charged once
/// ```
pub trait Extract<L: Language> {
    /// The best cost of a class under this strategy, if any term is
    /// extractable from it.
    fn best_cost(&self, id: Id) -> Option<f64>;

    /// Extract the best term for a class together with its cost, or
    /// `None` when the class has no extractable term (every candidate
    /// node has infinite cost — e.g. a library call the active target
    /// does not offer).
    fn extract(&self, id: Id) -> Option<(f64, RecExpr<L>)>;

    /// Extract the best term for a class.
    ///
    /// # Panics
    ///
    /// Panics if the class has no extractable term (impossible for classes
    /// created by adding expressions).
    fn find_best(&self, id: Id) -> (f64, RecExpr<L>) {
        self.extract(id)
            .unwrap_or_else(|| panic!("class {id} has no extractable term"))
    }
}

/// Precomputes the cheapest e-node of every e-class under a
/// [`CostFunction`] with *tree* cost accounting, then reconstructs best
/// terms on demand.
///
/// This is the extraction step of equality saturation (paper §II(c), §V-C):
/// after saturation, a cost model walks the e-graph and picks one
/// expression. A subterm referenced from two places is charged at both —
/// use [`DagExtractor`] to charge shared work once.
pub struct Extractor<'a, L: Language, A: Analysis<L>, C> {
    egraph: &'a EGraph<L, A>,
    cost_fn: C,
    best: HashMap<Id, (f64, L)>,
}

impl<'a, L: Language, A: Analysis<L>, C: CostFunction<L, A>> Extractor<'a, L, A, C> {
    /// Compute best costs for every class (fixpoint over the e-graph).
    pub fn new(egraph: &'a EGraph<L, A>, cost_fn: C) -> Self {
        let mut extractor = Extractor {
            egraph,
            cost_fn,
            best: HashMap::new(),
        };
        extractor.fixpoint(true);
        if !extractor.selection_is_acyclic() {
            // The cost model violated the strictly-increasing contract and
            // the improving fixpoint produced a cyclic selection. Fall back
            // to assign-once selection, which is acyclic by construction
            // (a class is only chosen after all of its children): sound,
            // terminating, possibly suboptimal — but only models outside
            // the contract ever reach this path.
            extractor.best.clear();
            extractor.fixpoint(false);
            debug_assert!(extractor.selection_is_acyclic());
        }
        extractor
    }

    /// One value-iteration loop over all classes. With `improve`, a class's
    /// choice is replaced whenever a strictly cheaper node appears; without
    /// it, every class keeps its first (finite-cost) choice. Passes are
    /// capped at `#classes + 1` — enough for any acyclic dependency chain —
    /// so even pathological cost models cannot hang extraction.
    fn fixpoint(&mut self, improve: bool) {
        let classes = self.egraph.classes_sorted();
        let max_passes = classes.len() + 1;
        for _ in 0..max_passes {
            let mut changed = false;
            for class in &classes {
                let mut current = self.best.get(&class.id).map(|(c, _)| *c);
                if current.is_some() && !improve {
                    continue;
                }
                for node in class.iter() {
                    let cost = self.node_cost(node);
                    if cost.is_finite() && current.is_none_or(|c| cost < c) {
                        self.best.insert(class.id, (cost, node.clone()));
                        current = Some(cost);
                        changed = true;
                        if !improve {
                            // Assign-once keeps the *first* finite node:
                            // its children were all assigned before this
                            // class, which is what makes the fallback
                            // selection acyclic by construction.
                            break;
                        }
                        // Improving mode scans the whole class so each
                        // pass ends on the per-class minimum — value
                        // iteration then converges within the pass cap.
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Whether the per-class selection forms a DAG (it always does for
    /// strictly-increasing cost models; see [`CostFunction`]).
    fn selection_is_acyclic(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: HashMap<Id, Color> = HashMap::new();
        // Iterative DFS over selection edges, three-coloring the classes.
        for &start in self.best.keys() {
            if color.get(&start).copied().unwrap_or(Color::White) != Color::White {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((id, expanded)) = stack.pop() {
                if expanded {
                    color.insert(id, Color::Black);
                    continue;
                }
                match color.get(&id).copied().unwrap_or(Color::White) {
                    Color::Black => continue,
                    Color::Grey => return false,
                    Color::White => {}
                }
                color.insert(id, Color::Grey);
                stack.push((id, true));
                let (_, node) = &self.best[&id];
                for c in node.children() {
                    let c = self.egraph.find(*c);
                    match color.get(&c).copied().unwrap_or(Color::White) {
                        Color::Grey => return false,
                        Color::White => stack.push((c, false)),
                        Color::Black => {}
                    }
                }
            }
        }
        true
    }

    fn node_cost(&self, node: &L) -> f64 {
        // A node's cost is only finite once all children are known.
        let known = node.all(|c| self.best.contains_key(&self.egraph.find(c)));
        if !known {
            return f64::INFINITY;
        }
        self.cost_fn.cost(self.egraph, node, &mut |id| {
            self.best[&self.egraph.find(id)].0
        })
    }

    /// The best cost of a class, if any term is extractable.
    pub fn best_cost(&self, id: Id) -> Option<f64> {
        self.best.get(&self.egraph.find(id)).map(|(c, _)| *c)
    }

    /// The cheapest e-node of a class.
    pub fn best_node(&self, id: Id) -> Option<&L> {
        self.best.get(&self.egraph.find(id)).map(|(_, n)| n)
    }

    /// Extract the best term for a class.
    ///
    /// # Panics
    ///
    /// Panics if the class has no extractable term (impossible for classes
    /// created by adding expressions).
    pub fn find_best(&self, id: Id) -> (f64, RecExpr<L>) {
        Extract::find_best(self, id)
    }

    fn build_best(&self, id: Id, expr: &mut RecExpr<L>) -> Id {
        let id = self.egraph.find(id);
        let (_, node) = self
            .best
            .get(&id)
            .unwrap_or_else(|| panic!("class {id} has no extractable term"));
        let node = node.clone().map_children(|c| self.build_best(c, expr));
        expr.add(node)
    }
}

impl<L: Language, A: Analysis<L>, C: CostFunction<L, A>> Extract<L> for Extractor<'_, L, A, C> {
    fn best_cost(&self, id: Id) -> Option<f64> {
        Extractor::best_cost(self, id)
    }

    fn extract(&self, id: Id) -> Option<(f64, RecExpr<L>)> {
        let id = self.egraph.find(id);
        let (cost, _) = *self.best.get(&id)?;
        let mut expr = RecExpr::default();
        self.build_best(id, &mut expr);
        Some((cost, expr))
    }
}

/// Statistics of one DAG extraction, for reporting (the extract bench and
/// the multi-target pipeline surface these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractionStats {
    /// Fixpoint passes over the e-graph until the selection stabilized.
    pub passes: usize,
    /// Classes with a finite-cost selection.
    pub extractable_classes: usize,
}

/// Per-class state of a [`DagExtractor`]: the chosen node, the set of
/// classes its sub-DAG selects (each mapped to the marginal cost it was
/// charged at), and the total — the sum of the set's marginals.
struct DagChoice<L> {
    node: L,
    total: f64,
    set: HashMap<Id, f64>,
}

/// DAG-cost extraction: charges each selected e-class **once**, no matter
/// how many times the extracted term references it.
///
/// # The DAG cost
///
/// Every e-node is assigned a *marginal* cost: its full
/// [`CostFunction::cost`] evaluated at the tree-best costs of its
/// children, minus the sum of those child costs — i.e. the cost the node
/// adds on top of work that is already paid for. The DAG cost of a
/// selection is the sum of the marginals of the *distinct* classes it
/// reaches; the extractor iterates to a fixpoint over these selected
/// sets, per class keeping the node whose set is cheapest. Candidate
/// nodes whose sub-DAG already contains the candidate's own class are
/// rejected outright, so the selection can never be cyclic, even under a
/// cost model that violates the strictly-increasing contract.
///
/// Two properties follow for cost models with non-negative marginals
/// (AST size, and LIAR's target cost models — see `docs/EXTRACTION.md`):
///
/// * **On trees the strategies agree:** if the best term references every
///   class once, the marginals telescope and the DAG cost equals the tree
///   cost exactly.
/// * **DAG ≤ tree everywhere:** sharing can only remove charges, so for
///   every class the DAG cost is at most the [`Extractor`] cost.
///
/// The extracted [`RecExpr`] shares nodes (a class appears once in the
/// flat table no matter how often it is referenced), making the sharing
/// visible to downstream consumers.
///
/// # Example
///
/// ```
/// use liar_egraph::{AstSize, DagExtractor, EGraph, Extract, Extractor, SymbolLang};
///
/// // (g a) is shared by both children of f.
/// let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
/// let root = eg.add_expr(&"(f (g a) (g a))".parse().unwrap());
/// let tree_cost = Extractor::new(&eg, AstSize).find_best(root).0;
/// let dag = DagExtractor::new(&eg, AstSize);
/// let (dag_cost, best) = dag.find_best(root);
/// assert_eq!(tree_cost, 5.0); // f + 2·(g + a)
/// assert_eq!(dag_cost, 3.0); // f + g + a, the shared class charged once
/// assert_eq!(best.to_string(), "(f (g a) (g a))");
/// ```
pub struct DagExtractor<'a, L: Language, A: Analysis<L>, C> {
    tree: Extractor<'a, L, A, C>,
    choices: HashMap<Id, DagChoice<L>>,
    stats: ExtractionStats,
}

impl<'a, L: Language, A: Analysis<L>, C: CostFunction<L, A>> DagExtractor<'a, L, A, C> {
    /// Compute the best DAG-cost selection for every class.
    ///
    /// Runs tree extraction first (the marginals are defined against
    /// tree-best child costs), then iterates the selected-set fixpoint.
    pub fn new(egraph: &'a EGraph<L, A>, cost_fn: C) -> Self {
        let tree = Extractor::new(egraph, cost_fn);
        let mut extractor = DagExtractor {
            tree,
            choices: HashMap::new(),
            stats: ExtractionStats::default(),
        };
        extractor.fixpoint();
        extractor.stats.extractable_classes = extractor.choices.len();
        extractor
    }

    /// The marginal cost of `node`: full cost at tree-best child costs,
    /// minus the child costs themselves. Infinite when the node itself
    /// costs infinity or any child is unextractable.
    fn marginal(&self, node: &L) -> f64 {
        let egraph = self.tree.egraph;
        let mut child_sum = 0.0;
        let mut all_known = true;
        node.for_each(|c| match self.tree.best_cost(c) {
            Some(c) => child_sum += c,
            None => all_known = false,
        });
        if !all_known {
            return f64::INFINITY;
        }
        let full = self.tree.cost_fn.cost(egraph, node, &mut |id| {
            self.tree.best[&egraph.find(id)].0
        });
        full - child_sum
    }

    fn fixpoint(&mut self) {
        let egraph = self.tree.egraph;
        let classes = egraph.classes_sorted();
        let n = classes.len();
        let position: HashMap<Id, usize> = classes
            .iter()
            .enumerate()
            .map(|(i, class)| (class.id, i))
            .collect();
        // Marginals depend only on the (fixed) tree costs: compute once.
        let marginals: Vec<Vec<f64>> = classes
            .iter()
            .map(|class| class.iter().map(|node| self.marginal(node)).collect())
            .collect();
        // Reverse edges: a class's choice can only be invalidated by one
        // of its children adopting a cheaper set, so later passes revisit
        // only the (transitively) affected parents.
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, class) in classes.iter().enumerate() {
            for node in class.iter() {
                node.for_each(|c| {
                    let child = position[&egraph.find(c)];
                    if !parents[child].contains(&i) {
                        parents[child].push(i);
                    }
                });
            }
        }
        let mut dirty = vec![true; n];
        let max_passes = n + 1;
        loop {
            self.stats.passes += 1;
            let mut changed = false;
            let mut next_dirty = vec![false; n];
            for (i, (class, node_marginals)) in classes.iter().zip(&marginals).enumerate() {
                if !dirty[i] {
                    continue;
                }
                let mut current = self.choices.get(&class.id).map(|c| c.total);
                let mut adopted = false;
                // Scan the WHOLE class (no early break): each pass must
                // end on the per-class minimum, or a cheaper node later
                // in the list could be skipped forever once the class
                // stops being dirty.
                for (node, &marginal) in class.iter().zip(node_marginals) {
                    if !marginal.is_finite() {
                        continue;
                    }
                    // Cheap lower bound: the candidate's set contains this
                    // class and (at least) each child's whole set, so with
                    // non-negative marginals its total is at least the
                    // marginal plus the costliest child. Prunes most nodes
                    // without building the merged set.
                    let mut bound = marginal;
                    let mut all_chosen = true;
                    node.for_each(|c| match self.choices.get(&egraph.find(c)) {
                        Some(choice) => bound = bound.max(marginal + choice.total),
                        None => all_chosen = false,
                    });
                    if !all_chosen || current.is_some_and(|c| bound >= c) {
                        continue;
                    }
                    let Some((total, set)) = self.candidate(class.id, node, marginal) else {
                        continue; // the sub-DAG would contain this class: cycle
                    };
                    if current.is_none_or(|c| total < c) {
                        self.choices.insert(
                            class.id,
                            DagChoice {
                                node: node.clone(),
                                total,
                                set,
                            },
                        );
                        current = Some(total);
                        adopted = true;
                    }
                }
                if adopted {
                    changed = true;
                    for &parent in &parents[i] {
                        next_dirty[parent] = true;
                    }
                }
            }
            dirty = next_dirty;
            if !changed || self.stats.passes >= max_passes {
                break;
            }
        }
    }

    /// The total DAG cost and selected set of choosing `node` for
    /// `class`: the class itself plus the union of its children's sets.
    /// `None` when the union already contains `class` (selecting `node`
    /// would be cyclic).
    fn candidate(&self, class: Id, node: &L, marginal: f64) -> Option<(f64, HashMap<Id, f64>)> {
        let egraph = self.tree.egraph;
        let mut set = HashMap::new();
        set.insert(class, marginal);
        let mut total = marginal;
        for &child in node.children() {
            let choice = &self.choices[&egraph.find(child)];
            for (&id, &m) in &choice.set {
                if id == class {
                    return None;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = set.entry(id) {
                    e.insert(m);
                    total += m;
                }
            }
        }
        Some((total, set))
    }

    /// Fixpoint statistics of this extraction.
    pub fn stats(&self) -> ExtractionStats {
        self.stats
    }

    /// The chosen e-node of a class.
    pub fn best_node(&self, id: Id) -> Option<&L> {
        self.choices
            .get(&self.tree.egraph.find(id))
            .map(|c| &c.node)
    }

    /// The number of distinct classes the best selection of `id` reaches —
    /// the size of the extracted DAG (the tree size is `extract`'s
    /// expression length only when nothing is shared).
    pub fn selected_classes(&self, id: Id) -> Option<usize> {
        self.choices
            .get(&self.tree.egraph.find(id))
            .map(|c| c.set.len())
    }

    /// The tree cost of the same class under the same cost function (the
    /// inner [`Extractor`] this extraction was seeded from).
    pub fn tree_cost(&self, id: Id) -> Option<f64> {
        self.tree.best_cost(id)
    }

    /// The inner tree-cost [`Extractor`] (the DAG marginals are defined
    /// against its best costs). One `DagExtractor` therefore serves both
    /// accounting strategies without running two fixpoints from scratch.
    pub fn tree_extractor(&self) -> &Extractor<'a, L, A, C> {
        &self.tree
    }

    /// Extract the best term for a class.
    ///
    /// # Panics
    ///
    /// Panics if the class has no extractable term.
    pub fn find_best(&self, id: Id) -> (f64, RecExpr<L>) {
        Extract::find_best(self, id)
    }

    fn build_best(&self, id: Id, expr: &mut RecExpr<L>, memo: &mut HashMap<Id, Id>) -> Id {
        let id = self.tree.egraph.find(id);
        if let Some(&done) = memo.get(&id) {
            return done;
        }
        let node = self.choices[&id]
            .node
            .clone()
            .map_children(|c| self.build_best(c, expr, memo));
        let index = expr.add(node);
        memo.insert(id, index);
        index
    }
}

impl<L: Language, A: Analysis<L>, C: CostFunction<L, A>> Extract<L> for DagExtractor<'_, L, A, C> {
    fn best_cost(&self, id: Id) -> Option<f64> {
        self.choices
            .get(&self.tree.egraph.find(id))
            .map(|c| c.total)
    }

    fn extract(&self, id: Id) -> Option<(f64, RecExpr<L>)> {
        let id = self.tree.egraph.find(id);
        let total = self.choices.get(&id)?.total;
        let mut expr = RecExpr::default();
        self.build_best(id, &mut expr, &mut HashMap::new());
        Some((total, expr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rewrite, Runner, SymbolLang};

    #[test]
    fn ast_size_picks_smaller_member() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let big = eg.add_expr(&"(+ (+ a 0) 0)".parse().unwrap());
        let small = eg.add_expr(&"a".parse().unwrap());
        eg.union(big, small);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(big);
        assert_eq!(best.to_string(), "a");
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn extraction_descends_through_children() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(f (+ a 0))".parse().unwrap());
        let rw = Rewrite::<SymbolLang, ()>::from_patterns("add0", "(+ ?x 0)", "?x");
        let mut runner = Runner::new(eg);
        runner.run(&[rw]);
        let ex = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = ex.find_best(root);
        assert_eq!(best.to_string(), "(f a)");
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn ast_depth() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(f (g a) b)".parse().unwrap());
        let ex = Extractor::new(&eg, AstDepth);
        assert_eq!(ex.best_cost(root), Some(3.0));
    }

    #[test]
    fn cost_expr_matches_extracted_cost() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(+ (* a b) c)".parse().unwrap());
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(root);
        assert_eq!(cost, AstSize.cost_expr(&eg, &best));
    }

    #[test]
    fn custom_cost_function_prefers_shift() {
        struct ShiftCheap;
        impl CostFunction<SymbolLang, ()> for ShiftCheap {
            fn cost(
                &self,
                _eg: &EGraph<SymbolLang, ()>,
                enode: &SymbolLang,
                child: &mut dyn FnMut(Id) -> f64,
            ) -> f64 {
                let op_cost = match enode.op.as_str() {
                    "/" => 10.0,
                    "<<" => 1.0,
                    _ => 1.0,
                };
                enode.fold(op_cost, |acc, id| acc + child(id))
            }
        }
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(/ a 2)".parse().unwrap());
        let rw =
            Rewrite::<SymbolLang, ()>::from_patterns("div2", "(/ ?x 2)", "(<< ?x 1)");
        let mut runner = Runner::new(eg);
        runner.run(&[rw]);
        let ex = Extractor::new(&runner.egraph, ShiftCheap);
        let (_, best) = ex.find_best(root);
        assert_eq!(best.to_string(), "(<< a 1)");
    }

    /// A cost model that violates the strictly-increasing contract: `f`
    /// and `g` *halve* their child's cost, so around the cycle
    /// `a = {x, (f b)}`, `b = {(g a)}` every trip gets cheaper and the
    /// naive improving fixpoint would chase it forever (and select it).
    struct Halving;
    impl CostFunction<SymbolLang, ()> for Halving {
        fn cost(
            &self,
            _eg: &EGraph<SymbolLang, ()>,
            enode: &SymbolLang,
            child: &mut dyn FnMut(Id) -> f64,
        ) -> f64 {
            match enode.op.as_str() {
                "f" | "g" => 0.5 * enode.fold(0.0, |acc, id| acc + child(id)),
                _ => enode.fold(1.0, |acc, id| acc + child(id)),
            }
        }
    }

    /// An e-graph where class `a = {x, (f b)}` and `b = {(g a)}` form a
    /// selection cycle under a non-strictly-increasing model.
    fn cyclic_temptation() -> (EGraph<SymbolLang, ()>, Id) {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let a = eg.add_expr(&"x".parse().unwrap());
        let ga = eg.add(SymbolLang::new("g", vec![a]));
        let fga = eg.add(SymbolLang::new("f", vec![ga]));
        eg.union(a, fga);
        eg.rebuild();
        (eg, a)
    }

    #[test]
    fn non_increasing_cost_model_terminates_without_cycles() {
        let (eg, a) = cyclic_temptation();
        let ex = Extractor::new(&eg, Halving);
        // Must terminate and reconstruct a finite term (the acyclic `x`).
        let (cost, best) = ex.find_best(a);
        assert_eq!(best.to_string(), "x");
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn dag_extractor_rejects_cycles_under_non_increasing_model() {
        let (eg, a) = cyclic_temptation();
        let ex = DagExtractor::new(&eg, Halving);
        let (_, best) = ex.find_best(a);
        assert_eq!(best.to_string(), "x");
    }

    #[test]
    fn unextractable_class_reports_none() {
        struct NoH;
        impl CostFunction<SymbolLang, ()> for NoH {
            fn cost(
                &self,
                _eg: &EGraph<SymbolLang, ()>,
                enode: &SymbolLang,
                child: &mut dyn FnMut(Id) -> f64,
            ) -> f64 {
                let op = if enode.op.as_str() == "h" {
                    f64::INFINITY
                } else {
                    1.0
                };
                enode.fold(op, |acc, id| acc + child(id))
            }
        }
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        // `(h a)` is the only member of its class: infinite under NoH.
        let root = eg.add_expr(&"(k (h a))".parse().unwrap());
        let inner = eg.lookup_expr(&"(h a)".parse().unwrap()).unwrap();
        let tree = Extractor::new(&eg, NoH);
        assert_eq!(tree.best_cost(inner), None);
        assert_eq!(tree.best_cost(root), None);
        assert!(Extract::extract(&tree, root).is_none());
        let dag = DagExtractor::new(&eg, NoH);
        assert_eq!(Extract::best_cost(&dag, root), None);
        assert!(dag.extract(root).is_none());
        // The leaf `a` is still extractable under both strategies.
        let leaf = eg.lookup_expr(&"a".parse().unwrap()).unwrap();
        assert_eq!(tree.best_cost(leaf), Some(1.0));
        assert_eq!(Extract::best_cost(&dag, leaf), Some(1.0));
    }

    #[test]
    fn dag_cost_equals_tree_cost_on_trees() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        // No class is referenced twice: a genuine tree.
        let root = eg.add_expr(&"(f (g a) (h b))".parse().unwrap());
        let tree = Extractor::new(&eg, AstSize);
        let dag = DagExtractor::new(&eg, AstSize);
        assert_eq!(tree.best_cost(root), Extract::best_cost(&dag, root));
        assert_eq!(tree.find_best(root).1, dag.find_best(root).1);
    }

    #[test]
    fn dag_extractor_shares_across_rewrites() {
        // After rewriting, both arms of + are the same class; DAG cost
        // charges the shared (* a b) once.
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(+ (* a b) (* b a))".parse().unwrap());
        let rw = Rewrite::<SymbolLang, ()>::from_patterns(
            "mul-comm",
            "(* ?x ?y)",
            "(* ?y ?x)",
        );
        let mut runner = Runner::new(eg).with_iter_limit(3);
        runner.run(&[rw]);
        let tree = Extractor::new(&runner.egraph, AstSize);
        let dag = DagExtractor::new(&runner.egraph, AstSize);
        let tree_cost = tree.best_cost(root).unwrap();
        let dag_cost = Extract::best_cost(&dag, root).unwrap();
        assert_eq!(tree_cost, 7.0);
        assert_eq!(dag_cost, 4.0, "+ and one shared (* a b) sub-DAG");
        // The flat expression shares the multiplied class: 4 distinct
        // nodes even though the term references (* a b) twice.
        let (_, best) = dag.find_best(root);
        assert_eq!(best.len(), 4);
    }

    /// Regression: a class whose cheapest node sorts *after* costlier
    /// ones must still converge to the minimum (the fixpoint used to
    /// break out of the class scan on the first improvement, and the
    /// dirty-worklist never revisited the class).
    #[test]
    fn dag_picks_cheapest_node_regardless_of_scan_order() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let big = eg.add_expr(&"(a x y)".parse().unwrap());
        let mid = eg.add_expr(&"(b x)".parse().unwrap());
        let leaf = eg.add_expr(&"z".parse().unwrap());
        eg.union(big, mid);
        eg.union(big, leaf);
        eg.rebuild();
        let tree = Extractor::new(&eg, AstSize);
        let dag = DagExtractor::new(&eg, AstSize);
        assert_eq!(tree.best_cost(big), Some(1.0));
        assert_eq!(
            Extract::best_cost(&dag, big),
            Some(1.0),
            "DAG cost must not exceed the tree cost"
        );
        assert_eq!(dag.find_best(big).1.to_string(), "z");
    }

    #[test]
    fn dag_never_exceeds_tree_on_random_unions() {
        // A little deterministic stress: chains with injected sharing.
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let exprs = [
            "(f (g (h a)) (g (h a)))",
            "(+ (* a b) (+ (* a b) (* a b)))",
            "(k (k (k (k a))))",
        ];
        let roots: Vec<Id> = exprs
            .iter()
            .map(|s| eg.add_expr(&s.parse().unwrap()))
            .collect();
        eg.union(roots[0], roots[2]);
        eg.rebuild();
        let tree = Extractor::new(&eg, AstSize);
        let dag = DagExtractor::new(&eg, AstSize);
        for class in eg.classes() {
            let (t, d) = (tree.best_cost(class.id), Extract::best_cost(&dag, class.id));
            match (t, d) {
                (Some(t), Some(d)) => assert!(d <= t, "class {}: dag {d} > tree {t}", class.id),
                (None, None) => {}
                _ => panic!("extractability diverged on class {}", class.id),
            }
        }
        assert!(dag.stats().passes >= 1);
        assert_eq!(dag.stats().extractable_classes, eg.num_classes());
    }
}
