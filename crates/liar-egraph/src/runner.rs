//! The saturation loop: batched search → apply → rebuild, with limits and
//! per-iteration reports.
//!
//! The search phase is read-only over a clean e-graph snapshot, so it can
//! fan out across threads (see [`Runner::with_threads`]): every (rule ×
//! e-class-chunk) pair becomes an independent job, and the per-rule match
//! lists are merged back in (rule order, ascending class id) order, making
//! the multi-threaded engine bit-identical to the serial one.
//!
//! Search is also *semi-naive* by default (see [`Runner::with_seminaive`]
//! and the [`seminaive`](crate::seminaive) module): eligible rules scan only
//! the classes the e-graph's delta index marks as changed since the rule
//! last ran, replaying cached matches elsewhere — with a match stream, and
//! therefore a saturation run, bit-identical to the whole-graph engines.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use liar_trace::{FlightKind, FlightRecorder, Recorder, TraceSink};

use crate::rewrite::SearchMatches;
use crate::seminaive::{self, ClosureMemo, DeltaSearch, PlanEntry, SearchPlan};
use crate::{Analysis, EGraph, Id, Language, Rewrite, Scheduler, SimpleScheduler, Subst};

/// Why a [`Runner`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// No rule changed the e-graph: a fixpoint was reached.
    Saturated,
    /// The configured iteration (saturation-step) limit was reached.
    IterationLimit,
    /// The e-graph grew past the configured node limit.
    NodeLimit,
    /// The configured wall-clock budget was exhausted.
    TimeLimit,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Saturated => write!(f, "saturated"),
            StopReason::IterationLimit => write!(f, "iteration limit"),
            StopReason::NodeLimit => write!(f, "node limit"),
            StopReason::TimeLimit => write!(f, "time limit"),
        }
    }
}

/// Stopping criteria for a [`Runner`].
///
/// The paper uses a five-minute wall-clock budget per kernel and reports
/// CPU-invariant *step*-limited runs in its artifact; both are supported.
#[derive(Debug, Clone)]
pub struct RunnerLimits {
    /// Maximum number of saturation steps.
    pub iter_limit: usize,
    /// Maximum number of e-nodes before stopping.
    pub node_limit: usize,
    /// Optional wall-clock budget.
    pub time_limit: Option<Duration>,
}

impl Default for RunnerLimits {
    fn default() -> Self {
        RunnerLimits {
            iter_limit: 30,
            node_limit: 500_000,
            time_limit: None,
        }
    }
}

/// Everything that happened during one saturation step — the raw data
/// behind the paper's fig. 4 (e-node counts and time per step).
#[derive(Debug, Clone)]
pub struct Iteration {
    /// Step index, starting at 1 (step 0 is the initial e-graph).
    pub index: usize,
    /// Unique e-nodes after this step's rebuild.
    pub n_nodes: usize,
    /// E-classes after this step's rebuild.
    pub n_classes: usize,
    /// `(rule name, substitutions that changed the e-graph)`, rules in
    /// rule-set order.
    pub applied: Vec<(String, usize)>,
    /// Per-rule search funnel, aligned with
    /// [`applied`](Iteration::applied): `(candidate e-classes scheduled,
    /// substitutions found)` for each rule. Banned rules record `(0, 0)`.
    /// Summing the columns gives
    /// [`search_candidates`](Iteration::search_candidates) and
    /// [`search_matches`](Iteration::search_matches); identical under the
    /// serial and parallel engines.
    pub searched: Vec<(usize, usize)>,
    /// Unions performed by congruence repair during rebuild.
    pub rebuild_unions: usize,
    /// Candidate e-classes scheduled for matching across all unbanned
    /// rules: per-class searchers count their operator-index candidate
    /// list (see [`Searcher::candidate_class_ids`](crate::Searcher::candidate_class_ids)),
    /// whole-e-graph searchers count every class. Identical under the
    /// serial and parallel engines.
    pub search_candidates: usize,
    /// E-classes the search phase actually *scanned* with the e-matching
    /// VM. Under semi-naive search (the default) eligible rules scan only
    /// their delta frontier and replay cached matches elsewhere, so this is
    /// typically far below [`search_candidates`](Iteration::search_candidates);
    /// with [`Runner::with_seminaive`]`(false)` the two are equal. Purely a
    /// work statistic: match output is identical either way.
    pub frontier_candidates: usize,
    /// Substitutions produced by the search phase (post-limit, pre-apply).
    pub search_matches: usize,
    /// Time spent searching all rules.
    pub search_time: Duration,
    /// Time spent applying matches.
    pub apply_time: Duration,
    /// Time spent rebuilding.
    pub rebuild_time: Duration,
    /// Total step time.
    pub total_time: Duration,
}

impl Iteration {
    /// Total number of rule applications that changed the e-graph.
    pub fn total_applied(&self) -> usize {
        self.applied.iter().map(|(_, n)| n).sum()
    }
}

/// Drives equality saturation over an [`EGraph`].
///
/// A `Runner` owns the e-graph and, per step, searches every rule against a
/// consistent snapshot, applies all matches in a batch, rebuilds, and
/// records an [`Iteration`] report. [`run_one`](Runner::run_one) exposes
/// single steps so callers (the LIAR pipeline) can extract a best
/// expression after every step, as the paper does.
pub struct Runner<L: Language, A: Analysis<L>> {
    /// The e-graph being saturated.
    pub egraph: EGraph<L, A>,
    /// Root classes of interest (kept for extraction convenience).
    pub roots: Vec<Id>,
    /// Reports for the steps run so far.
    pub iterations: Vec<Iteration>,
    /// Why the run stopped, once it has.
    pub stop_reason: Option<StopReason>,
    limits: RunnerLimits,
    scheduler: Box<dyn Scheduler>,
    threads: usize,
    seminaive: bool,
    delta: Option<DeltaSearch<L>>,
    warm_synced: Option<u64>,
    start: Option<Instant>,
    trace: TraceSink,
    flight: Option<Arc<FlightRecorder>>,
}

impl<L: Language + 'static, A: Analysis<L> + 'static> Runner<L, A> {
    /// Wrap an e-graph in a runner with default limits and no scheduling.
    pub fn new(egraph: EGraph<L, A>) -> Self {
        Runner {
            egraph,
            roots: Vec::new(),
            iterations: Vec::new(),
            stop_reason: None,
            limits: RunnerLimits::default(),
            scheduler: Box::new(SimpleScheduler),
            threads: 1,
            seminaive: true,
            delta: None,
            warm_synced: None,
            start: None,
            trace: TraceSink::off(),
            flight: None,
        }
    }

    /// Record a root e-class of interest.
    pub fn with_root(mut self, root: Id) -> Self {
        self.roots.push(root);
        self
    }

    /// Set the saturation-step limit.
    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.limits.iter_limit = limit;
        self
    }

    /// Set the e-node limit.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.limits.node_limit = limit;
        self
    }

    /// Set a wall-clock budget.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.limits.time_limit = Some(limit);
        self
    }

    /// Replace all limits at once.
    pub fn with_limits(mut self, limits: RunnerLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Use a custom [`Scheduler`].
    pub fn with_scheduler(mut self, scheduler: impl Scheduler + 'static) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Search with `n` worker threads (`0` and `1` both mean serial).
    ///
    /// Only the read-only search phase is parallelized; scheduling, apply
    /// and rebuild stay serial. Results are **bit-identical** to the serial
    /// engine: jobs are merged back in (rule order, ascending class id)
    /// order and per-rule match limits are applied to the merged list
    /// exactly as the serial searcher would.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Enable or disable semi-naive (delta-frontier) search. On by default.
    ///
    /// When on, rules whose searcher reports a
    /// [`delta_depth`](crate::Searcher::delta_depth) scan only the e-classes
    /// changed since the rule last ran (see [`crate::seminaive`]) and replay
    /// cached matches for the rest; the emitted match stream — and hence the
    /// whole saturation run, its reports (bar
    /// [`frontier_candidates`](Iteration::frontier_candidates) and timings),
    /// scheduler interactions and explanations — is **bit-identical** to the
    /// whole-graph engine. Per-rule state is keyed by rule *index*, so a
    /// runner must see the same rule slice on every
    /// [`run_one`](Runner::run_one) call (the same contract the
    /// [`Scheduler`] already imposes).
    pub fn with_seminaive(mut self, on: bool) -> Self {
        self.seminaive = on;
        self
    }

    /// Pre-seal the semi-naive frontier at delta version `synced`
    /// (see [`DeltaSearch::new_synced`]).
    ///
    /// For warm starts from a restored snapshot: every rule's first search
    /// skips classes sealed at or before `synced` and scans only work added
    /// since — sound only when the rule slice already saturated against the
    /// pre-`synced` graph. Consumed by the first semi-naive step; if the
    /// rule-slice length later changes (which discards per-rule state), the
    /// rebuilt state is cold.
    pub fn with_warm_frontier(mut self, synced: u64) -> Self {
        self.warm_synced = Some(synced);
        self
    }

    /// Record saturation spans against `recorder` (see the `liar-trace`
    /// crate): per-step `step` spans nesting `search`/`apply`/`rebuild`
    /// phase spans and per-rule `search/<rule>` (serial engine only) and
    /// `apply/<rule>` spans, plus e-graph growth counters and scheduler
    /// ban markers. Tracing is strictly observational — it never feeds
    /// back into search, scheduling, or apply order — so traced runs stay
    /// bit-identical to untraced ones (enforced by the tracing
    /// determinism wall).
    pub fn with_trace(mut self, recorder: &Arc<Recorder>) -> Self {
        self.trace = TraceSink::attached(recorder, "saturation");
        self
    }

    /// Feed notable saturation events — rules that changed the e-graph,
    /// scheduler bans, budget truncations — into a
    /// [`FlightRecorder`] ring buffer. Like tracing, strictly
    /// observational: the recorder never feeds back into search,
    /// scheduling, or apply order.
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    fn check_pre_limits(&self) -> Option<StopReason> {
        if self.iterations.len() >= self.limits.iter_limit {
            return Some(StopReason::IterationLimit);
        }
        if self.egraph.num_nodes() >= self.limits.node_limit {
            return Some(StopReason::NodeLimit);
        }
        if let (Some(budget), Some(start)) = (self.limits.time_limit, self.start) {
            if start.elapsed() >= budget {
                return Some(StopReason::TimeLimit);
            }
        }
        None
    }

    /// Run one saturation step, or return the reason no step was run.
    ///
    /// A step searches every rule (against the pre-step e-graph), applies
    /// all matches, rebuilds, and records an [`Iteration`].
    pub fn run_one(&mut self, rules: &[Rewrite<L, A>]) -> Result<&Iteration, StopReason> {
        if let Some(reason) = self.stop_reason.clone() {
            return Err(reason);
        }
        self.start.get_or_insert_with(Instant::now);
        if let Some(reason) = self.check_pre_limits() {
            self.stop_reason = Some(reason.clone());
            return Err(reason);
        }
        let step_start = Instant::now();
        let iteration_idx = self.iterations.len();
        let step_span = self.trace.begin("step");
        let search_span = self.trace.begin("search");

        // Search phase: all rules see the same clean e-graph snapshot. The
        // scheduler hands out every rule's match budget up front, then the
        // (possibly parallel) search runs, then the scheduler observes every
        // rule's match count — the same call sequence under both engines.
        debug_assert!(self.egraph.is_clean(), "searching a dirty e-graph");
        let limits: Vec<Option<usize>> = rules
            .iter()
            .enumerate()
            .map(|(i, rule)| self.scheduler.match_limit(iteration_idx, i, rule.name()))
            .collect();
        if self.trace.on() || self.flight.is_some() {
            // Banned rules sit out this iteration; mark each ban so the
            // scheduler's backoff behavior is visible on the timeline and
            // in the flight ring.
            for (rule, limit) in rules.iter().zip(&limits) {
                if limit.is_none() {
                    if self.trace.on() {
                        self.trace.instant_args(
                            format_args!("ban/{}", rule.name()),
                            &[("step", (iteration_idx + 1) as f64)],
                        );
                    }
                    if let Some(flight) = &self.flight {
                        flight.record(
                            FlightKind::RuleBanned,
                            rule.name(),
                            (iteration_idx + 1) as f64,
                        );
                    }
                }
            }
        }
        // Candidate class lists per unbanned per-class rule: the operator
        // index narrows pattern rules to the classes containing their root
        // operator; `None` means "every class" (custom searchers, or
        // searchers without an index entry point).
        let class_ids = self.egraph.class_ids();
        let candidates: Vec<Option<Vec<Id>>> = rules
            .iter()
            .zip(&limits)
            .map(|(rule, limit)| {
                if limit.is_none() || !rule.can_search_per_class() {
                    return None;
                }
                rule.candidate_class_ids(&self.egraph)
            })
            .collect();
        let rule_candidates: Vec<usize> = limits
            .iter()
            .zip(&candidates)
            .map(|(limit, cands)| match (limit, cands) {
                (None, _) => 0,
                (Some(_), Some(ids)) => ids.len(),
                (Some(_), None) => class_ids.len(),
            })
            .collect();
        let search_candidates: usize = rule_candidates.iter().sum();
        // Semi-naive plans for eligible rules: scan the delta frontier,
        // replay everything else. Per-rule state is indexed by rule
        // position, so it is rebuilt if the rule-slice length ever changes.
        if self.seminaive
            && self
                .delta
                .as_ref()
                .is_none_or(|d| d.n_rules() != rules.len())
        {
            self.delta = Some(DeltaSearch::new_synced(
                rules.len(),
                self.warm_synced.take().unwrap_or(0),
            ));
        }
        let plans: Vec<Option<SearchPlan<L>>> = match (self.seminaive, self.delta.as_mut()) {
            (true, Some(ds)) => {
                let egraph = &self.egraph;
                let mut closures = ClosureMemo::default();
                rules
                    .iter()
                    .enumerate()
                    .map(|(i, rule)| {
                        let limit = (*limits.get(i)?)?;
                        if !rule.can_search_per_class() {
                            return None;
                        }
                        let depth = rule.delta_depth()?;
                        let full_universe = candidates[i].is_none();
                        let universe = candidates[i].as_deref().unwrap_or(&class_ids);
                        let aux_fp = rule.delta_fingerprint(egraph);
                        let min_yield = rule.min_class_yield(egraph);
                        let plan = ds.begin(
                            egraph,
                            i,
                            depth,
                            universe,
                            full_universe,
                            aux_fp,
                            limit,
                            min_yield,
                            &mut closures,
                        );
                        Some(plan)
                    })
                    .collect()
            }
            _ => rules.iter().map(|_| None).collect(),
        };
        let frontier_candidates: usize = rules
            .iter()
            .zip(&limits)
            .zip(&candidates)
            .zip(&plans)
            .map(|(((_, limit), cands), plan)| match (limit, plan) {
                (None, _) => 0,
                (Some(_), Some(plan)) => plan.n_scans,
                (Some(_), None) => match cands {
                    Some(ids) => ids.len(),
                    None => class_ids.len(),
                },
            })
            .sum();
        let (all_matches, committed) = if self.threads > 1 {
            parallel_search(
                &self.egraph,
                rules,
                &limits,
                &candidates,
                &class_ids,
                &plans,
                self.threads,
            )
        } else {
            serial_search(
                &self.egraph,
                rules,
                &limits,
                &candidates,
                &class_ids,
                &plans,
                &mut self.trace,
            )
        };
        if let Some(ds) = self.delta.as_mut() {
            for (i, scans) in committed.into_iter().enumerate() {
                if plans[i].is_some() {
                    ds.commit(i, scans);
                }
            }
        }
        let mut search_matches = 0;
        let mut rule_matches = Vec::with_capacity(all_matches.len());
        for (i, matches) in all_matches.iter().enumerate() {
            let n: usize = matches.iter().map(|m| m.len()).sum();
            search_matches += n;
            rule_matches.push(n);
            if let Some(limit) = limits[i] {
                self.scheduler.record(iteration_idx, i, n);
                // The match stream stops exactly at the budget, so
                // hitting it means the scheduler truncated this rule.
                if n >= limit && limit > 0 {
                    if let Some(flight) = &self.flight {
                        flight.record(
                            FlightKind::BudgetTruncated,
                            rules[i].name(),
                            limit as f64,
                        );
                    }
                }
            }
        }
        let search_time = step_start.elapsed();
        self.trace.end_with(
            search_span,
            &[
                ("candidates", search_candidates as f64),
                ("frontier", frontier_candidates as f64),
                ("matches", search_matches as f64),
            ],
        );

        // Apply phase.
        let apply_start = Instant::now();
        let apply_span = self.trace.begin("apply");
        let mut applied = Vec::with_capacity(rules.len());
        for (rule, matches) in rules.iter().zip(&all_matches) {
            let rule_span = self.trace.begin_args(format_args!("apply/{}", rule.name()));
            let changed = rule.apply(&mut self.egraph, matches);
            self.trace.end_with(rule_span, &[("changed", changed as f64)]);
            if changed > 0 {
                if let Some(flight) = &self.flight {
                    flight.record(FlightKind::RuleFired, rule.name(), changed as f64);
                }
            }
            applied.push((rule.name().to_string(), changed));
        }
        let apply_time = apply_start.elapsed();
        self.trace.end(apply_span);

        // Rebuild phase.
        let rebuild_start = Instant::now();
        let rebuild_span = self.trace.begin("rebuild");
        let rebuild_unions = self.egraph.rebuild();
        let rebuild_time = rebuild_start.elapsed();
        self.trace
            .end_with(rebuild_span, &[("unions", rebuild_unions as f64)]);

        let iteration = Iteration {
            index: iteration_idx + 1,
            n_nodes: self.egraph.num_nodes(),
            n_classes: self.egraph.num_classes(),
            applied,
            searched: rule_candidates.into_iter().zip(rule_matches).collect(),
            rebuild_unions,
            search_candidates,
            frontier_candidates,
            search_matches,
            search_time,
            apply_time,
            rebuild_time,
            total_time: step_start.elapsed(),
        };
        self.trace
            .end_with(step_span, &[("step", (iteration_idx + 1) as f64)]);
        if self.trace.on() {
            // Growth gauges, sampled after the rebuild (when the counts
            // are exact): e-nodes, e-classes, and hash-cons memo entries.
            self.trace.counter("egraph/nodes", iteration.n_nodes as f64);
            self.trace.counter("egraph/classes", iteration.n_classes as f64);
            self.trace.counter("egraph/memo", self.egraph.memo_len() as f64);
            self.trace.flush();
        }
        let saturated = iteration.total_applied() == 0 && rebuild_unions == 0;
        self.iterations.push(iteration);
        if saturated {
            self.stop_reason = Some(StopReason::Saturated);
        }
        Ok(self.iterations.last().expect("just pushed"))
    }

    /// Run until saturation or a limit; returns the stop reason.
    pub fn run(&mut self, rules: &[Rewrite<L, A>]) -> StopReason {
        loop {
            if let Err(reason) = self.run_one(rules) {
                return reason;
            }
        }
    }
}

/// Per-rule search output: the emitted match lists, plus — for rules that
/// ran under a semi-naive plan — the full results of the scans that
/// actually executed, in plan order, for [`DeltaSearch::commit`].
type SearchOutput<L> = (Vec<Vec<SearchMatches<L>>>, Vec<seminaive::ScanResults<L>>);

/// Search every non-banned rule serially, in rule order.
///
/// Rules with a semi-naive [`SearchPlan`] execute it (scan the frontier,
/// replay the cache). Other per-class-capable rules iterate their candidate
/// list — the sorted operator-index classes when available, the shared
/// sorted class-id list otherwise — and replicate
/// [`Searcher::search`](crate::Searcher::search) truncation semantics
/// exactly; custom searchers fall back to their own whole-e-graph `search`.
/// Skipping non-candidate classes is sound because
/// [`Searcher::candidate_class_ids`](crate::Searcher::candidate_class_ids)
/// over-approximates: a skipped class would have produced zero matches and
/// therefore cannot affect limits or output order.
#[allow(clippy::too_many_arguments)] // Internal: mirrors `parallel_search`.
fn serial_search<L: Language + 'static, A: Analysis<L> + 'static>(
    egraph: &EGraph<L, A>,
    rules: &[Rewrite<L, A>],
    limits: &[Option<usize>],
    candidates: &[Option<Vec<Id>>],
    class_ids: &[Id],
    plans: &[Option<SearchPlan<L>>],
    trace: &mut TraceSink,
) -> SearchOutput<L> {
    let mut all = Vec::with_capacity(rules.len());
    let mut committed = Vec::with_capacity(rules.len());
    for (i, rule) in rules.iter().enumerate() {
        // Banned rules get no span (their ban marker already tells the
        // story); everything else records a `search/<rule>` span.
        let rule_span = match limits[i] {
            Some(_) => trace.begin_args(format_args!("search/{}", rule.name())),
            None => liar_trace::SpanToken::NOOP,
        };
        let (matches, scans) = match (&limits[i], &plans[i]) {
            (None, _) => (Vec::new(), Vec::new()),
            (Some(limit), Some(plan)) => seminaive::execute_plan_serial(plan, egraph, rule, *limit),
            (Some(limit), None) if rule.can_search_per_class() => {
                let ids: &[Id] = candidates[i].as_deref().unwrap_or(class_ids);
                let mut total = 0;
                let mut out = Vec::new();
                for &id in ids {
                    if total >= *limit {
                        break;
                    }
                    let substs = rule.search_class(egraph, id, *limit - total);
                    if !substs.is_empty() {
                        total += substs.len();
                        out.push(SearchMatches::new(id, substs));
                    }
                }
                (out, Vec::new())
            }
            (Some(limit), None) => (rule.search(egraph, *limit), Vec::new()),
        };
        let n_matches: usize = matches.iter().map(|m| m.len()).sum();
        trace.end_with(rule_span, &[("matches", n_matches as f64)]);
        all.push(matches);
        committed.push(scans);
    }
    (all, committed)
}

/// One unit of parallel search work.
enum SearchJob {
    /// Run the rule's whole-e-graph search (custom searchers).
    Whole { rule: usize },
    /// Match the rule against its candidate list's `[start..end]` slice
    /// (pattern searchers).
    Chunk { rule: usize, start: usize, end: usize },
    /// Execute the rule's semi-naive plan entries `[start..end]`.
    PlanChunk { rule: usize, start: usize, end: usize },
}

/// What a parallel worker hands back for one job.
enum JobResult<L> {
    /// Whole/chunk jobs: ready-made match lists.
    Matches(Vec<SearchMatches<L>>),
    /// Plan-chunk jobs: one slot per processed plan entry — the **full**
    /// scan result for a [`PlanEntry::Scan`], `None` for a
    /// [`PlanEntry::Replay`] (the merge already holds the cached list).
    Scans(Vec<Option<Arc<Vec<Subst<L>>>>>),
}

/// Search every non-banned rule using `threads` worker threads.
///
/// Rules with a semi-naive [`SearchPlan`] are split into (rule ×
/// plan-entry-chunk) jobs; other per-class-capable rules into (rule ×
/// candidate-chunk) jobs over the same per-rule candidate lists the serial
/// engine iterates; the rest run as one job each. Workers pull jobs from a
/// shared queue, and each rule's chunk results are merged back in
/// ascending-class order with the rule's match limit applied across the
/// merged list — reproducing [`Searcher::search`](crate::Searcher::search)
/// semantics exactly, so the output (and therefore the whole saturation
/// run) is bit-identical to [`serial_search`].
///
/// For plan rules the merge also reconstructs the committed-scan list: a
/// scan is committed iff the merge consumed its plan entry before the
/// rule's budget ran out — the exact set [`seminaive::execute_plan_serial`]
/// would have run, so the semi-naive state evolves identically under both
/// engines. A worker chunk may stop early once its *local* cumulative
/// match count reaches the limit: by then the merged budget is necessarily
/// exhausted at or before that entry, so the merge never reads further
/// into that chunk.
fn parallel_search<L: Language + 'static, A: Analysis<L> + 'static>(
    egraph: &EGraph<L, A>,
    rules: &[Rewrite<L, A>],
    limits: &[Option<usize>],
    candidates: &[Option<Vec<Id>>],
    class_ids: &[Id],
    plans: &[Option<SearchPlan<L>>],
    threads: usize,
) -> SearchOutput<L> {
    // The classes a per-class rule's chunks range over.
    let rule_ids = |rule: usize| -> &[Id] { candidates[rule].as_deref().unwrap_or(class_ids) };
    // Aim for a few jobs per thread per rule so stragglers rebalance, but
    // keep chunks large enough to amortize queue traffic.
    let chunk_len = (class_ids.len() / (threads * 4)).max(64);

    let mut jobs: Vec<SearchJob> = Vec::new();
    for (i, rule) in rules.iter().enumerate() {
        if limits[i].is_none() {
            continue; // Banned this iteration.
        }
        if let Some(plan) = &plans[i] {
            let mut start = 0;
            while start < plan.entries.len() {
                let end = (start + chunk_len).min(plan.entries.len());
                jobs.push(SearchJob::PlanChunk { rule: i, start, end });
                start = end;
            }
        } else if rule.can_search_per_class() {
            let ids = rule_ids(i);
            let mut start = 0;
            while start < ids.len() {
                let end = (start + chunk_len).min(ids.len());
                jobs.push(SearchJob::Chunk { rule: i, start, end });
                start = end;
            }
        } else {
            jobs.push(SearchJob::Whole { rule: i });
        }
    }

    let results: Vec<OnceLock<JobResult<L>>> = jobs.iter().map(|_| OnceLock::new()).collect();
    let next_job = AtomicUsize::new(0);
    let run_job = |job: &SearchJob| -> JobResult<L> {
        match *job {
            SearchJob::Whole { rule } => JobResult::Matches(
                rules[rule].search(egraph, limits[rule].expect("job for unbanned rule")),
            ),
            SearchJob::Chunk { rule, start, end } => {
                // Cross-class truncation happens at merge time, but a chunk
                // can still stop early: the merge consumes its matches in
                // order, so anything beyond `limit` cumulative substitutions
                // from one chunk could never survive the merged budget.
                let limit = limits[rule].expect("job for unbanned rule");
                let mut found = 0;
                let mut out = Vec::new();
                for &id in &rule_ids(rule)[start..end] {
                    if found >= limit {
                        break;
                    }
                    let substs = rules[rule].search_class(egraph, id, limit - found);
                    if !substs.is_empty() {
                        found += substs.len();
                        out.push(SearchMatches::new(id, substs));
                    }
                }
                JobResult::Matches(out)
            }
            SearchJob::PlanChunk { rule, start, end } => {
                let limit = limits[rule].expect("job for unbanned rule");
                let plan = plans[rule].as_ref().expect("plan job for plan rule");
                let mut counted = 0;
                let mut out = Vec::new();
                for entry in &plan.entries[start..end] {
                    if counted >= limit {
                        break;
                    }
                    match entry {
                        PlanEntry::Scan(id) => {
                            // Full (untruncated) scan: the merge truncates
                            // at emission and commits the full list.
                            let full = Arc::new(rules[rule].search_class(egraph, *id, usize::MAX));
                            counted += full.len();
                            out.push(Some(full));
                        }
                        PlanEntry::Replay(_, cached) => {
                            counted += cached.len();
                            out.push(None);
                        }
                    }
                }
                JobResult::Scans(out)
            }
        }
    };
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = next_job.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let _ = results[i].set(run_job(job));
            });
        }
    });

    // Merge: chunk jobs were created in (rule, ascending class) order, so a
    // stable pass over the job list groups them correctly.
    let mut merged: Vec<Vec<SearchMatches<L>>> = vec![Vec::new(); rules.len()];
    let mut committed: Vec<seminaive::ScanResults<L>> = vec![Vec::new(); rules.len()];
    let mut taken: Vec<usize> = vec![0; rules.len()];
    for (job, result) in jobs.iter().zip(results) {
        let result = result.into_inner().expect("all jobs ran");
        match (job, result) {
            (
                SearchJob::Whole { rule } | SearchJob::Chunk { rule, .. },
                JobResult::Matches(matches),
            ) => {
                let rule = *rule;
                let limit = limits[rule].expect("job for unbanned rule");
                for mut m in matches {
                    // Identical truncation to the serial searcher: stop as
                    // soon as the budget is reached, clip the match set
                    // that crosses it.
                    if taken[rule] >= limit {
                        break;
                    }
                    if taken[rule] + m.len() > limit {
                        m.truncate(limit - taken[rule]);
                    }
                    taken[rule] += m.len();
                    merged[rule].push(m);
                }
            }
            (SearchJob::PlanChunk { rule, start, end }, JobResult::Scans(scans)) => {
                let rule = *rule;
                let limit = limits[rule].expect("job for unbanned rule");
                let plan = plans[rule].as_ref().expect("plan job for plan rule");
                let mut scans = scans.into_iter();
                for entry in &plan.entries[*start..*end] {
                    if taken[rule] >= limit {
                        break;
                    }
                    match entry {
                        PlanEntry::Scan(id) => {
                            let full = scans
                                .next()
                                .flatten()
                                .expect("worker covered the merged prefix");
                            seminaive::emit(*id, &full, limit, &mut taken[rule], &mut merged[rule]);
                            committed[rule].push((*id, full));
                        }
                        PlanEntry::Replay(id, cached) => {
                            let _ = scans.next();
                            seminaive::emit(
                                *id,
                                cached,
                                limit,
                                &mut taken[rule],
                                &mut merged[rule],
                            );
                        }
                    }
                }
            }
            _ => unreachable!("job and result kinds always agree"),
        }
    }
    (merged, committed)
}

impl<L: Language, A: Analysis<L>> std::fmt::Debug for Runner<L, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("egraph", &self.egraph)
            .field("iterations", &self.iterations.len())
            .field("stop_reason", &self.stop_reason)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    fn comm() -> Rewrite<SymbolLang, ()> {
        Rewrite::from_patterns("comm-add", "(+ ?x ?y)", "(+ ?y ?x)")
    }

    fn assoc() -> Rewrite<SymbolLang, ()> {
        Rewrite::from_patterns("assoc-add", "(+ (+ ?x ?y) ?z)", "(+ ?x (+ ?y ?z))")
    }

    #[test]
    fn saturates_on_small_theory() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(+ (+ a b) c)".parse().unwrap());
        let mut runner = Runner::new(eg).with_root(root).with_iter_limit(20);
        let reason = runner.run(&[comm(), assoc()]);
        assert_eq!(reason, StopReason::Saturated);
        // All 12 associations/commutations of (a+b)+c are equal.
        let eg = &runner.egraph;
        for s in ["(+ c (+ b a))", "(+ (+ c b) a)", "(+ b (+ a c))"] {
            let e = s.parse().unwrap();
            assert_eq!(
                eg.lookup_expr(&e),
                Some(eg.find(root)),
                "{s} not in root class"
            );
        }
        runner.egraph.assert_invariants();
    }

    #[test]
    fn iteration_limit_stops() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add_expr(&"(+ a b)".parse().unwrap());
        // A growing rule: f is freshly applied each time.
        let grow = Rewrite::from_patterns("grow", "(+ ?x ?y)", "(+ (f ?x) ?y)");
        let mut runner = Runner::new(eg).with_iter_limit(3);
        let reason = runner.run(&[grow]);
        assert_eq!(reason, StopReason::IterationLimit);
        assert_eq!(runner.iterations.len(), 3);
    }

    #[test]
    fn node_limit_stops() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add_expr(&"(+ a b)".parse().unwrap());
        let grow = Rewrite::from_patterns("grow", "(+ ?x ?y)", "(+ (f ?x) ?y)");
        let mut runner = Runner::new(eg).with_node_limit(10).with_iter_limit(1000);
        let reason = runner.run(&[grow]);
        assert_eq!(reason, StopReason::NodeLimit);
        assert!(runner.egraph.num_nodes() >= 10);
    }

    #[test]
    fn time_limit_stops() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add_expr(&"(+ a b)".parse().unwrap());
        let grow = Rewrite::from_patterns("grow", "(+ ?x ?y)", "(+ (f ?x) ?y)");
        let mut runner = Runner::new(eg)
            .with_iter_limit(usize::MAX)
            .with_node_limit(usize::MAX)
            .with_time_limit(Duration::from_millis(30));
        let reason = runner.run(&[grow]);
        assert_eq!(reason, StopReason::TimeLimit);
        assert!(!runner.iterations.is_empty());
    }

    #[test]
    fn runner_errs_after_stop() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add_expr(&"(+ a b)".parse().unwrap());
        let mut runner = Runner::new(eg).with_iter_limit(1);
        let comm_rule = comm();
        runner.run(std::slice::from_ref(&comm_rule));
        // Further steps report the recorded stop reason.
        assert!(runner.run_one(&[comm_rule]).is_err());
    }

    #[test]
    fn parallel_search_matches_serial() {
        use crate::BackoffScheduler;

        let build = || {
            let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
            let root = eg.add_expr(&"(+ (+ (+ a b) c) (+ d e))".parse().unwrap());
            (eg, root)
        };
        let run = |threads: usize| {
            let (eg, root) = build();
            let mut runner = Runner::new(eg)
                .with_root(root)
                .with_iter_limit(6)
                .with_scheduler(BackoffScheduler::new(5, 2))
                .with_threads(threads);
            runner.run(&[comm(), assoc()]);
            runner
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            let parallel = run(threads);
            assert_eq!(serial.iterations.len(), parallel.iterations.len());
            for (s, p) in serial.iterations.iter().zip(&parallel.iterations) {
                assert_eq!(s.n_nodes, p.n_nodes, "step {}", s.index);
                assert_eq!(s.n_classes, p.n_classes, "step {}", s.index);
                assert_eq!(s.applied, p.applied, "step {}", s.index);
                assert_eq!(s.rebuild_unions, p.rebuild_unions, "step {}", s.index);
                assert_eq!(s.search_candidates, p.search_candidates, "step {}", s.index);
                assert_eq!(s.frontier_candidates, p.frontier_candidates, "step {}", s.index);
                assert_eq!(s.search_matches, p.search_matches, "step {}", s.index);
            }
            assert_eq!(serial.stop_reason, parallel.stop_reason);
            parallel.egraph.assert_invariants();
        }
    }

    #[test]
    fn parallel_search_respects_match_limits() {
        // A growing rule under a tight budget: the limit must clip the
        // parallel merged match list exactly like the serial searcher.
        let grow = Rewrite::from_patterns("grow", "(+ ?x ?y)", "(+ (f ?x) ?y)");
        let run = |threads: usize| {
            let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
            for name in ["a", "b", "c", "d", "e", "g"] {
                let leaf = eg.add(SymbolLang::leaf(name));
                let leaf2 = eg.add(SymbolLang::leaf("z"));
                eg.add(SymbolLang::new("+", vec![leaf, leaf2]));
            }
            let mut runner = Runner::new(eg)
                .with_iter_limit(4)
                .with_scheduler(crate::BackoffScheduler::new(3, 1))
                .with_threads(threads);
            runner.run(std::slice::from_ref(&grow));
            runner
        };
        let serial = run(1);
        let parallel = run(4);
        let counts = |r: &Runner<SymbolLang, ()>| -> Vec<Vec<(String, usize)>> {
            r.iterations.iter().map(|i| i.applied.clone()).collect()
        };
        assert_eq!(counts(&serial), counts(&parallel));
        assert_eq!(serial.egraph.num_nodes(), parallel.egraph.num_nodes());
    }

    #[test]
    fn seminaive_runs_are_bit_identical_to_whole_graph() {
        use crate::BackoffScheduler;

        // comm saturates its one `+` class after two steps, while grow keeps
        // dirtying only the `k` class every step — so late iterations
        // exercise a frontier strictly smaller than the candidate universe.
        let grow = || Rewrite::<SymbolLang, ()>::from_patterns("grow", "(k ?x)", "(k (f ?x))");
        let run = |seminaive: bool, threads: usize| {
            let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
            let root = eg.add_expr(&"(g (+ a b) (k c))".parse().unwrap());
            let mut runner = Runner::new(eg)
                .with_root(root)
                .with_iter_limit(8)
                .with_scheduler(BackoffScheduler::new(50, 2))
                .with_seminaive(seminaive)
                .with_threads(threads);
            runner.run(&[comm(), grow()]);
            runner
        };
        let naive = run(false, 1);
        for threads in [1, 3] {
            let semi = run(true, threads);
            assert_eq!(naive.stop_reason, semi.stop_reason, "{threads} threads");
            assert_eq!(naive.iterations.len(), semi.iterations.len());
            for (n, s) in naive.iterations.iter().zip(&semi.iterations) {
                assert_eq!(n.n_nodes, s.n_nodes, "step {}", n.index);
                assert_eq!(n.n_classes, s.n_classes, "step {}", n.index);
                assert_eq!(n.applied, s.applied, "step {}", n.index);
                assert_eq!(n.rebuild_unions, s.rebuild_unions, "step {}", n.index);
                assert_eq!(n.search_candidates, s.search_candidates, "step {}", n.index);
                assert_eq!(n.search_matches, s.search_matches, "step {}", n.index);
                // Whole-graph scans everything it schedules...
                assert_eq!(n.frontier_candidates, n.search_candidates);
                // ...semi-naive never scans more.
                assert!(s.frontier_candidates <= s.search_candidates, "step {}", n.index);
            }
            let scanned: usize = semi.iterations.iter().map(|i| i.frontier_candidates).sum();
            let scheduled: usize = semi.iterations.iter().map(|i| i.search_candidates).sum();
            assert!(
                scanned < scheduled,
                "frontier never shrank: {scanned} vs {scheduled}"
            );
            semi.egraph.assert_invariants();
        }
    }

    #[test]
    fn seminaive_respects_match_limits_across_engines() {
        // Tight budgets leave scans pending across iterations; the pending
        // carry-over must not change what gets applied vs the naive engine.
        let grow = Rewrite::from_patterns("grow", "(+ ?x ?y)", "(+ (f ?x) ?y)");
        let run = |seminaive: bool, threads: usize| {
            let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
            for name in ["a", "b", "c", "d", "e", "g"] {
                let leaf = eg.add(SymbolLang::leaf(name));
                let leaf2 = eg.add(SymbolLang::leaf("z"));
                eg.add(SymbolLang::new("+", vec![leaf, leaf2]));
            }
            let mut runner = Runner::new(eg)
                .with_iter_limit(4)
                .with_scheduler(crate::BackoffScheduler::new(3, 1))
                .with_seminaive(seminaive)
                .with_threads(threads);
            runner.run(std::slice::from_ref(&grow));
            runner
        };
        let naive = run(false, 1);
        for threads in [1, 4] {
            let semi = run(true, threads);
            let counts = |r: &Runner<SymbolLang, ()>| -> Vec<Vec<(String, usize)>> {
                r.iterations.iter().map(|i| i.applied.clone()).collect()
            };
            assert_eq!(counts(&naive), counts(&semi), "{threads} threads");
            assert_eq!(naive.egraph.num_nodes(), semi.egraph.num_nodes());
        }
    }

    #[test]
    fn operator_index_narrows_search_candidates() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(+ (* a b) (f c))".parse().unwrap());
        let n_classes = eg.num_classes();
        let mut runner = Runner::new(eg).with_root(root).with_iter_limit(1);
        runner.run(&[comm()]);
        let it = &runner.iterations[0];
        // comm-add's root is `+`: only the one `+` class is a candidate,
        // not all six classes of the initial e-graph.
        assert_eq!(it.search_candidates, 1);
        assert!(it.search_candidates < n_classes);
        assert_eq!(it.search_matches, 1);
    }

    #[test]
    fn traced_runs_are_bit_identical_and_spans_nest() {
        let run = |recorder: Option<&Arc<Recorder>>, threads: usize| {
            let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
            let root = eg.add_expr(&"(+ (+ (+ a b) c) (+ d e))".parse().unwrap());
            let mut runner = Runner::new(eg)
                .with_root(root)
                .with_iter_limit(4)
                .with_scheduler(crate::BackoffScheduler::new(5, 2))
                .with_threads(threads);
            if let Some(rec) = recorder {
                runner = runner.with_trace(rec);
            }
            runner.run(&[comm(), assoc()]);
            runner
        };
        let plain = run(None, 1);
        for threads in [1, 4] {
            let rec = Recorder::new();
            let traced = run(Some(&rec), threads);
            assert_eq!(plain.stop_reason, traced.stop_reason, "{threads} threads");
            assert_eq!(plain.iterations.len(), traced.iterations.len());
            for (p, t) in plain.iterations.iter().zip(&traced.iterations) {
                assert_eq!(p.n_nodes, t.n_nodes, "step {}", p.index);
                assert_eq!(p.applied, t.applied, "step {}", p.index);
                assert_eq!(p.search_matches, t.search_matches, "step {}", p.index);
            }

            let events = rec.events();
            let spans = |name: &str| {
                events
                    .iter()
                    .filter(|e| e.kind == liar_trace::EventKind::Span && e.name == name)
                    .count()
            };
            assert_eq!(spans("step"), traced.iterations.len());
            assert_eq!(spans("search"), traced.iterations.len());
            assert_eq!(spans("apply"), traced.iterations.len());
            assert_eq!(spans("rebuild"), traced.iterations.len());
            // Phase spans sit inside their step span.
            let step = events.iter().find(|e| e.name == "step").unwrap();
            for phase in ["search", "apply", "rebuild"] {
                let p = events.iter().find(|e| e.name == phase).unwrap();
                assert!(p.start_us >= step.start_us, "{phase} starts in step");
                assert!(
                    p.start_us + p.dur_us <= step.start_us + step.dur_us,
                    "{phase} ends in step"
                );
            }
            // Growth gauges sample every step, as counters not spans.
            assert_eq!(spans("egraph/nodes"), 0);
            let nodes = events
                .iter()
                .filter(|e| {
                    e.kind == liar_trace::EventKind::Counter && e.name == "egraph/nodes"
                })
                .count();
            assert_eq!(nodes, traced.iterations.len());
            // The serial engine records per-rule search spans.
            if threads == 1 {
                assert!(
                    events.iter().any(|e| e.name == "search/comm-add"),
                    "per-rule search spans exist serially"
                );
            }
            assert!(
                events.iter().any(|e| e.name == "apply/comm-add"),
                "per-rule apply spans exist under both engines"
            );
        }
    }

    #[test]
    fn reports_are_recorded_per_step() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add_expr(&"(+ a b)".parse().unwrap());
        let mut runner = Runner::new(eg).with_iter_limit(10);
        runner.run(&[comm()]);
        assert!(!runner.iterations.is_empty());
        let first = &runner.iterations[0];
        assert_eq!(first.index, 1);
        assert_eq!(first.applied[0].0, "comm-add");
        assert_eq!(first.applied[0].1, 1);
        // Second step discovers nothing new.
        let last = runner.iterations.last().unwrap();
        assert_eq!(last.total_applied(), 0);
    }
}
