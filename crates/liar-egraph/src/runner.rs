//! The saturation loop: batched search → apply → rebuild, with limits and
//! per-iteration reports.
//!
//! The search phase is read-only over a clean e-graph snapshot, so it can
//! fan out across threads (see [`Runner::with_threads`]): every (rule ×
//! e-class-chunk) pair becomes an independent job, and the per-rule match
//! lists are merged back in (rule order, ascending class id) order, making
//! the multi-threaded engine bit-identical to the serial one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::rewrite::SearchMatches;
use crate::{Analysis, EGraph, Id, Language, Rewrite, Scheduler, SimpleScheduler};

/// Why a [`Runner`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// No rule changed the e-graph: a fixpoint was reached.
    Saturated,
    /// The configured iteration (saturation-step) limit was reached.
    IterationLimit,
    /// The e-graph grew past the configured node limit.
    NodeLimit,
    /// The configured wall-clock budget was exhausted.
    TimeLimit,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Saturated => write!(f, "saturated"),
            StopReason::IterationLimit => write!(f, "iteration limit"),
            StopReason::NodeLimit => write!(f, "node limit"),
            StopReason::TimeLimit => write!(f, "time limit"),
        }
    }
}

/// Stopping criteria for a [`Runner`].
///
/// The paper uses a five-minute wall-clock budget per kernel and reports
/// CPU-invariant *step*-limited runs in its artifact; both are supported.
#[derive(Debug, Clone)]
pub struct RunnerLimits {
    /// Maximum number of saturation steps.
    pub iter_limit: usize,
    /// Maximum number of e-nodes before stopping.
    pub node_limit: usize,
    /// Optional wall-clock budget.
    pub time_limit: Option<Duration>,
}

impl Default for RunnerLimits {
    fn default() -> Self {
        RunnerLimits {
            iter_limit: 30,
            node_limit: 500_000,
            time_limit: None,
        }
    }
}

/// Everything that happened during one saturation step — the raw data
/// behind the paper's fig. 4 (e-node counts and time per step).
#[derive(Debug, Clone)]
pub struct Iteration {
    /// Step index, starting at 1 (step 0 is the initial e-graph).
    pub index: usize,
    /// Unique e-nodes after this step's rebuild.
    pub n_nodes: usize,
    /// E-classes after this step's rebuild.
    pub n_classes: usize,
    /// `(rule name, substitutions that changed the e-graph)`, rules in
    /// rule-set order.
    pub applied: Vec<(String, usize)>,
    /// Unions performed by congruence repair during rebuild.
    pub rebuild_unions: usize,
    /// Candidate e-classes scheduled for matching across all unbanned
    /// rules: per-class searchers count their operator-index candidate
    /// list (see [`Searcher::candidate_class_ids`](crate::Searcher::candidate_class_ids)),
    /// whole-e-graph searchers count every class. Identical under the
    /// serial and parallel engines.
    pub search_candidates: usize,
    /// Substitutions produced by the search phase (post-limit, pre-apply).
    pub search_matches: usize,
    /// Time spent searching all rules.
    pub search_time: Duration,
    /// Time spent applying matches.
    pub apply_time: Duration,
    /// Time spent rebuilding.
    pub rebuild_time: Duration,
    /// Total step time.
    pub total_time: Duration,
}

impl Iteration {
    /// Total number of rule applications that changed the e-graph.
    pub fn total_applied(&self) -> usize {
        self.applied.iter().map(|(_, n)| n).sum()
    }
}

/// Drives equality saturation over an [`EGraph`].
///
/// A `Runner` owns the e-graph and, per step, searches every rule against a
/// consistent snapshot, applies all matches in a batch, rebuilds, and
/// records an [`Iteration`] report. [`run_one`](Runner::run_one) exposes
/// single steps so callers (the LIAR pipeline) can extract a best
/// expression after every step, as the paper does.
pub struct Runner<L: Language, A: Analysis<L>> {
    /// The e-graph being saturated.
    pub egraph: EGraph<L, A>,
    /// Root classes of interest (kept for extraction convenience).
    pub roots: Vec<Id>,
    /// Reports for the steps run so far.
    pub iterations: Vec<Iteration>,
    /// Why the run stopped, once it has.
    pub stop_reason: Option<StopReason>,
    limits: RunnerLimits,
    scheduler: Box<dyn Scheduler>,
    threads: usize,
    start: Option<Instant>,
}

impl<L: Language + 'static, A: Analysis<L> + 'static> Runner<L, A> {
    /// Wrap an e-graph in a runner with default limits and no scheduling.
    pub fn new(egraph: EGraph<L, A>) -> Self {
        Runner {
            egraph,
            roots: Vec::new(),
            iterations: Vec::new(),
            stop_reason: None,
            limits: RunnerLimits::default(),
            scheduler: Box::new(SimpleScheduler),
            threads: 1,
            start: None,
        }
    }

    /// Record a root e-class of interest.
    pub fn with_root(mut self, root: Id) -> Self {
        self.roots.push(root);
        self
    }

    /// Set the saturation-step limit.
    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.limits.iter_limit = limit;
        self
    }

    /// Set the e-node limit.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.limits.node_limit = limit;
        self
    }

    /// Set a wall-clock budget.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.limits.time_limit = Some(limit);
        self
    }

    /// Replace all limits at once.
    pub fn with_limits(mut self, limits: RunnerLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Use a custom [`Scheduler`].
    pub fn with_scheduler(mut self, scheduler: impl Scheduler + 'static) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Search with `n` worker threads (`0` and `1` both mean serial).
    ///
    /// Only the read-only search phase is parallelized; scheduling, apply
    /// and rebuild stay serial. Results are **bit-identical** to the serial
    /// engine: jobs are merged back in (rule order, ascending class id)
    /// order and per-rule match limits are applied to the merged list
    /// exactly as the serial searcher would.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    fn check_pre_limits(&self) -> Option<StopReason> {
        if self.iterations.len() >= self.limits.iter_limit {
            return Some(StopReason::IterationLimit);
        }
        if self.egraph.num_nodes() >= self.limits.node_limit {
            return Some(StopReason::NodeLimit);
        }
        if let (Some(budget), Some(start)) = (self.limits.time_limit, self.start) {
            if start.elapsed() >= budget {
                return Some(StopReason::TimeLimit);
            }
        }
        None
    }

    /// Run one saturation step, or return the reason no step was run.
    ///
    /// A step searches every rule (against the pre-step e-graph), applies
    /// all matches, rebuilds, and records an [`Iteration`].
    pub fn run_one(&mut self, rules: &[Rewrite<L, A>]) -> Result<&Iteration, StopReason> {
        if let Some(reason) = self.stop_reason.clone() {
            return Err(reason);
        }
        self.start.get_or_insert_with(Instant::now);
        if let Some(reason) = self.check_pre_limits() {
            self.stop_reason = Some(reason.clone());
            return Err(reason);
        }
        let step_start = Instant::now();
        let iteration_idx = self.iterations.len();

        // Search phase: all rules see the same clean e-graph snapshot. The
        // scheduler hands out every rule's match budget up front, then the
        // (possibly parallel) search runs, then the scheduler observes every
        // rule's match count — the same call sequence under both engines.
        debug_assert!(self.egraph.is_clean(), "searching a dirty e-graph");
        let limits: Vec<Option<usize>> = rules
            .iter()
            .enumerate()
            .map(|(i, rule)| self.scheduler.match_limit(iteration_idx, i, rule.name()))
            .collect();
        // Candidate class lists per unbanned per-class rule: the operator
        // index narrows pattern rules to the classes containing their root
        // operator; `None` means "every class" (custom searchers, or
        // searchers without an index entry point).
        let class_ids = self.egraph.class_ids();
        let candidates: Vec<Option<Vec<Id>>> = rules
            .iter()
            .zip(&limits)
            .map(|(rule, limit)| {
                if limit.is_none() || !rule.can_search_per_class() {
                    return None;
                }
                rule.candidate_class_ids(&self.egraph)
            })
            .collect();
        let search_candidates: usize = rules
            .iter()
            .zip(&limits)
            .zip(&candidates)
            .map(|((_, limit), cands)| match (limit, cands) {
                (None, _) => 0,
                (Some(_), Some(ids)) => ids.len(),
                (Some(_), None) => class_ids.len(),
            })
            .sum();
        let all_matches = if self.threads > 1 {
            parallel_search(&self.egraph, rules, &limits, &candidates, &class_ids, self.threads)
        } else {
            serial_search(&self.egraph, rules, &limits, &candidates, &class_ids)
        };
        let mut search_matches = 0;
        for (i, matches) in all_matches.iter().enumerate() {
            let n: usize = matches.iter().map(|m| m.len()).sum();
            search_matches += n;
            if limits[i].is_some() {
                self.scheduler.record(iteration_idx, i, n);
            }
        }
        let search_time = step_start.elapsed();

        // Apply phase.
        let apply_start = Instant::now();
        let mut applied = Vec::with_capacity(rules.len());
        for (rule, matches) in rules.iter().zip(&all_matches) {
            let changed = rule.apply(&mut self.egraph, matches);
            applied.push((rule.name().to_string(), changed));
        }
        let apply_time = apply_start.elapsed();

        // Rebuild phase.
        let rebuild_start = Instant::now();
        let rebuild_unions = self.egraph.rebuild();
        let rebuild_time = rebuild_start.elapsed();

        let iteration = Iteration {
            index: iteration_idx + 1,
            n_nodes: self.egraph.num_nodes(),
            n_classes: self.egraph.num_classes(),
            applied,
            rebuild_unions,
            search_candidates,
            search_matches,
            search_time,
            apply_time,
            rebuild_time,
            total_time: step_start.elapsed(),
        };
        let saturated = iteration.total_applied() == 0 && rebuild_unions == 0;
        self.iterations.push(iteration);
        if saturated {
            self.stop_reason = Some(StopReason::Saturated);
        }
        Ok(self.iterations.last().expect("just pushed"))
    }

    /// Run until saturation or a limit; returns the stop reason.
    pub fn run(&mut self, rules: &[Rewrite<L, A>]) -> StopReason {
        loop {
            if let Err(reason) = self.run_one(rules) {
                return reason;
            }
        }
    }
}

/// Search every non-banned rule serially, in rule order.
///
/// Per-class-capable rules iterate their candidate list — the sorted
/// operator-index classes when available, the shared sorted class-id list
/// otherwise — and replicate [`Searcher::search`](crate::Searcher::search)
/// truncation semantics exactly; custom searchers fall back to their own
/// whole-e-graph `search`. Skipping non-candidate classes is sound because
/// [`Searcher::candidate_class_ids`](crate::Searcher::candidate_class_ids)
/// over-approximates: a skipped class would have produced zero matches and
/// therefore cannot affect limits or output order.
fn serial_search<L: Language + 'static, A: Analysis<L> + 'static>(
    egraph: &EGraph<L, A>,
    rules: &[Rewrite<L, A>],
    limits: &[Option<usize>],
    candidates: &[Option<Vec<Id>>],
    class_ids: &[Id],
) -> Vec<Vec<SearchMatches<L>>> {
    rules
        .iter()
        .zip(limits)
        .zip(candidates)
        .map(|((rule, limit), cands)| match limit {
            None => Vec::new(),
            Some(limit) if rule.can_search_per_class() => {
                let ids: &[Id] = cands.as_deref().unwrap_or(class_ids);
                let mut total = 0;
                let mut out = Vec::new();
                for &id in ids {
                    if total >= *limit {
                        break;
                    }
                    let substs = rule.search_class(egraph, id, *limit - total);
                    if !substs.is_empty() {
                        total += substs.len();
                        out.push(SearchMatches { class: id, substs });
                    }
                }
                out
            }
            Some(limit) => rule.search(egraph, *limit),
        })
        .collect()
}

/// One unit of parallel search work.
enum SearchJob {
    /// Run the rule's whole-e-graph search (custom searchers).
    Whole { rule: usize },
    /// Match the rule against its candidate list's `[start..end]` slice
    /// (pattern searchers).
    Chunk { rule: usize, start: usize, end: usize },
}

/// Search every non-banned rule using `threads` worker threads.
///
/// Rules whose searcher supports per-class search are split into
/// (rule × candidate-chunk) jobs over the same per-rule candidate lists the
/// serial engine iterates; the rest run as one job each. Workers pull
/// jobs from a shared queue, and each rule's chunk results are merged back
/// in ascending-class order with the rule's match limit applied across the
/// merged list — reproducing [`Searcher::search`](crate::Searcher::search)
/// semantics exactly, so the output (and therefore the whole saturation
/// run) is bit-identical to [`serial_search`].
fn parallel_search<L: Language + 'static, A: Analysis<L> + 'static>(
    egraph: &EGraph<L, A>,
    rules: &[Rewrite<L, A>],
    limits: &[Option<usize>],
    candidates: &[Option<Vec<Id>>],
    class_ids: &[Id],
    threads: usize,
) -> Vec<Vec<SearchMatches<L>>> {
    // The classes a per-class rule's chunks range over.
    let rule_ids = |rule: usize| -> &[Id] { candidates[rule].as_deref().unwrap_or(class_ids) };
    // Aim for a few jobs per thread per rule so stragglers rebalance, but
    // keep chunks large enough to amortize queue traffic.
    let chunk_len = (class_ids.len() / (threads * 4)).max(64);

    let mut jobs: Vec<SearchJob> = Vec::new();
    for (i, rule) in rules.iter().enumerate() {
        if limits[i].is_none() {
            continue; // Banned this iteration.
        }
        if rule.can_search_per_class() {
            let ids = rule_ids(i);
            let mut start = 0;
            while start < ids.len() {
                let end = (start + chunk_len).min(ids.len());
                jobs.push(SearchJob::Chunk { rule: i, start, end });
                start = end;
            }
        } else {
            jobs.push(SearchJob::Whole { rule: i });
        }
    }

    let results: Vec<OnceLock<Vec<SearchMatches<L>>>> =
        jobs.iter().map(|_| OnceLock::new()).collect();
    let next_job = AtomicUsize::new(0);
    let run_job = |job: &SearchJob| -> Vec<SearchMatches<L>> {
        match *job {
            SearchJob::Whole { rule } => {
                rules[rule].search(egraph, limits[rule].expect("job for unbanned rule"))
            }
            SearchJob::Chunk { rule, start, end } => {
                // Cross-class truncation happens at merge time, but a chunk
                // can still stop early: the merge consumes its matches in
                // order, so anything beyond `limit` cumulative substitutions
                // from one chunk could never survive the merged budget.
                let limit = limits[rule].expect("job for unbanned rule");
                let mut found = 0;
                let mut out = Vec::new();
                for &id in &rule_ids(rule)[start..end] {
                    if found >= limit {
                        break;
                    }
                    let substs = rules[rule].search_class(egraph, id, limit - found);
                    if !substs.is_empty() {
                        found += substs.len();
                        out.push(SearchMatches { class: id, substs });
                    }
                }
                out
            }
        }
    };
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = next_job.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let _ = results[i].set(run_job(job));
            });
        }
    });

    // Merge: chunk jobs were created in (rule, ascending class) order, so a
    // stable pass over the job list groups them correctly.
    let mut merged: Vec<Vec<SearchMatches<L>>> = vec![Vec::new(); rules.len()];
    let mut taken: Vec<usize> = vec![0; rules.len()];
    for (job, result) in jobs.iter().zip(results) {
        let (SearchJob::Whole { rule } | SearchJob::Chunk { rule, .. }) = *job;
        let limit = limits[rule].expect("job for unbanned rule");
        let result = result.into_inner().expect("all jobs ran");
        for mut m in result {
            // Identical truncation to the serial searcher: stop as soon as
            // the budget is reached, clip the match set that crosses it.
            if taken[rule] >= limit {
                break;
            }
            if taken[rule] + m.substs.len() > limit {
                m.substs.truncate(limit - taken[rule]);
            }
            taken[rule] += m.substs.len();
            merged[rule].push(m);
        }
    }
    merged
}

impl<L: Language, A: Analysis<L>> std::fmt::Debug for Runner<L, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("egraph", &self.egraph)
            .field("iterations", &self.iterations.len())
            .field("stop_reason", &self.stop_reason)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    fn comm() -> Rewrite<SymbolLang, ()> {
        Rewrite::from_patterns("comm-add", "(+ ?x ?y)", "(+ ?y ?x)")
    }

    fn assoc() -> Rewrite<SymbolLang, ()> {
        Rewrite::from_patterns("assoc-add", "(+ (+ ?x ?y) ?z)", "(+ ?x (+ ?y ?z))")
    }

    #[test]
    fn saturates_on_small_theory() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(+ (+ a b) c)".parse().unwrap());
        let mut runner = Runner::new(eg).with_root(root).with_iter_limit(20);
        let reason = runner.run(&[comm(), assoc()]);
        assert_eq!(reason, StopReason::Saturated);
        // All 12 associations/commutations of (a+b)+c are equal.
        let eg = &runner.egraph;
        for s in ["(+ c (+ b a))", "(+ (+ c b) a)", "(+ b (+ a c))"] {
            let e = s.parse().unwrap();
            assert_eq!(
                eg.lookup_expr(&e),
                Some(eg.find(root)),
                "{s} not in root class"
            );
        }
        runner.egraph.assert_invariants();
    }

    #[test]
    fn iteration_limit_stops() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add_expr(&"(+ a b)".parse().unwrap());
        // A growing rule: f is freshly applied each time.
        let grow = Rewrite::from_patterns("grow", "(+ ?x ?y)", "(+ (f ?x) ?y)");
        let mut runner = Runner::new(eg).with_iter_limit(3);
        let reason = runner.run(&[grow]);
        assert_eq!(reason, StopReason::IterationLimit);
        assert_eq!(runner.iterations.len(), 3);
    }

    #[test]
    fn node_limit_stops() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add_expr(&"(+ a b)".parse().unwrap());
        let grow = Rewrite::from_patterns("grow", "(+ ?x ?y)", "(+ (f ?x) ?y)");
        let mut runner = Runner::new(eg).with_node_limit(10).with_iter_limit(1000);
        let reason = runner.run(&[grow]);
        assert_eq!(reason, StopReason::NodeLimit);
        assert!(runner.egraph.num_nodes() >= 10);
    }

    #[test]
    fn time_limit_stops() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add_expr(&"(+ a b)".parse().unwrap());
        let grow = Rewrite::from_patterns("grow", "(+ ?x ?y)", "(+ (f ?x) ?y)");
        let mut runner = Runner::new(eg)
            .with_iter_limit(usize::MAX)
            .with_node_limit(usize::MAX)
            .with_time_limit(Duration::from_millis(30));
        let reason = runner.run(&[grow]);
        assert_eq!(reason, StopReason::TimeLimit);
        assert!(!runner.iterations.is_empty());
    }

    #[test]
    fn runner_errs_after_stop() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add_expr(&"(+ a b)".parse().unwrap());
        let mut runner = Runner::new(eg).with_iter_limit(1);
        let comm_rule = comm();
        runner.run(std::slice::from_ref(&comm_rule));
        // Further steps report the recorded stop reason.
        assert!(runner.run_one(&[comm_rule]).is_err());
    }

    #[test]
    fn parallel_search_matches_serial() {
        use crate::BackoffScheduler;

        let build = || {
            let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
            let root = eg.add_expr(&"(+ (+ (+ a b) c) (+ d e))".parse().unwrap());
            (eg, root)
        };
        let run = |threads: usize| {
            let (eg, root) = build();
            let mut runner = Runner::new(eg)
                .with_root(root)
                .with_iter_limit(6)
                .with_scheduler(BackoffScheduler::new(5, 2))
                .with_threads(threads);
            runner.run(&[comm(), assoc()]);
            runner
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            let parallel = run(threads);
            assert_eq!(serial.iterations.len(), parallel.iterations.len());
            for (s, p) in serial.iterations.iter().zip(&parallel.iterations) {
                assert_eq!(s.n_nodes, p.n_nodes, "step {}", s.index);
                assert_eq!(s.n_classes, p.n_classes, "step {}", s.index);
                assert_eq!(s.applied, p.applied, "step {}", s.index);
                assert_eq!(s.rebuild_unions, p.rebuild_unions, "step {}", s.index);
                assert_eq!(s.search_candidates, p.search_candidates, "step {}", s.index);
                assert_eq!(s.search_matches, p.search_matches, "step {}", s.index);
            }
            assert_eq!(serial.stop_reason, parallel.stop_reason);
            parallel.egraph.assert_invariants();
        }
    }

    #[test]
    fn parallel_search_respects_match_limits() {
        // A growing rule under a tight budget: the limit must clip the
        // parallel merged match list exactly like the serial searcher.
        let grow = Rewrite::from_patterns("grow", "(+ ?x ?y)", "(+ (f ?x) ?y)");
        let run = |threads: usize| {
            let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
            for name in ["a", "b", "c", "d", "e", "g"] {
                let leaf = eg.add(SymbolLang::leaf(name));
                let leaf2 = eg.add(SymbolLang::leaf("z"));
                eg.add(SymbolLang::new("+", vec![leaf, leaf2]));
            }
            let mut runner = Runner::new(eg)
                .with_iter_limit(4)
                .with_scheduler(crate::BackoffScheduler::new(3, 1))
                .with_threads(threads);
            runner.run(std::slice::from_ref(&grow));
            runner
        };
        let serial = run(1);
        let parallel = run(4);
        let counts = |r: &Runner<SymbolLang, ()>| -> Vec<Vec<(String, usize)>> {
            r.iterations.iter().map(|i| i.applied.clone()).collect()
        };
        assert_eq!(counts(&serial), counts(&parallel));
        assert_eq!(serial.egraph.num_nodes(), parallel.egraph.num_nodes());
    }

    #[test]
    fn operator_index_narrows_search_candidates() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        let root = eg.add_expr(&"(+ (* a b) (f c))".parse().unwrap());
        let n_classes = eg.num_classes();
        let mut runner = Runner::new(eg).with_root(root).with_iter_limit(1);
        runner.run(&[comm()]);
        let it = &runner.iterations[0];
        // comm-add's root is `+`: only the one `+` class is a candidate,
        // not all six classes of the initial e-graph.
        assert_eq!(it.search_candidates, 1);
        assert!(it.search_candidates < n_classes);
        assert_eq!(it.search_matches, 1);
    }

    #[test]
    fn reports_are_recorded_per_step() {
        let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
        eg.add_expr(&"(+ a b)".parse().unwrap());
        let mut runner = Runner::new(eg).with_iter_limit(10);
        runner.run(&[comm()]);
        assert!(!runner.iterations.is_empty());
        let first = &runner.iterations[0];
        assert_eq!(first.index, 1);
        assert_eq!(first.applied[0].0, "comm-add");
        assert_eq!(first.applied[0].1, 1);
        // Second step discovers nothing new.
        let last = runner.iterations.last().unwrap();
        assert_eq!(last.total_applied(), 0);
    }
}
