//! The versioned delta index: which e-classes changed since each rebuild.
//!
//! Semi-naive (delta-driven) e-matching — the evaluation strategy of
//! egglog — needs to know, per saturation iteration, which e-classes
//! *changed*: gained e-nodes, were newly created, or absorbed another
//! class during re-canonicalization. The [`DeltaIndex`] records exactly
//! that, organized into **epochs**: every call to
//! [`EGraph::rebuild`](crate::EGraph::rebuild) seals the dirt recorded
//! since the previous rebuild under a monotonically increasing version
//! number. A searcher that remembers the version it last synced at can ask
//! for [everything dirtied since](DeltaIndex::dirty_since) and restrict its
//! scan to (the closure of) that frontier — see
//! [`seminaive`](crate::seminaive).
//!
//! The index is first-class and snapshot-serializable: [`version`],
//! [`epochs`] and [`unsealed`] expose the full state, and [`restore`]
//! rebuilds an index from those parts, so an e-graph snapshot can carry
//! its delta history and warm-started searches keep their incrementality.
//!
//! [`version`]: DeltaIndex::version
//! [`epochs`]: DeltaIndex::epochs
//! [`unsealed`]: DeltaIndex::unsealed
//! [`restore`]: DeltaIndex::restore

use crate::Id;

/// A log of changed e-classes, grouped into sealed epochs (one per
/// [`rebuild`](crate::EGraph::rebuild)) plus the unsealed current batch.
///
/// Recorded ids may be stale — a dirtied class can later merge into
/// another — so every read canonicalizes through a caller-supplied `find`
/// before returning ids.
#[derive(Debug, Clone, Default)]
pub struct DeltaIndex {
    /// Version counter: the number of times the index has been sealed.
    version: u64,
    /// Sealed batches: `(version at seal time, sorted deduped dirty ids)`.
    /// Epochs are in strictly increasing version order; empty batches are
    /// not stored.
    epochs: Vec<(u64, Vec<Id>)>,
    /// Dirt recorded since the last seal, in recording order (unsorted,
    /// possibly duplicated).
    current: Vec<Id>,
}

impl DeltaIndex {
    /// The current version: incremented by every `seal`.
    ///
    /// A searcher synced at version `v` has seen every change sealed under
    /// versions `< v`; changes recorded afterwards land in epochs `>= v`
    /// (or in the still-unsealed batch, which
    /// [`dirty_since`](DeltaIndex::dirty_since) always includes).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Record that class `id` changed (was created, gained nodes, or
    /// absorbed a merged class). `id` may be non-canonical by read time.
    pub(crate) fn record(&mut self, id: Id) {
        self.current.push(id);
    }

    /// Seal the current batch under the current version and advance the
    /// version counter. Called at the end of every
    /// [`rebuild`](crate::EGraph::rebuild), when ids can be canonicalized
    /// through `find` once and for all.
    pub(crate) fn seal(&mut self, find: impl Fn(Id) -> Id) {
        if !self.current.is_empty() {
            let mut ids: Vec<Id> = self.current.drain(..).map(&find).collect();
            ids.sort_unstable();
            ids.dedup();
            self.epochs.push((self.version, ids));
        }
        self.version += 1;
    }

    /// Every class dirtied at epoch version `>= since`, plus the unsealed
    /// current batch, canonicalized through `find`, sorted and deduplicated.
    ///
    /// Including the unsealed batch means dirt recorded *before the first
    /// seal* (the initial e-graph contents) is visible to a searcher synced
    /// at version 0 — the first search therefore sees everything dirty and
    /// produces exactly the whole-graph result. Re-reading the unsealed
    /// batch after a partial sync merely re-reports known-dirty classes,
    /// which frontier consumers treat idempotently.
    pub fn dirty_since(&self, since: u64, find: impl Fn(Id) -> Id) -> Vec<Id> {
        let sealed = self
            .epochs
            .iter()
            .filter(|(v, _)| *v >= since)
            .flat_map(|(_, ids)| ids.iter());
        let mut out: Vec<Id> = sealed.chain(self.current.iter()).map(|&id| find(id)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The sealed epochs, oldest first: `(version, dirty ids as recorded)`.
    /// Ids are canonical as of their seal time and may be stale now.
    pub fn epochs(&self) -> impl Iterator<Item = (u64, &[Id])> {
        self.epochs.iter().map(|(v, ids)| (*v, ids.as_slice()))
    }

    /// The unsealed current batch, in recording order (raw: unsorted,
    /// possibly duplicated and stale).
    pub fn unsealed(&self) -> &[Id] {
        &self.current
    }

    /// Rebuild an index from snapshotted parts (see [`epochs`] and
    /// [`unsealed`]; `current` is the unsealed batch).
    ///
    /// # Panics
    ///
    /// Panics if `epochs` are not in strictly increasing version order or
    /// reference versions `>= version`.
    ///
    /// [`epochs`]: DeltaIndex::epochs
    /// [`unsealed`]: DeltaIndex::unsealed
    pub fn restore(version: u64, epochs: Vec<(u64, Vec<Id>)>, current: Vec<Id>) -> Self {
        assert!(
            epochs.windows(2).all(|w| w[0].0 < w[1].0),
            "epoch versions must be strictly increasing"
        );
        assert!(
            epochs.last().is_none_or(|(v, _)| *v < version),
            "epoch versions must be below the index version"
        );
        DeltaIndex { version, epochs, current }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> Id {
        Id::from_index(i)
    }

    #[test]
    fn dirty_since_spans_epochs_and_current() {
        let mut d = DeltaIndex::default();
        let identity = |i: Id| i;
        d.record(id(0));
        d.record(id(1));
        assert_eq!(d.dirty_since(0, identity), vec![id(0), id(1)]);
        d.seal(identity); // epoch 0
        assert_eq!(d.version(), 1);
        d.record(id(2));
        d.seal(identity); // epoch 1
        d.record(id(3));
        // Unsealed dirt is always visible.
        assert_eq!(d.dirty_since(2, identity), vec![id(3)]);
        assert_eq!(d.dirty_since(1, identity), vec![id(2), id(3)]);
        assert_eq!(d.dirty_since(0, identity), vec![id(0), id(1), id(2), id(3)]);
    }

    #[test]
    fn seal_canonicalizes_and_dedups() {
        let mut d = DeltaIndex::default();
        d.record(id(5));
        d.record(id(4));
        d.record(id(5));
        // 5 canonicalizes to 4 at seal time.
        d.seal(|i| if i == id(5) { id(4) } else { i });
        assert_eq!(d.dirty_since(0, |i| i), vec![id(4)]);
        let epochs: Vec<_> = d.epochs().collect();
        assert_eq!(epochs, vec![(0, &[id(4)][..])]);
    }

    #[test]
    fn empty_seals_only_advance_version() {
        let mut d = DeltaIndex::default();
        d.seal(|i| i);
        d.seal(|i| i);
        assert_eq!(d.version(), 2);
        assert_eq!(d.epochs().count(), 0);
        assert!(d.dirty_since(0, |i| i).is_empty());
    }

    #[test]
    fn restore_round_trips() {
        let mut d = DeltaIndex::default();
        d.record(id(0));
        d.seal(|i| i);
        d.record(id(1));
        let snapshot = DeltaIndex::restore(
            d.version(),
            d.epochs().map(|(v, ids)| (v, ids.to_vec())).collect(),
            d.unsealed().to_vec(),
        );
        assert_eq!(snapshot.version(), d.version());
        assert_eq!(snapshot.dirty_since(0, |i| i), d.dirty_since(0, |i| i));
    }
}
