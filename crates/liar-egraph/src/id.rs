//! E-class identifiers.

use std::fmt;

/// An opaque identifier naming an e-class inside an [`EGraph`](crate::EGraph).
///
/// `Id`s are only meaningful relative to the e-graph that issued them, and a
/// non-canonical `Id` may refer to a class that has since been unioned into
/// another; [`EGraph::find`](crate::EGraph::find) canonicalizes.
///
/// Inside a [`RecExpr`](crate::RecExpr), `Id`s are reused as plain indices
/// into the expression's node table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Id(u32);

impl Id {
    /// Create an id from a raw index.
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "id overflow");
        Id(i as u32)
    }

    /// The raw index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for Id {
    fn from(i: usize) -> Self {
        Id::from_index(i)
    }
}

impl From<Id> for usize {
    fn from(id: Id) -> Self {
        id.index()
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let id = Id::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(Id::from(42usize), id);
    }

    #[test]
    fn display_is_plain_number() {
        assert_eq!(Id::from_index(7).to_string(), "7");
        assert_eq!(format!("{:?}", Id::from_index(7)), "7");
    }
}
