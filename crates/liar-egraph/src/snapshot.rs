//! Versioned, deterministic binary serialization of an e-graph.
//!
//! [`EGraph::snapshot`] freezes a **clean** (rebuilt) e-graph into a flat
//! byte vector: the union-find's raw parent table, every e-class's
//! canonical node arena and parent back-pointers, the analysis facts, the
//! hash-cons memo, the versioned [`DeltaIndex`], and —
//! when proof production is enabled — the full explanation forest.
//! [`EGraph::restore`] rebuilds an e-graph that is *behaviorally
//! identical*: the same canonical ids (before and after a `rebuild()`),
//! the same operator index, bit-identical extraction results under every
//! extractor and cost model, the same semi-naive frontier
//! ([`dirty_since`](crate::EGraph::dirty_since) on the sealed version is
//! empty), and replayable [`Explanation`](crate::Explanation)s.
//!
//! # Format
//!
//! All integers are little-endian; ids are `u32` indices. Layout:
//!
//! ```text
//! magic    8 × u8   b"LIARSNAP"
//! version  u32      SNAPSHOT_VERSION
//! checksum u64      FNV-1a 64 of every byte after this field
//! flags    u8       bit 0: explanation forest present
//! strings  u32 n, then n × (u32 len, utf-8 bytes)   sorted, deduplicated
//! unionfind u32 n_ids, then n_ids × u32 parent      roots self-parenting
//! classes  u32 n, then per class (ascending id):
//!            u32 id, u32 n_nodes, nodes, u32 n_parents,
//!            n_parents × (node, u32 parent-id), analysis data
//! memo     u32 n, then n × (node, u32 id)           sorted by node
//! delta    u64 version, u32 n_epochs,
//!            n_epochs × (u64 version, u32 n, n × u32 id),
//!            u32 n_unsealed, ids
//! explain  (flag bit 0 only) u32 n_ids ×
//!            (node, u32 parent, u8 tag[, u32 rule-name], u8 forward),
//!          u32 n_uncanon, n × (node, u32 id)        sorted by node
//! ```
//!
//! A node is `u32 string-index, u32 arity, arity × u32 child-id`; the
//! string is its [`Language::display_op`] and restore re-parses it with
//! [`Language::from_op`] — the snapshot layer therefore requires the
//! language's textual syntax to round-trip (true of
//! [`SymbolLang`](crate::SymbolLang) and LIAR's array IR; languages
//! without `from_op` get a structured error, never a panic).
//!
//! # Determinism
//!
//! Every hash-map iteration is sorted before serialization, so the bytes
//! are a pure function of the e-graph's logical content:
//! `snapshot(restore(s)) == s`, and equal requests produce equal bytes —
//! which is what lets a store content-address snapshots by request
//! fingerprint.
//!
//! Rule justifications serialize the rule *name* but not the matched
//! substitution: the substitution is diagnostic-only (proof checking
//! re-derives bindings by replaying the rule — see
//! [`Justification::Rule`]), so restored edges carry an empty one and
//! proofs replay bit-identically.
//!
//! # Versioning policy
//!
//! [`SNAPSHOT_VERSION`] is bumped on **any** layout or semantics change;
//! there is no cross-version migration — a reader that sees a foreign
//! version returns [`SnapshotError::VersionMismatch`] and the caller
//! re-saturates. Snapshots are a cache, not an archive format.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use crate::delta::DeltaIndex;
use crate::explain::{Explain, Justification};
use crate::pattern::Subst;
use crate::unionfind::UnionFind;
use crate::{EClass, EGraph, Id, Language};

/// The 8-byte magic prefix of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"LIARSNAP";

/// The current snapshot format version. Bumped on any layout or
/// semantics change; snapshots of other versions are rejected with
/// [`SnapshotError::VersionMismatch`] (re-saturating is always sound).
pub const SNAPSHOT_VERSION: u32 = 1;

/// A structured snapshot failure: every way `snapshot()`/`restore()` can
/// refuse, with enough context to log. Restore never panics on corrupt
/// bytes and never partially mutates anything — it either returns a fully
/// valid e-graph or this error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// `snapshot()` was called on a dirty e-graph (unions pending);
    /// call [`rebuild`](EGraph::rebuild) first.
    Dirty,
    /// The bytes do not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The snapshot was written by a different format version.
    VersionMismatch {
        /// The version recorded in the snapshot.
        found: u32,
        /// The version this reader understands ([`SNAPSHOT_VERSION`]).
        expected: u32,
    },
    /// The bytes end before a read completes.
    Truncated {
        /// Byte offset at which the read started.
        offset: usize,
        /// Bytes the read needed.
        wanted: usize,
    },
    /// The bytes decode to something structurally invalid (bad checksum,
    /// out-of-range id, unknown operator, cyclic parent table, …).
    Corrupt {
        /// Byte offset of the offending read.
        offset: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Dirty => {
                write!(f, "cannot snapshot a dirty e-graph: call rebuild() first")
            }
            SnapshotError::BadMagic => write!(f, "not a LIAR e-graph snapshot (bad magic)"),
            SnapshotError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} is not the supported version {expected}"
            ),
            SnapshotError::Truncated { offset, wanted } => {
                write!(f, "snapshot truncated at byte {offset} (wanted {wanted} more)")
            }
            SnapshotError::Corrupt { offset, message } => {
                write!(f, "snapshot corrupt at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64 over `bytes` — the snapshot's integrity checksum (std-only;
/// not cryptographic, it exists to turn random corruption into a
/// structured error instead of a semantic surprise).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only little-endian byte sink for snapshot sections.
/// [`SnapshotAnalysis::write_data`] implementors use it to serialize
/// per-class analysis facts.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Append one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a bool as one byte (`0`/`1`).
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Append an optional `u64` as a presence byte plus the value.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.write_u8(1);
                self.write_u64(x);
            }
            None => self.write_u8(0),
        }
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn write_id(&mut self, id: Id) {
        self.write_u32(id.index() as u32);
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked little-endian cursor over snapshot bytes. Every read
/// fails with [`SnapshotError::Truncated`] instead of panicking;
/// [`SnapshotAnalysis::read_data`] implementors use
/// [`corrupt`](SnapshotReader::corrupt) for their own validation errors.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        SnapshotReader { bytes, pos: 0 }
    }

    /// The current byte offset (for error context).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// A [`SnapshotError::Corrupt`] at the current offset.
    pub fn corrupt(&self, message: impl Into<String>) -> SnapshotError {
        SnapshotError::Corrupt {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let out = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(SnapshotError::Truncated {
                offset: self.pos,
                wanted: n,
            }),
        }
    }

    /// Read one byte.
    pub fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a strict bool (`0`/`1`; anything else is corrupt).
    pub fn read_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(self.corrupt(format!("bool byte must be 0 or 1, got {v}"))),
        }
    }

    /// Read an optional `u64` (presence byte plus value).
    pub fn read_opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        if self.read_bool()? {
            Ok(Some(self.read_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<String, SnapshotError> {
        let len = self.read_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.corrupt("string is not valid UTF-8"))
    }

    fn read_id(&mut self, n_ids: usize) -> Result<Id, SnapshotError> {
        let v = self.read_u32()? as usize;
        if v >= n_ids {
            return Err(self.corrupt(format!("id {v} out of range (graph has {n_ids} ids)")));
        }
        Ok(Id::from_index(v))
    }
}

/// An [`Analysis`](crate::Analysis) whose per-class facts can ride along
/// in a snapshot.
///
/// Facts must be **serialized**, not recomputed on restore: a semilattice
/// merge is only deterministic up to merge *order* (e.g. LIAR's
/// representative terms tie-break on arrival order), so recomputation
/// could silently change extraction results. `write_data`/`read_data`
/// must round-trip exactly.
pub trait SnapshotAnalysis<L: Language>: crate::Analysis<L> {
    /// Serialize one class's fact.
    fn write_data(data: &Self::Data, w: &mut SnapshotWriter);

    /// Deserialize one class's fact. Use
    /// [`SnapshotReader::corrupt`] for validation failures; never panic.
    fn read_data(r: &mut SnapshotReader<'_>) -> Result<Self::Data, SnapshotError>;
}

impl<L: Language> SnapshotAnalysis<L> for () {
    fn write_data(_data: &Self::Data, _w: &mut SnapshotWriter) {}

    fn read_data(_r: &mut SnapshotReader<'_>) -> Result<Self::Data, SnapshotError> {
        Ok(())
    }
}

/// Serialize `node` against the sorted string table `index`.
fn write_node<L: Language>(w: &mut SnapshotWriter, index: &BTreeMap<String, u32>, node: &L) {
    w.write_u32(index[&node.display_op()]);
    w.write_u32(node.children().len() as u32);
    for c in node.children() {
        w.write_id(*c);
    }
}

/// Deserialize a node: re-parse its operator string with
/// [`Language::from_op`] over already-validated child ids.
fn read_node<L: Language>(
    r: &mut SnapshotReader<'_>,
    strings: &[String],
    n_ids: usize,
) -> Result<L, SnapshotError> {
    let idx = r.read_u32()? as usize;
    let op = strings
        .get(idx)
        .ok_or_else(|| r.corrupt(format!("string index {idx} out of range")))?;
    let arity = r.read_u32()? as usize;
    let mut children = Vec::with_capacity(arity.min(1 << 16));
    for _ in 0..arity {
        children.push(r.read_id(n_ids)?);
    }
    let err = |r: &SnapshotReader<'_>, e: String| r.corrupt(format!("node does not parse: {e}"));
    L::from_op(op, children).map_err(|e| err(r, e))
}

/// Check that a raw parent table is a forest: every chain reaches a
/// self-parenting root without revisiting a node. Both the union-find and
/// the explanation forest would loop forever on a cycle, so corrupt
/// tables must be rejected here. O(n).
fn validate_parent_forest(parents: &[Id], what: &str) -> Result<(), SnapshotError> {
    // 0 = unvisited, 1 = on the current chain, 2 = known-good.
    let mut state = vec![0u8; parents.len()];
    for start in 0..parents.len() {
        let mut chain = Vec::new();
        let mut i = start;
        loop {
            match state[i] {
                2 => break,
                1 => {
                    return Err(SnapshotError::Corrupt {
                        offset: 0,
                        message: format!("{what} parent table has a cycle through id {i}"),
                    })
                }
                _ => {}
            }
            state[i] = 1;
            chain.push(i);
            let p = parents[i].index();
            if p == i {
                break;
            }
            i = p;
        }
        for j in chain {
            state[j] = 2;
        }
    }
    Ok(())
}

impl<L: Language, A: SnapshotAnalysis<L>> EGraph<L, A> {
    /// Serialize this (clean) e-graph into a deterministic, versioned,
    /// checksummed byte vector — see the [module docs](self) for the
    /// format and determinism guarantees.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Dirty`] when unions are pending; call
    /// [`rebuild`](EGraph::rebuild) first.
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        if !self.is_clean() {
            return Err(SnapshotError::Dirty);
        }

        // Pass 1: collect every operator string (and rule name) into a
        // sorted table, so nodes serialize as small indices and the bytes
        // are independent of hash-map iteration order.
        let classes = self.snapshot_classes();
        let mut set: BTreeSet<String> = BTreeSet::new();
        for class in classes.values() {
            for n in &class.nodes {
                set.insert(n.display_op());
            }
            for (p, _) in &class.parents {
                set.insert(p.display_op());
            }
        }
        for n in self.snapshot_memo().keys() {
            set.insert(n.display_op());
        }
        if let Some(explain) = self.snapshot_explain() {
            for (node, _, justification, _) in explain.forest() {
                set.insert(node.display_op());
                if let Justification::Rule { name, .. } = justification {
                    set.insert(name.to_string());
                }
            }
            for n in explain.uncanon_entries().keys() {
                set.insert(n.display_op());
            }
        }
        let strings: Vec<String> = set.into_iter().collect();
        let index: BTreeMap<String, u32> = strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();

        // Pass 2: write the payload (everything the checksum covers).
        let mut w = SnapshotWriter::default();
        let explain = self.snapshot_explain();
        w.write_u8(u8::from(explain.is_some()));

        w.write_u32(strings.len() as u32);
        for s in &strings {
            w.write_str(s);
        }

        let parents = self.snapshot_unionfind().parents();
        w.write_u32(parents.len() as u32);
        for p in parents {
            w.write_id(*p);
        }

        let mut ids: Vec<Id> = classes.keys().copied().collect();
        ids.sort_unstable();
        w.write_u32(ids.len() as u32);
        for id in ids {
            let class = &classes[&id];
            w.write_id(id);
            w.write_u32(class.nodes.len() as u32);
            for n in &class.nodes {
                write_node(&mut w, &index, n);
            }
            w.write_u32(class.parents.len() as u32);
            for (pnode, pid) in &class.parents {
                write_node(&mut w, &index, pnode);
                w.write_id(*pid);
            }
            A::write_data(&class.data, &mut w);
        }

        let mut memo: Vec<(&L, Id)> = self.snapshot_memo().iter().map(|(n, i)| (n, *i)).collect();
        memo.sort_unstable_by(|a, b| a.0.cmp(b.0));
        w.write_u32(memo.len() as u32);
        for (node, id) in memo {
            write_node(&mut w, &index, node);
            w.write_id(id);
        }

        let delta = self.delta();
        w.write_u64(delta.version());
        let epochs: Vec<(u64, &[Id])> = delta.epochs().collect();
        w.write_u32(epochs.len() as u32);
        for (version, dirty) in epochs {
            w.write_u64(version);
            w.write_u32(dirty.len() as u32);
            for id in dirty {
                w.write_id(*id);
            }
        }
        w.write_u32(delta.unsealed().len() as u32);
        for id in delta.unsealed() {
            w.write_id(*id);
        }

        if let Some(explain) = explain {
            for (node, parent, justification, forward) in explain.forest() {
                write_node(&mut w, &index, node);
                w.write_id(parent);
                match justification {
                    Justification::Direct => w.write_u8(0),
                    Justification::Congruence => w.write_u8(1),
                    Justification::Rule { name, .. } => {
                        w.write_u8(2);
                        w.write_u32(index[name.as_ref()]);
                    }
                }
                w.write_bool(forward);
            }
            let mut uncanon: Vec<(&L, Id)> = explain
                .uncanon_entries()
                .iter()
                .map(|(n, i)| (n, *i))
                .collect();
            uncanon.sort_unstable_by(|a, b| a.0.cmp(b.0));
            w.write_u32(uncanon.len() as u32);
            for (node, id) in uncanon {
                write_node(&mut w, &index, node);
                w.write_id(id);
            }
        }

        let payload = w.into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 20);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Rebuild an e-graph from snapshot bytes. The result is behaviorally
    /// identical to the graph that produced them (see the
    /// [module docs](self)); `analysis` supplies the analysis *instance*
    /// (configuration and caches — per-class facts come from the bytes).
    ///
    /// Restore is a pure constructor: on any error nothing was mutated,
    /// and corrupt bytes can never panic — every read is bounds-checked,
    /// both parent tables are cycle-checked, and the payload is protected
    /// by a checksum, so a bit flip anywhere yields a structured
    /// [`SnapshotError`].
    ///
    /// # Errors
    ///
    /// Every [`SnapshotError`] variant except
    /// [`Dirty`](SnapshotError::Dirty).
    pub fn restore(analysis: A, bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::new(bytes);
        if r.take(8)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.read_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let checksum = r.read_u64()?;
        if fnv1a(&bytes[r.offset()..]) != checksum {
            return Err(r.corrupt("payload checksum mismatch"));
        }

        let flags = r.read_u8()?;
        if flags & !1 != 0 {
            return Err(r.corrupt(format!("unknown flag bits {flags:#x}")));
        }
        let has_explain = flags & 1 != 0;

        let n_strings = r.read_u32()? as usize;
        let mut strings = Vec::with_capacity(n_strings.min(1 << 16));
        for _ in 0..n_strings {
            strings.push(r.read_str()?);
        }

        let n_ids = r.read_u32()? as usize;
        let mut parents = Vec::with_capacity(n_ids.min(1 << 20));
        for _ in 0..n_ids {
            parents.push(r.read_id(n_ids)?);
        }
        validate_parent_forest(&parents, "union-find")?;
        let unionfind = UnionFind::from_parents(parents);

        let n_classes = r.read_u32()? as usize;
        if n_classes > n_ids {
            return Err(r.corrupt(format!("{n_classes} classes but only {n_ids} ids")));
        }
        let mut classes: HashMap<Id, EClass<L, A::Data>> = HashMap::with_capacity(n_classes);
        let mut prev: Option<Id> = None;
        for _ in 0..n_classes {
            let id = r.read_id(n_ids)?;
            if prev.is_some_and(|p| p >= id) {
                return Err(r.corrupt(format!("class ids not strictly ascending at {id}")));
            }
            prev = Some(id);
            if unionfind.find(id) != id {
                return Err(r.corrupt(format!("class id {id} is not canonical")));
            }
            let n_nodes = r.read_u32()? as usize;
            let mut nodes = Vec::with_capacity(n_nodes.min(1 << 16));
            for _ in 0..n_nodes {
                nodes.push(read_node::<L>(&mut r, &strings, n_ids)?);
            }
            let n_parents = r.read_u32()? as usize;
            let mut class_parents = Vec::with_capacity(n_parents.min(1 << 16));
            for _ in 0..n_parents {
                let pnode = read_node::<L>(&mut r, &strings, n_ids)?;
                let pid = r.read_id(n_ids)?;
                class_parents.push((pnode, pid));
            }
            let data = A::read_data(&mut r)?;
            classes.insert(
                id,
                EClass {
                    id,
                    nodes,
                    data,
                    parents: class_parents,
                },
            );
        }
        // Every issued id must resolve to a stored class, or later
        // `class()` lookups would panic.
        for i in 0..n_ids {
            let root = unionfind.find(Id::from_index(i));
            if !classes.contains_key(&root) {
                return Err(r.corrupt(format!("id {i} resolves to missing class {root}")));
            }
        }

        let n_memo = r.read_u32()? as usize;
        let mut memo: HashMap<L, Id> = HashMap::with_capacity(n_memo.min(1 << 20));
        for _ in 0..n_memo {
            let node = read_node::<L>(&mut r, &strings, n_ids)?;
            let id = r.read_id(n_ids)?;
            memo.insert(node, id);
        }

        let delta_version = r.read_u64()?;
        let n_epochs = r.read_u32()? as usize;
        let mut epochs = Vec::with_capacity(n_epochs.min(1 << 16));
        let mut prev_epoch: Option<u64> = None;
        for _ in 0..n_epochs {
            let v = r.read_u64()?;
            if prev_epoch.is_some_and(|p| p >= v) || v >= delta_version {
                return Err(r.corrupt(format!("delta epoch {v} out of order")));
            }
            prev_epoch = Some(v);
            let n = r.read_u32()? as usize;
            let mut dirty = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                dirty.push(r.read_id(n_ids)?);
            }
            epochs.push((v, dirty));
        }
        let n_unsealed = r.read_u32()? as usize;
        let mut unsealed = Vec::with_capacity(n_unsealed.min(1 << 20));
        for _ in 0..n_unsealed {
            unsealed.push(r.read_id(n_ids)?);
        }
        let delta = DeltaIndex::restore(delta_version, epochs, unsealed);

        let explain = if has_explain {
            let mut forest = Vec::with_capacity(n_ids);
            let mut forest_parents = Vec::with_capacity(n_ids);
            for _ in 0..n_ids {
                let node = read_node::<L>(&mut r, &strings, n_ids)?;
                let parent = r.read_id(n_ids)?;
                let tag = r.read_u8()?;
                let justification = match tag {
                    0 => Justification::Direct,
                    1 => Justification::Congruence,
                    2 => {
                        let idx = r.read_u32()? as usize;
                        let name = strings
                            .get(idx)
                            .ok_or_else(|| r.corrupt(format!("rule-name index {idx} bad")))?;
                        Justification::Rule {
                            name: Arc::from(name.as_str()),
                            // The matched substitution is diagnostic-only
                            // (never read by proof production or checking)
                            // and is not serialized.
                            subst: Arc::new(Subst::default()),
                        }
                    }
                    t => return Err(r.corrupt(format!("unknown justification tag {t}"))),
                };
                let forward = r.read_bool()?;
                forest_parents.push(parent);
                forest.push((node, parent, justification, forward));
            }
            validate_parent_forest(&forest_parents, "explanation forest")?;
            let n_uncanon = r.read_u32()? as usize;
            let mut uncanon = HashMap::with_capacity(n_uncanon.min(1 << 20));
            for _ in 0..n_uncanon {
                let node = read_node::<L>(&mut r, &strings, n_ids)?;
                let id = r.read_id(n_ids)?;
                uncanon.insert(node, id);
            }
            Some(Explain::from_parts(forest, uncanon))
        } else {
            None
        };

        if r.offset() != bytes.len() {
            return Err(r.corrupt(format!(
                "{} trailing bytes after the last section",
                bytes.len() - r.offset()
            )));
        }

        Ok(EGraph::from_snapshot_parts(
            analysis, unionfind, memo, classes, delta, explain,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AstSize, Extractor, Pattern, Rewrite, Runner, SymbolLang};

    type EG = EGraph<SymbolLang, ()>;

    fn saturated(expr: &str, explain: bool) -> (EG, Id) {
        let egraph: EG = if explain {
            EGraph::default().with_explanations_enabled()
        } else {
            EGraph::default()
        };
        let rules = vec![
            Rewrite::new(
                "comm",
                "(+ ?a ?b)".parse::<Pattern<SymbolLang>>().unwrap(),
                "(+ ?b ?a)".parse::<Pattern<SymbolLang>>().unwrap(),
            ),
            Rewrite::new(
                "mul2-shift",
                "(* ?x 2)".parse::<Pattern<SymbolLang>>().unwrap(),
                "(<< ?x 1)".parse::<Pattern<SymbolLang>>().unwrap(),
            ),
        ];
        let mut runner = Runner::new(egraph).with_iter_limit(4);
        let root = runner.egraph.add_expr(&expr.parse().unwrap());
        runner.egraph.rebuild();
        runner.run(&rules);
        let root = runner.egraph.find(root);
        (runner.egraph, root)
    }

    fn assert_same_graph(a: &EG, b: &EG) {
        assert_eq!(a.num_classes(), b.num_classes());
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.delta_version(), b.delta_version());
        let ca = a.classes_sorted();
        let cb = b.classes_sorted();
        for (x, y) in ca.iter().zip(cb.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.nodes, y.nodes);
        }
        b.assert_invariants();
    }

    #[test]
    fn round_trip_preserves_classes_index_and_frontier() {
        let (egraph, root) = saturated("(+ (* a 2) (g b))", false);
        let bytes = egraph.snapshot().unwrap();
        let restored = EG::restore((), &bytes).unwrap();
        assert_same_graph(&egraph, &restored);
        assert_eq!(restored.find(root), root);
        // Operator index answers identically.
        let key = SymbolLang::new("+", vec![Id::from_index(0), Id::from_index(0)]).op_key();
        assert_eq!(egraph.classes_with_op(key), restored.classes_with_op(key));
        // The sealed frontier is empty after restore…
        assert!(restored.dirty_since(restored.delta_version()).is_empty());
        // …and matches the original at every earlier version.
        for v in 0..=egraph.delta_version() {
            assert_eq!(egraph.dirty_since(v), restored.dirty_since(v));
        }
        // Extraction is bit-identical.
        let (c0, b0) = Extractor::new(&egraph, AstSize).find_best(root);
        let (c1, b1) = Extractor::new(&restored, AstSize).find_best(root);
        assert_eq!(c0, c1);
        assert_eq!(b0, b1);
    }

    #[test]
    fn restored_graph_rebuilds_to_the_same_ids() {
        let (egraph, _) = saturated("(+ (* a 2) (g b))", false);
        let bytes = egraph.snapshot().unwrap();
        let mut restored = EG::restore((), &bytes).unwrap();
        let before: Vec<Id> = restored.class_ids();
        restored.rebuild();
        assert_eq!(restored.class_ids(), before);
        restored.assert_invariants();
    }

    #[test]
    fn snapshot_after_restore_is_idempotent() {
        for explain in [false, true] {
            let (egraph, _) = saturated("(+ (* a 2) (g b))", explain);
            let bytes = egraph.snapshot().unwrap();
            let restored = EG::restore((), &bytes).unwrap();
            assert_eq!(restored.snapshot().unwrap(), bytes, "explain={explain}");
        }
    }

    #[test]
    fn explanations_survive_a_restore() {
        let (mut egraph, _) = saturated("(+ (* a 2) (g b))", true);
        let left = "(+ (* a 2) (g b))".parse().unwrap();
        let right = "(+ (g b) (<< a 1))".parse().unwrap();
        let proof = egraph.explain_equivalence(&left, &right);
        let bytes = egraph.snapshot().unwrap();
        let mut restored = EG::restore((), &bytes).unwrap();
        assert!(restored.are_explanations_enabled());
        let replayed = restored.explain_equivalence(&left, &right);
        assert_eq!(proof.source, replayed.source);
        assert_eq!(proof.target, replayed.target);
        assert_eq!(proof.steps, replayed.steps);
    }

    #[test]
    fn dirty_graphs_refuse_to_snapshot() {
        let mut egraph: EG = EGraph::default();
        let a = egraph.add_expr(&"(f a)".parse().unwrap());
        let b = egraph.add_expr(&"(f b)".parse().unwrap());
        egraph.union(a, b);
        assert_eq!(egraph.snapshot(), Err(SnapshotError::Dirty));
        egraph.rebuild();
        assert!(egraph.snapshot().is_ok());
    }

    #[test]
    fn truncation_at_every_length_is_a_structured_error() {
        let (egraph, _) = saturated("(+ (* a 2) (g b))", true);
        let bytes = egraph.snapshot().unwrap();
        for len in 0..bytes.len() {
            let err = EG::restore((), &bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::Corrupt { .. }
                        | SnapshotError::BadMagic
                        | SnapshotError::VersionMismatch { .. }
                ),
                "truncation to {len} gave {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let (egraph, _) = saturated("(+ a b)", true);
        let bytes = egraph.snapshot().unwrap();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    EG::restore((), &flipped).is_err(),
                    "flip of byte {byte} bit {bit} restored successfully"
                );
            }
        }
    }

    #[test]
    fn version_mismatch_is_reported() {
        let (egraph, _) = saturated("(+ a b)", false);
        let mut bytes = egraph.snapshot().unwrap();
        bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 7).to_le_bytes());
        assert_eq!(
            EG::restore((), &bytes).unwrap_err(),
            SnapshotError::VersionMismatch {
                found: SNAPSHOT_VERSION + 7,
                expected: SNAPSHOT_VERSION
            }
        );
        assert_eq!(EG::restore((), b"not a snapshot at all").unwrap_err(), {
            SnapshotError::BadMagic
        });
    }

    #[test]
    fn cyclic_parent_tables_are_rejected() {
        assert!(validate_parent_forest(
            &[Id::from_index(1), Id::from_index(0)],
            "union-find"
        )
        .is_err());
        assert!(validate_parent_forest(
            &[Id::from_index(0), Id::from_index(0), Id::from_index(1)],
            "union-find"
        )
        .is_ok());
    }
}
