//! A union-find (disjoint set) over [`Id`]s with path compression.

use crate::Id;

/// Disjoint-set forest used by the e-graph to track e-class equivalence.
///
/// Union by arbitrary order (the caller decides which root survives, since
/// the e-graph wants to keep the class with more nodes as the canonical
/// one); `find` performs path halving.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parents: Vec<Id>,
}

impl UnionFind {
    /// Create a fresh singleton set and return its id.
    pub fn make_set(&mut self) -> Id {
        let id = Id::from_index(self.parents.len());
        self.parents.push(id);
        id
    }

    /// Number of ids issued (not the number of distinct sets).
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if no ids have been issued.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    fn parent(&self, id: Id) -> Id {
        self.parents[id.index()]
    }

    /// True when `id` is its own canonical representative — an O(1) check
    /// the e-graph uses while repairing its memo table and operator index
    /// (a canonical id can only stop being canonical through
    /// [`union_roots`](UnionFind::union_roots), never through `find`'s
    /// path compression).
    pub fn is_canonical(&self, id: Id) -> bool {
        self.parent(id) == id
    }

    /// Find the canonical representative of `id` without path compression.
    pub fn find(&self, mut id: Id) -> Id {
        while id != self.parent(id) {
            id = self.parent(id);
        }
        id
    }

    /// Find the canonical representative of `id`, compressing paths.
    pub fn find_mut(&mut self, mut id: Id) -> Id {
        while id != self.parent(id) {
            // Path halving: point at grandparent.
            let grandparent = self.parent(self.parent(id));
            self.parents[id.index()] = grandparent;
            id = grandparent;
        }
        id
    }

    /// The raw parent table (for snapshot serialization): `parents[i]` is
    /// the parent of id `i`, with roots pointing at themselves.
    pub(crate) fn parents(&self) -> &[Id] {
        &self.parents
    }

    /// Rebuild a union-find from a raw parent table (snapshot restore).
    /// The caller is responsible for the table being acyclic (every id
    /// reaching a self-parenting root).
    pub(crate) fn from_parents(parents: Vec<Id>) -> Self {
        UnionFind { parents }
    }

    /// Union the sets of `root1` and `root2`, making `root1` the new root.
    ///
    /// Both arguments must already be canonical (roots). Returns `root1`.
    pub fn union_roots(&mut self, root1: Id, root2: Id) -> Id {
        debug_assert_eq!(root1, self.find(root1), "root1 must be canonical");
        debug_assert_eq!(root2, self.find(root2), "root2 must be canonical");
        self.parents[root2.index()] = root1;
        root1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> (UnionFind, Vec<Id>) {
        let mut uf = UnionFind::default();
        let ids = (0..n).map(|_| uf.make_set()).collect();
        (uf, ids)
    }

    #[test]
    fn singletons_are_their_own_roots() {
        let (uf, ids) = ids(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        assert!(UnionFind::default().is_empty());
        for id in ids {
            assert_eq!(uf.find(id), id);
        }
    }

    #[test]
    fn union_makes_first_arg_root() {
        let (mut uf, ids) = ids(4);
        uf.union_roots(ids[0], ids[1]);
        uf.union_roots(ids[2], ids[3]);
        assert_eq!(uf.find(ids[1]), ids[0]);
        assert_eq!(uf.find(ids[3]), ids[2]);
        assert!(uf.is_canonical(ids[0]));
        assert!(!uf.is_canonical(ids[1]));
        uf.union_roots(ids[0], ids[2]);
        for id in &ids {
            assert_eq!(uf.find_mut(*id), ids[0]);
        }
    }

    #[test]
    fn path_compression_preserves_roots() {
        let (mut uf, ids) = ids(64);
        // Build a long chain.
        for w in ids.windows(2) {
            let (a, b) = (uf.find_mut(w[0]), uf.find_mut(w[1]));
            if a != b {
                uf.union_roots(a, b);
            }
        }
        let root = uf.find(ids[0]);
        for id in &ids {
            assert_eq!(uf.find_mut(*id), root);
        }
    }
}
