//! Property tests for e-graph snapshots: on arbitrary evolving e-graphs
//! (the seeded generator of `prop_seminaive.rs` — random terms, then
//! rounds of adds and unions with rebuilds collapsing classes), a
//! snapshot → restore round trip must reproduce the canonical e-class
//! tables exactly, behave identically under whole-graph e-matching, and
//! re-snapshot to the very same bytes.
//!
//! Gated behind the `proptest` feature like the other property suites
//! (the offline workspace does not vendor proptest).

use std::collections::BTreeMap;

use proptest::prelude::*;

use liar_egraph::{EGraph, Id, Language, RecExpr, Rewrite, SymbolLang};

type EG = EGraph<SymbolLang, ()>;

/// Random terms over a small signature (shared shape with
/// `prop_seminaive.rs`).
fn arb_term(depth: u32) -> BoxedStrategy<RecExpr<SymbolLang>> {
    fn add(expr: &mut RecExpr<SymbolLang>, t: &Tree) -> Id {
        match t {
            Tree::Leaf(name) => expr.add(SymbolLang::leaf(name.clone())),
            Tree::Node(op, children) => {
                let ids = children.iter().map(|c| add(expr, c)).collect();
                expr.add(SymbolLang::new(op.clone(), ids))
            }
        }
    }
    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(String),
        Node(String, Vec<Tree>),
    }
    let leaf = prop_oneof![
        Just(Tree::Leaf("a".into())),
        Just(Tree::Leaf("b".into())),
        Just(Tree::Leaf("c".into())),
    ];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Tree::Node("f".into(), vec![x, y])),
            inner.clone().prop_map(|x| Tree::Node("g".into(), vec![x])),
        ]
    })
    .prop_map(|tree| {
        let mut expr = RecExpr::default();
        add(&mut expr, &tree);
        expr
    })
    .boxed()
}

/// Patterns the behavioral check e-matches with (identity right-hand
/// sides — only the searcher matters).
fn rule_pool() -> Vec<Rewrite<SymbolLang, ()>> {
    ["(f ?x ?y)", "(g ?x)", "(f ?x ?x)", "(f (g ?x) ?y)", "(g (g ?x))"]
        .iter()
        .enumerate()
        .map(|(i, p)| Rewrite::from_patterns(&format!("r{i}"), p, p))
        .collect()
}

/// The canonical e-class table: canonical class id → sorted canonicalized
/// nodes. Two e-graphs with equal tables are indistinguishable to
/// e-matching and extraction.
fn class_table(eg: &EG) -> BTreeMap<Id, Vec<(String, Vec<Id>)>> {
    let mut table: BTreeMap<Id, Vec<(String, Vec<Id>)>> = BTreeMap::new();
    for class in eg.classes() {
        let mut nodes: Vec<(String, Vec<Id>)> = class
            .nodes
            .iter()
            .map(|n| {
                (
                    n.op.clone(),
                    n.children().iter().map(|&c| eg.find(c)).collect(),
                )
            })
            .collect();
        nodes.sort();
        nodes.dedup();
        table.insert(eg.find(class.id), nodes);
    }
    table
}

/// Build a random evolved e-graph and the roots that survive.
fn build(
    seed_terms: &[RecExpr<SymbolLang>],
    rounds: &[(Vec<RecExpr<SymbolLang>>, Vec<(usize, usize)>)],
) -> (EG, Vec<Id>) {
    let mut eg = EG::default();
    let mut roots: Vec<Id> = seed_terms.iter().map(|t| eg.add_expr(t)).collect();
    eg.rebuild();
    for (adds, unions) in rounds {
        for t in adds {
            roots.push(eg.add_expr(t));
        }
        for &(i, j) in unions {
            let (a, b) = (roots[i % roots.len()], roots[j % roots.len()]);
            eg.union(a, b);
        }
        eg.rebuild();
    }
    (eg, roots)
}

proptest! {
    /// Snapshot → restore reproduces the canonical class tables, the
    /// roots' canonical ids (stable across one further `rebuild()`), and
    /// the whole-graph match stream of every pattern in the pool.
    #[test]
    fn restore_round_trips_canonical_class_tables(
        seed_terms in proptest::collection::vec(arb_term(4), 2..6),
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec(arb_term(3), 0..3),
                proptest::collection::vec((0usize..16, 0usize..16), 0..4),
            ),
            1..5,
        ),
    ) {
        let (eg, roots) = build(&seed_terms, &rounds);
        let bytes = eg.snapshot().expect("clean graph snapshots");
        let mut restored = EG::restore((), &bytes).expect("restore");

        prop_assert_eq!(restored.num_nodes(), eg.num_nodes());
        prop_assert_eq!(restored.num_classes(), eg.num_classes());
        prop_assert_eq!(class_table(&restored), class_table(&eg));
        for &root in &roots {
            prop_assert_eq!(restored.find(root), eg.find(root));
        }
        // A restored graph is clean: one more rebuild must change
        // nothing.
        restored.rebuild();
        prop_assert_eq!(class_table(&restored), class_table(&eg));
        for &root in &roots {
            prop_assert_eq!(restored.find(root), eg.find(root));
        }
        // Behavioral identity: every pattern sees the same match stream.
        for rule in rule_pool() {
            let orig = rule.search(&eg, usize::MAX);
            let back = rule.search(&restored, usize::MAX);
            prop_assert_eq!(
                format!("{orig:?}"),
                format!("{back:?}"),
                "rule {} diverged after restore", rule.name()
            );
        }
    }

    /// `snapshot(restore(s)) == s`: the format is a canonical function of
    /// the e-graph, so a round trip is byte-identical (and so is a second
    /// round trip).
    #[test]
    fn snapshot_of_restore_is_byte_identical(
        seed_terms in proptest::collection::vec(arb_term(4), 2..6),
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec(arb_term(3), 0..2),
                proptest::collection::vec((0usize..16, 0usize..16), 0..4),
            ),
            1..4,
        ),
    ) {
        let (eg, _) = build(&seed_terms, &rounds);
        let first = eg.snapshot().expect("snapshot");
        let restored = EG::restore((), &first).expect("restore");
        let second = restored.snapshot().expect("re-snapshot");
        prop_assert_eq!(&first, &second, "snapshot(restore(s)) != s");
        let third = EG::restore((), &second)
            .expect("second restore")
            .snapshot()
            .expect("third snapshot");
        prop_assert_eq!(&second, &third);
    }
}
