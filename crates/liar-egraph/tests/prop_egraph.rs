//! Property tests for the e-graph: congruence invariants under random
//! insertions and unions, and extraction sanity.

use proptest::prelude::*;

use liar_egraph::{AstSize, EGraph, Extractor, RecExpr, SymbolLang};

type EG = EGraph<SymbolLang, ()>;

/// Random terms over a small signature.
fn arb_term(depth: u32) -> BoxedStrategy<RecExpr<SymbolLang>> {
    fn add(expr: &mut RecExpr<SymbolLang>, t: &Tree) -> liar_egraph::Id {
        match t {
            Tree::Leaf(name) => expr.add(SymbolLang::leaf(name.clone())),
            Tree::Node(op, children) => {
                let ids = children.iter().map(|c| add(expr, c)).collect();
                expr.add(SymbolLang::new(op.clone(), ids))
            }
        }
    }
    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(String),
        Node(String, Vec<Tree>),
    }
    let leaf = prop_oneof![
        Just(Tree::Leaf("a".into())),
        Just(Tree::Leaf("b".into())),
        Just(Tree::Leaf("c".into())),
    ];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Tree::Node("f".into(), vec![x, y])),
            inner.clone().prop_map(|x| Tree::Node("g".into(), vec![x])),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Tree::Node("+".into(), vec![x, y])),
        ]
    })
    .prop_map(|tree| {
        let mut expr = RecExpr::default();
        add(&mut expr, &tree);
        expr
    })
    .boxed()
}

proptest! {
    /// After arbitrary adds + unions + a rebuild, all hash-consing and
    /// congruence invariants hold.
    #[test]
    fn invariants_after_random_unions(
        terms in proptest::collection::vec(arb_term(4), 2..8),
        union_pairs in proptest::collection::vec((0usize..8, 0usize..8), 0..6),
    ) {
        let mut eg = EG::default();
        let ids: Vec<_> = terms.iter().map(|t| eg.add_expr(t)).collect();
        for (i, j) in union_pairs {
            let (a, b) = (ids[i % ids.len()], ids[j % ids.len()]);
            eg.union(a, b);
        }
        eg.rebuild();
        eg.assert_invariants();
    }

    /// Adding the same term twice yields the same class.
    #[test]
    fn add_is_idempotent(t in arb_term(4)) {
        let mut eg = EG::default();
        let a = eg.add_expr(&t);
        let b = eg.add_expr(&t);
        prop_assert_eq!(a, b);
        prop_assert_eq!(eg.lookup_expr(&t), Some(a));
    }

    /// Unions are congruence-closed: if a ≡ b then f(a) ≡ f(b) after a
    /// rebuild.
    #[test]
    fn congruence_holds(t1 in arb_term(3), t2 in arb_term(3)) {
        let mut eg = EG::default();
        let a = eg.add_expr(&t1);
        let b = eg.add_expr(&t2);
        let fa = eg.add(SymbolLang::new("wrap", vec![a]));
        let fb = eg.add(SymbolLang::new("wrap", vec![b]));
        eg.union(a, b);
        eg.rebuild();
        prop_assert_eq!(eg.find(fa), eg.find(fb));
        eg.assert_invariants();
    }

    /// Extraction returns a term in the class with cost ≤ the inserted
    /// term's size, and the extracted term is actually in the e-graph.
    #[test]
    fn extraction_is_sound_and_minimal(
        t1 in arb_term(4),
        t2 in arb_term(4),
    ) {
        let mut eg = EG::default();
        let a = eg.add_expr(&t1);
        let b = eg.add_expr(&t2);
        eg.union(a, b);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(a);
        prop_assert!(cost <= t1.len() as f64);
        prop_assert!(cost <= t2.len() as f64);
        prop_assert_eq!(eg.lookup_expr(&best), Some(eg.find(a)));
    }

    /// `num_nodes` never exceeds the number of added nodes and classes
    /// never exceed nodes.
    #[test]
    fn size_accounting(terms in proptest::collection::vec(arb_term(4), 1..6)) {
        let mut eg = EG::default();
        let mut added = 0;
        for t in &terms {
            added += t.len();
            eg.add_expr(t);
        }
        eg.rebuild();
        prop_assert!(eg.num_nodes() <= added);
        prop_assert!(eg.num_classes() <= eg.num_nodes());
    }
}
