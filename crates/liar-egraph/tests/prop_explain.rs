//! Property tests for proof production: after random rewrite sweeps over
//! random SymbolLang terms, `explain_equivalence` between *any* two
//! asserted-equal terms must produce a proof that replays clean through
//! `Explanation::check` — for every pair, not just the pairs the rules
//! happened to merge directly (congruence-stitched proofs included).
//!
//! Gated behind the `proptest` feature like the other property suites
//! (the offline workspace does not vendor proptest).

use proptest::prelude::*;

use liar_egraph::explain::canonical_expr;
use liar_egraph::{EGraph, RecExpr, Rewrite, Runner, SymbolLang};

type EG = EGraph<SymbolLang, ()>;

/// Random terms over the f/g/a/b/c signature (shared shape with
/// `prop_machine.rs`).
fn arb_term(depth: u32) -> BoxedStrategy<RecExpr<SymbolLang>> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("(f {x} {y})")),
            inner.clone().prop_map(|x| format!("(g {x})")),
        ]
    })
    .prop_map(|s| s.parse().unwrap())
    .boxed()
}

/// A small rule pool over the same signature: commutativity, a
/// collapse/expand pair, and a unary unwrap — enough to merge classes in
/// chains, backwards steps and congruence cascades.
fn rule_pool() -> Vec<Rewrite<SymbolLang, ()>> {
    vec![
        Rewrite::from_patterns("comm-f", "(f ?x ?y)", "(f ?y ?x)"),
        Rewrite::from_patterns("pair-to-g", "(f ?x ?x)", "(g ?x)"),
        Rewrite::from_patterns("g-to-pair", "(g ?x)", "(f ?x ?x)"),
        Rewrite::from_patterns("gg-collapse", "(g (g ?x))", "(g ?x)"),
        Rewrite::from_patterns("fold-left", "(f (f ?x ?y) ?z)", "(f ?x (f ?y ?z))"),
    ]
}

/// Saturate the terms under a rule subset with explanations on.
fn saturated(
    terms: &[RecExpr<SymbolLang>],
    rule_mask: usize,
) -> (Runner<SymbolLang, ()>, Vec<liar_egraph::Id>) {
    let mut eg = EG::default().with_explanations_enabled();
    let ids: Vec<_> = terms.iter().map(|t| eg.add_expr(t)).collect();
    let pool = rule_pool();
    let rules: Vec<_> = pool
        .into_iter()
        .enumerate()
        .filter(|(i, _)| rule_mask & (1 << i) != 0)
        .map(|(_, r)| r)
        .collect();
    let mut runner = Runner::new(eg).with_iter_limit(5).with_node_limit(5_000);
    runner.run(&rules);
    (runner, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every asserted-equal pair of input terms explains, and every proof
    /// replays against exactly the rules that ran.
    #[test]
    fn equal_terms_explain_and_replay(
        terms in proptest::collection::vec(arb_term(4), 2..6),
        rule_mask in 1usize..32,
    ) {
        let (mut runner, ids) = saturated(&terms, rule_mask);
        let pool = rule_pool();
        let rules: Vec<_> = pool
            .into_iter()
            .enumerate()
            .filter(|(i, _)| rule_mask & (1 << i) != 0)
            .map(|(_, r)| r)
            .collect();
        for i in 0..terms.len() {
            for j in (i + 1)..terms.len() {
                if runner.egraph.find(ids[i]) != runner.egraph.find(ids[j]) {
                    // Not equal: no proof may exist either.
                    prop_assert!(
                        runner.egraph.try_explain_equivalence(&terms[i], &terms[j]).is_none(),
                        "proof for unequal terms {} and {}", terms[i], terms[j]
                    );
                    continue;
                }
                let proof = runner.egraph.explain_equivalence(&terms[i], &terms[j]);
                prop_assert_eq!(&proof.source, &canonical_expr(&terms[i]));
                prop_assert_eq!(&proof.target, &canonical_expr(&terms[j]));
                if let Err(e) = proof.check(&rules) {
                    prop_assert!(
                        false,
                        "{} = {} failed to replay: {e}\nproof:\n{}",
                        terms[i], terms[j], proof
                    );
                }
            }
        }
    }

    /// Proofs are also complete *within* one term: every subterm pair the
    /// saturation merged (e.g. by congruence) explains and replays.
    #[test]
    fn rewritten_forms_explain_back_to_the_source(
        term in arb_term(4),
        rule_mask in 1usize..32,
    ) {
        let (mut runner, ids) = saturated(std::slice::from_ref(&term), rule_mask);
        let pool = rule_pool();
        let rules: Vec<_> = pool
            .into_iter()
            .enumerate()
            .filter(|(i, _)| rule_mask & (1 << i) != 0)
            .map(|(_, r)| r)
            .collect();
        // Prove the smallest representative of the root class (which the
        // rules may have reached through many intermediate merges) equal
        // to the original term.
        let root = runner.egraph.find(ids[0]);
        let extractor = liar_egraph::Extractor::new(&runner.egraph, liar_egraph::AstSize);
        let (_, smallest) = extractor.find_best(root);
        for other in &[smallest] {
            let proof = runner.egraph.explain_equivalence(&term, other);
            prop_assert_eq!(&proof.source, &canonical_expr(&term));
            prop_assert_eq!(&proof.target, &canonical_expr(other));
            if let Err(e) = proof.check(&rules) {
                prop_assert!(false, "{} = {} failed to replay: {e}", term, other);
            }
        }
    }

    /// Tampering with any single step of a real proof is caught by the
    /// replay (certificates carry no trust).
    #[test]
    fn tampered_steps_fail_the_replay(
        terms in proptest::collection::vec(arb_term(3), 2..4),
        rule_mask in 1usize..32,
        victim in 0usize..64,
    ) {
        let (mut runner, ids) = saturated(&terms, rule_mask);
        let pool = rule_pool();
        let rules: Vec<_> = pool
            .into_iter()
            .enumerate()
            .filter(|(i, _)| rule_mask & (1 << i) != 0)
            .map(|(_, r)| r)
            .collect();
        for i in 0..terms.len() {
            for j in (i + 1)..terms.len() {
                if runner.egraph.find(ids[i]) != runner.egraph.find(ids[j]) {
                    continue;
                }
                let proof = runner.egraph.explain_equivalence(&terms[i], &terms[j]);
                if proof.steps.is_empty() {
                    continue;
                }
                // Rename the rule of one step to one that cannot derive it.
                let mut forged = proof.clone();
                let k = victim % forged.steps.len();
                forged.steps[k].rule = "gg-collapse-never-fires-here".to_string();
                prop_assert!(forged.check(&rules).is_err());
            }
        }
    }
}
