//! Property tests comparing the tree and DAG extractors on random
//! SymbolLang e-graphs (random terms plus random unions):
//!
//! * both strategies agree on which classes are extractable;
//! * the DAG cost never exceeds the tree cost (AST size has non-negative
//!   marginals everywhere);
//! * when the tree-best term references every class once, the two
//!   strategies report the same cost;
//! * both extracted terms are members of the class they were extracted
//!   from, and their reported costs are consistent with their shape;
//! * the exact extractor never exceeds the greedy DAG cost (which never
//!   exceeds the tree cost), and all three agree exactly on unshared
//!   terms.
//!
//! Gated behind the `proptest` feature like the other property suites
//! (the offline workspace does not vendor proptest).

use proptest::prelude::*;

use liar_egraph::{
    AstSize, DagExtractor, EGraph, ExactExtractor, Extract, Extractor, Id, RecExpr, SymbolLang,
};

type EG = EGraph<SymbolLang, ()>;

/// Random terms over a small signature (shared shape with
/// `prop_egraph.rs`).
fn arb_term(depth: u32) -> BoxedStrategy<RecExpr<SymbolLang>> {
    fn add(expr: &mut RecExpr<SymbolLang>, t: &Tree) -> Id {
        match t {
            Tree::Leaf(name) => expr.add(SymbolLang::leaf(name.clone())),
            Tree::Node(op, children) => {
                let ids = children.iter().map(|c| add(expr, c)).collect();
                expr.add(SymbolLang::new(op.clone(), ids))
            }
        }
    }
    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(String),
        Node(String, Vec<Tree>),
    }
    let leaf = prop_oneof![
        Just(Tree::Leaf("a".into())),
        Just(Tree::Leaf("b".into())),
        Just(Tree::Leaf("c".into())),
    ];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Tree::Node("f".into(), vec![x, y])),
            inner.clone().prop_map(|x| Tree::Node("g".into(), vec![x])),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Tree::Node("+".into(), vec![x, y])),
        ]
    })
    .prop_map(|tree| {
        let mut expr = RecExpr::default();
        add(&mut expr, &tree);
        expr
    })
    .boxed()
}

/// An e-graph from random terms and random (sound-agnostic) unions.
fn graph_of(terms: &[RecExpr<SymbolLang>], union_pairs: &[(usize, usize)]) -> (EG, Vec<Id>) {
    let mut eg = EG::default();
    let ids: Vec<_> = terms.iter().map(|t| eg.add_expr(t)).collect();
    for &(i, j) in union_pairs {
        let (a, b) = (ids[i % ids.len()], ids[j % ids.len()]);
        eg.union(a, b);
    }
    eg.rebuild();
    (eg, ids)
}

/// Number of *distinct* classes a tree-extracted expression references —
/// equal to its node count exactly when nothing is shared.
fn distinct_nodes(expr: &RecExpr<SymbolLang>) -> usize {
    let mut seen: Vec<&SymbolLang> = Vec::new();
    for node in expr.nodes() {
        if !seen.contains(&node) {
            seen.push(node);
        }
    }
    seen.len()
}

proptest! {
    /// DAG cost ≤ tree cost on every class of every random e-graph, and
    /// the strategies agree on extractability.
    #[test]
    fn dag_cost_never_exceeds_tree_cost(
        terms in proptest::collection::vec(arb_term(4), 2..8),
        union_pairs in proptest::collection::vec((0usize..8, 0usize..8), 0..6),
    ) {
        let (eg, _) = graph_of(&terms, &union_pairs);
        let tree = Extractor::new(&eg, AstSize);
        let dag = DagExtractor::new(&eg, AstSize);
        for class in eg.classes() {
            let (t, d) = (tree.best_cost(class.id), Extract::best_cost(&dag, class.id));
            match (t, d) {
                (Some(t), Some(d)) => prop_assert!(d <= t + 1e-9, "dag {} > tree {}", d, t),
                (None, None) => {}
                _ => prop_assert!(false, "extractability diverged"),
            }
        }
    }

    /// When the tree-best term is an actual tree (no class referenced
    /// twice), the DAG cost equals the tree cost.
    #[test]
    fn dag_equals_tree_on_unshared_solutions(
        terms in proptest::collection::vec(arb_term(4), 2..6),
        union_pairs in proptest::collection::vec((0usize..6, 0usize..6), 0..4),
    ) {
        let (eg, roots) = graph_of(&terms, &union_pairs);
        let tree = Extractor::new(&eg, AstSize);
        let dag = DagExtractor::new(&eg, AstSize);
        for &root in &roots {
            let (t_cost, t_best) = tree.find_best(root);
            // Under AST size the tree cost is the node count, so the best
            // term is unshared iff every node of it is distinct.
            if distinct_nodes(&t_best) == t_best.len() {
                let d_cost = Extract::best_cost(&dag, root).unwrap();
                prop_assert!((t_cost - d_cost).abs() < 1e-9,
                    "unshared solution but dag {} != tree {}", d_cost, t_cost);
            }
        }
    }

    /// Both strategies extract terms that the e-graph recognizes as
    /// members of the class they came from, and the DAG expression's
    /// distinct-node count matches its reported cost under AST size.
    #[test]
    fn extracted_terms_are_class_members(
        terms in proptest::collection::vec(arb_term(4), 2..6),
        union_pairs in proptest::collection::vec((0usize..6, 0usize..6), 0..4),
    ) {
        let (eg, roots) = graph_of(&terms, &union_pairs);
        let tree = Extractor::new(&eg, AstSize);
        let dag = DagExtractor::new(&eg, AstSize);
        for &root in &roots {
            let canonical = eg.find(root);
            let (t_cost, t_best) = tree.find_best(root);
            prop_assert_eq!(eg.lookup_expr(&t_best), Some(canonical));
            // Tree cost under AST size = node count of the (duplicated)
            // tree expression.
            prop_assert_eq!(t_cost as usize, t_best.len());
            let (d_cost, d_best) = dag.find_best(root);
            prop_assert_eq!(eg.lookup_expr(&d_best), Some(canonical));
            // DAG cost under AST size = distinct classes selected = the
            // node count of the shared flat expression.
            prop_assert_eq!(d_cost as usize, d_best.len());
            prop_assert_eq!(dag.selected_classes(root), Some(d_best.len()));
        }
    }

    /// The extractor hierarchy on random e-graphs: exact ≤ greedy DAG ≤
    /// tree cost for every root, and exact agrees with extractability.
    #[test]
    fn exact_never_exceeds_dag_never_exceeds_tree(
        terms in proptest::collection::vec(arb_term(4), 2..6),
        union_pairs in proptest::collection::vec((0usize..6, 0usize..6), 0..5),
    ) {
        let (eg, roots) = graph_of(&terms, &union_pairs);
        let dag = DagExtractor::new(&eg, AstSize);
        let exact = ExactExtractor::new(&eg, AstSize);
        for &root in &roots {
            let t = dag.tree_extractor().best_cost(root);
            let d = Extract::best_cost(&dag, root);
            let report = exact.solve(root);
            match (t, d, report) {
                (Some(t), Some(d), Some(report)) => {
                    prop_assert!(d <= t + 1e-9, "dag {} > tree {}", d, t);
                    prop_assert!(report.cost <= d + 1e-9,
                        "exact {} > dag {} ({:?})", report.cost, d, report.outcome);
                    // The exact answer must itself be a member of the class.
                    prop_assert_eq!(eg.lookup_expr(&report.expr), Some(eg.find(root)));
                }
                (None, None, None) => {}
                (t, d, r) => prop_assert!(false,
                    "extractability diverged: tree {:?} dag {:?} exact {:?}",
                    t, d, r.map(|r| r.cost)),
            }
        }
    }

    /// On unshared solutions all three extractors agree *exactly*: same
    /// cost, and tree and exact produce the identical expression (the DAG
    /// flat form may order nodes differently but costs the same).
    #[test]
    fn three_way_agreement_on_unshared_terms(
        terms in proptest::collection::vec(arb_term(3), 1..5),
    ) {
        // No unions: the e-graph is hash-consed terms only, so the best
        // term of every root is its (deduplicated) self.
        let (eg, roots) = graph_of(&terms, &[]);
        let tree = Extractor::new(&eg, AstSize);
        let dag = DagExtractor::new(&eg, AstSize);
        let exact = ExactExtractor::new(&eg, AstSize);
        for &root in &roots {
            let (t_cost, t_best) = tree.find_best(root);
            if distinct_nodes(&t_best) != t_best.len() {
                continue; // hash-consing shared a subterm: not a pure tree
            }
            let d_cost = Extract::best_cost(&dag, root).unwrap();
            let report = exact.solve(root).unwrap();
            prop_assert!((t_cost - d_cost).abs() < 1e-9,
                "unshared term but dag {} != tree {}", d_cost, t_cost);
            prop_assert!((t_cost - report.cost).abs() < 1e-9,
                "unshared term but exact {} != tree {}", report.cost, t_cost);
            prop_assert_eq!(&report.expr, &t_best);
        }
    }
}
