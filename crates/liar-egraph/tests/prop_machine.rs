//! Property tests for the e-matching virtual machine: on arbitrary
//! e-graphs (random terms + random unions) and arbitrary — frequently
//! non-linear — patterns, the compiled matcher must produce exactly the
//! oracle matcher's substitution list, and index-driven search must equal
//! a full scan.
//!
//! Gated behind the `proptest` feature like the other property suites
//! (the offline workspace does not vendor proptest).

use proptest::prelude::*;

use liar_egraph::{Binding, EGraph, Pattern, RecExpr, Searcher, Subst, SymbolLang};

type EG = EGraph<SymbolLang, ()>;

/// Random terms over a small signature (shared shape with
/// `prop_egraph.rs`).
fn arb_term(depth: u32) -> BoxedStrategy<RecExpr<SymbolLang>> {
    fn add(expr: &mut RecExpr<SymbolLang>, t: &Tree) -> liar_egraph::Id {
        match t {
            Tree::Leaf(name) => expr.add(SymbolLang::leaf(name.clone())),
            Tree::Node(op, children) => {
                let ids = children.iter().map(|c| add(expr, c)).collect();
                expr.add(SymbolLang::new(op.clone(), ids))
            }
        }
    }
    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(String),
        Node(String, Vec<Tree>),
    }
    let leaf = prop_oneof![
        Just(Tree::Leaf("a".into())),
        Just(Tree::Leaf("b".into())),
        Just(Tree::Leaf("c".into())),
    ];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Tree::Node("f".into(), vec![x, y])),
            inner.clone().prop_map(|x| Tree::Node("g".into(), vec![x])),
        ]
    })
    .prop_map(|tree| {
        let mut expr = RecExpr::default();
        add(&mut expr, &tree);
        expr
    })
    .boxed()
}

/// Random pattern s-expressions over the same signature, with a small
/// variable pool so non-linear repeats are common.
fn arb_pattern(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        Just("?x".to_string()),
        Just("?y".to_string()),
        Just("?z".to_string()),
        Just("a".to_string()),
        Just("b".to_string()),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("(f {x} {y})")),
            inner.clone().prop_map(|x| format!("(g {x})")),
        ]
    })
    .boxed()
}

/// Ordered equality of two substitution lists (class bindings through the
/// union-find; this language produces no expression bindings).
fn same_substs(eg: &EG, a: &[Subst<SymbolLang>], b: &[Subst<SymbolLang>]) -> bool {
    let find = |id| eg.find(id);
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.same_as(y, &find))
}

fn build_egraph(
    terms: &[RecExpr<SymbolLang>],
    union_pairs: &[(usize, usize)],
) -> EG {
    let mut eg = EG::default();
    let ids: Vec<_> = terms.iter().map(|t| eg.add_expr(t)).collect();
    for &(i, j) in union_pairs {
        let (a, b) = (ids[i % ids.len()], ids[j % ids.len()]);
        eg.union(a, b);
    }
    eg.rebuild();
    eg
}

proptest! {
    /// VM ≡ oracle: identical (ordered, canonicalized) substitution lists
    /// on every e-class.
    #[test]
    fn vm_matches_oracle(
        terms in proptest::collection::vec(arb_term(4), 2..8),
        union_pairs in proptest::collection::vec((0usize..8, 0usize..8), 0..6),
        pattern in arb_pattern(3),
    ) {
        let eg = build_egraph(&terms, &union_pairs);
        let p: Pattern<SymbolLang> = pattern.parse().unwrap();
        for class in eg.class_ids() {
            let vm = p.match_class(&eg, class);
            let oracle = p.match_class_oracle(&eg, class);
            prop_assert!(
                same_substs(&eg, &vm, &oracle),
                "pattern {} diverged on class {}: vm {:?} oracle {:?}",
                p, class, vm, oracle
            );
        }
    }

    /// Substitutions bind class ids only (no shift patterns here) and are
    /// duplicate-free under canonical comparison.
    #[test]
    fn vm_substs_are_canonical_and_deduped(
        terms in proptest::collection::vec(arb_term(4), 2..6),
        union_pairs in proptest::collection::vec((0usize..8, 0usize..8), 0..5),
        pattern in arb_pattern(3),
    ) {
        let eg = build_egraph(&terms, &union_pairs);
        let p: Pattern<SymbolLang> = pattern.parse().unwrap();
        let find = |id| eg.find(id);
        for class in eg.class_ids() {
            let substs = p.match_class(&eg, class);
            for (i, s) in substs.iter().enumerate() {
                for (_, b) in s.iter() {
                    match b {
                        Binding::Class(id) => prop_assert_eq!(eg.find(*id), *id),
                        Binding::Expr(_) => prop_assert!(false, "unexpected expr binding"),
                    }
                }
                for other in &substs[i + 1..] {
                    prop_assert!(!s.same_as(other, &find), "duplicate substitution");
                }
            }
        }
    }

    /// Index-driven whole-e-graph search equals a brute-force sweep of
    /// `match_class` over all classes.
    #[test]
    fn indexed_search_equals_full_scan(
        terms in proptest::collection::vec(arb_term(4), 2..8),
        union_pairs in proptest::collection::vec((0usize..8, 0usize..8), 0..6),
        pattern in arb_pattern(3),
    ) {
        let eg = build_egraph(&terms, &union_pairs);
        let p: Pattern<SymbolLang> = pattern.parse().unwrap();
        let searched = Searcher::<SymbolLang, ()>::search(&p, &eg, usize::MAX);
        let mut brute = Vec::new();
        for class in eg.class_ids() {
            let substs = p.match_class(&eg, class);
            if !substs.is_empty() {
                brute.push((class, substs));
            }
        }
        prop_assert_eq!(searched.len(), brute.len());
        for (m, (class, substs)) in searched.iter().zip(&brute) {
            prop_assert_eq!(m.class, *class);
            prop_assert!(same_substs(&eg, m.substs(), substs));
        }
    }
}
