//! Property tests for semi-naive (delta-frontier) e-matching: on arbitrary
//! evolving e-graphs — seeded terms, then rounds of random adds and unions
//! with a rebuild collapsing classes between every search — a
//! [`DeltaSearch`] must produce exactly the whole-graph engine's match
//! stream for every rule, every round, truncation included.
//!
//! Gated behind the `proptest` feature like the other property suites
//! (the offline workspace does not vendor proptest).

use proptest::prelude::*;

use liar_egraph::{
    ClosureMemo, DeltaSearch, EGraph, Id, RecExpr, Rewrite, SearchMatches, Subst, SymbolLang,
};

type EG = EGraph<SymbolLang, ()>;

/// Random terms over a small signature (shared shape with
/// `prop_machine.rs`), with an extra binary op so depth-2 patterns get
/// both hits and misses.
fn arb_term(depth: u32) -> BoxedStrategy<RecExpr<SymbolLang>> {
    fn add(expr: &mut RecExpr<SymbolLang>, t: &Tree) -> Id {
        match t {
            Tree::Leaf(name) => expr.add(SymbolLang::leaf(name.clone())),
            Tree::Node(op, children) => {
                let ids = children.iter().map(|c| add(expr, c)).collect();
                expr.add(SymbolLang::new(op.clone(), ids))
            }
        }
    }
    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(String),
        Node(String, Vec<Tree>),
    }
    let leaf = prop_oneof![
        Just(Tree::Leaf("a".into())),
        Just(Tree::Leaf("b".into())),
        Just(Tree::Leaf("c".into())),
    ];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Tree::Node("f".into(), vec![x, y])),
            inner.clone().prop_map(|x| Tree::Node("g".into(), vec![x])),
        ]
    })
    .prop_map(|tree| {
        let mut expr = RecExpr::default();
        add(&mut expr, &tree);
        expr
    })
    .boxed()
}

/// The fixed rule pool the sweeps search with: depths 1 through 3, linear
/// and non-linear, so frontier radii 0–2 are all exercised. Identity
/// right-hand sides — only the searcher matters here.
fn rule_pool() -> Vec<Rewrite<SymbolLang, ()>> {
    [
        "(f ?x ?y)",
        "(g ?x)",
        "(f ?x ?x)",
        "(f (g ?x) ?y)",
        "(g (g ?x))",
        "(f (f ?x ?y) (g ?z))",
        "(g (f ?x (g ?y)))",
    ]
    .iter()
    .enumerate()
    .map(|(i, p)| Rewrite::from_patterns(&format!("r{i}"), p, p))
    .collect()
}

/// Ordered equality of two whole search results.
fn same_matches(
    eg: &EG,
    a: &[SearchMatches<SymbolLang>],
    b: &[SearchMatches<SymbolLang>],
) -> bool {
    let find = |id| eg.find(id);
    let substs_eq = |x: &[Subst<SymbolLang>], y: &[Subst<SymbolLang>]| {
        x.len() == y.len() && x.iter().zip(y).all(|(s, t)| s.same_as(t, &find))
    };
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(m, n)| m.class == n.class && substs_eq(m.substs(), n.substs()))
}

/// The whole-graph reference: the exact per-class search the runner's
/// serial engine performs for a pattern rule.
fn whole_graph(eg: &EG, rule: &Rewrite<SymbolLang, ()>, limit: usize) -> Vec<SearchMatches<SymbolLang>> {
    rule.search(eg, limit)
}

proptest! {
    /// Frontier ≡ whole-graph across rounds of adds + unions, each round
    /// rebuilt (collapsing classes mid-run) before both engines search.
    #[test]
    fn seminaive_equals_whole_graph_across_mutation_rounds(
        seed_terms in proptest::collection::vec(arb_term(4), 2..6),
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec(arb_term(3), 0..3),
                proptest::collection::vec((0usize..16, 0usize..16), 0..4),
            ),
            1..5,
        ),
    ) {
        let rules = rule_pool();
        let mut eg = EG::default();
        let mut roots: Vec<Id> = seed_terms.iter().map(|t| eg.add_expr(t)).collect();
        eg.rebuild();
        let mut ds: DeltaSearch<SymbolLang> = DeltaSearch::new(rules.len());

        for (round, (adds, unions)) in rounds.iter().enumerate() {
            // Search on the current snapshot: both engines must agree.
            let mut memo = ClosureMemo::default();
            for (i, rule) in rules.iter().enumerate() {
                let semi = ds.search_rule(&eg, rule, i, usize::MAX, &mut memo);
                let whole = whole_graph(&eg, rule, usize::MAX);
                prop_assert!(
                    same_matches(&eg, &semi, &whole),
                    "round {}: rule {} diverged\n  semi:  {:?}\n  whole: {:?}",
                    round, rule.name(), semi, whole
                );
            }
            // Mutate: new terms and unions (possibly collapsing classes
            // whose cached matches the next round must invalidate).
            for t in adds {
                roots.push(eg.add_expr(t));
            }
            for &(i, j) in unions {
                let (a, b) = (roots[i % roots.len()], roots[j % roots.len()]);
                eg.union(a, b);
            }
            eg.rebuild();
            eg.assert_invariants();
        }
        // Final snapshot after the last mutation round.
        let mut memo = ClosureMemo::default();
        for (i, rule) in rules.iter().enumerate() {
            let semi = ds.search_rule(&eg, rule, i, usize::MAX, &mut memo);
            let whole = whole_graph(&eg, rule, usize::MAX);
            prop_assert!(
                same_matches(&eg, &semi, &whole),
                "final: rule {} diverged", rule.name()
            );
        }
    }

    /// Truncation parity: under a shared (small, random) match budget both
    /// engines cut the stream at the same point every round, and classes a
    /// truncated semi-naive round left pending surface once the budget
    /// allows — never sooner, never lost.
    #[test]
    fn seminaive_truncation_matches_whole_graph(
        seed_terms in proptest::collection::vec(arb_term(4), 2..6),
        unions in proptest::collection::vec((0usize..8, 0usize..8), 0..4),
        limit in 1usize..12,
    ) {
        let rules = rule_pool();
        let mut eg = EG::default();
        let roots: Vec<Id> = seed_terms.iter().map(|t| eg.add_expr(t)).collect();
        eg.rebuild();
        let mut ds: DeltaSearch<SymbolLang> = DeltaSearch::new(rules.len());

        // Round 1: truncated.
        let mut memo = ClosureMemo::default();
        for (i, rule) in rules.iter().enumerate() {
            let semi = ds.search_rule(&eg, rule, i, limit, &mut memo);
            let whole = whole_graph(&eg, rule, limit);
            prop_assert!(
                same_matches(&eg, &semi, &whole),
                "limit {}: rule {} diverged", limit, rule.name()
            );
        }
        // Mutate and search unbounded: pending carry-over must restore the
        // full match set.
        for &(i, j) in &unions {
            let (a, b) = (roots[i % roots.len()], roots[j % roots.len()]);
            eg.union(a, b);
        }
        eg.rebuild();
        let mut memo = ClosureMemo::default();
        for (i, rule) in rules.iter().enumerate() {
            let semi = ds.search_rule(&eg, rule, i, usize::MAX, &mut memo);
            let whole = whole_graph(&eg, rule, usize::MAX);
            prop_assert!(
                same_matches(&eg, &semi, &whole),
                "post-union: rule {} diverged", rule.name()
            );
        }
    }
}
