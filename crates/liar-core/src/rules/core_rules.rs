//! The eight language-semantics rewrite rules (paper listing 2).
//!
//! The elimination rules are plain pattern pairs. β-reduction and the four
//! *intro* rules need code:
//!
//! * **R-BetaReduce** applies the substitution operator to representatives
//!   extracted from the body and argument e-classes (§IV.B.3, the
//!   "second approach" of Koehler et al.);
//! * **R-IntroLambda**, **R-IntroIndexBuild**, **R-IntroFstTuple** and
//!   **R-IntroSndTuple** have unbound variables on their right-hand sides
//!   (§IV.B.4); their searchers enumerate candidate e-classes for those
//!   variables — every class under [`RuleConfig::exhaustive`], a bounded
//!   candidate set by default.

use liar_egraph::{
    Applier, Binding, EGraph, Id, Pattern, Rewrite, SearchMatches, Searcher, Subst, Var,
};
use liar_ir::debruijn::{shift_up, subst as debruijn_subst};
use liar_ir::{ArrayAnalysis, ArrayLang, ArrayRewrite, Expr};

use super::{CandidateSet, RuleConfig};

type AEGraph = EGraph<ArrayLang, ArrayAnalysis>;

fn resolve_expr(egraph: &AEGraph, binding: &Binding<ArrayLang>) -> Expr {
    match binding {
        Binding::Class(id) => (*egraph.data(*id).repr).clone(),
        Binding::Expr(e) => (**e).clone(),
    }
}

/// R-BetaReduce: `(λ e) y → subst(e, y)`.
struct BetaReduceApplier;

impl Applier<ArrayLang, ArrayAnalysis> for BetaReduceApplier {
    fn apply(&self, egraph: &mut AEGraph, class: Id, subst: &Subst<ArrayLang>) -> Vec<Id> {
        let body = resolve_expr(egraph, subst.get(&Var::new("b")).expect("b bound"));
        let arg = resolve_expr(egraph, subst.get(&Var::new("y")).expect("y bound"));
        let result = debruijn_subst(&body, &arg);
        let new_id = egraph.add_expr(&result);
        let lhs = if egraph.are_explanations_enabled() {
            // Precise provenance: the substitution operator ran on the
            // class *representatives*, so the recorded redex must spell
            // out those same representatives — `(λ body) arg` — rather
            // than whatever term created the matched class's id. The term
            // is already in the matched class (its nodes hash-cons onto
            // the matched redex), so this changes no equalities.
            let mut redex = Expr::default();
            let b_root = redex.append_subtree(&body, body.root());
            let lam = redex.add(ArrayLang::Lam(b_root));
            let a_root = redex.append_subtree(&arg, arg.root());
            redex.add(ArrayLang::App([lam, a_root]));
            egraph.add_expr(&redex)
        } else {
            class
        };
        let (id, changed) = egraph.union(lhs, new_id);
        if changed {
            vec![id]
        } else {
            vec![]
        }
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("b"), Var::new("y")]
    }
}

/// Whether a class is a candidate for λ-abstraction under the configured
/// [`CandidateSet`]: the constant-array chains of §IV.C.2 and §V.A abstract
/// over constants; wider sets are available for experimentation.
fn intro_lambda_candidate(egraph: &AEGraph, id: Id, set: CandidateSet) -> bool {
    match set {
        CandidateSet::All => true,
        CandidateSet::ConstantsAndCalls => {
            egraph.data(id).constant.is_some()
                || egraph[id].iter().any(|n| matches!(n, ArrayLang::Call(..)))
        }
        CandidateSet::ValueLike => egraph[id].iter().any(|n| {
            matches!(
                n,
                ArrayLang::Const(_) | ArrayLang::Sym(_) | ArrayLang::Get(_) | ArrayLang::Call(..)
            )
        }),
    }
}

/// R-IntroLambda: `e → (λ e↑) y` for every candidate argument class `y`.
struct IntroLambdaSearcher {
    config: RuleConfig,
}

impl Searcher<ArrayLang, ArrayAnalysis> for IntroLambdaSearcher {
    fn search(&self, egraph: &AEGraph, limit: usize) -> Vec<SearchMatches<ArrayLang>> {
        // Candidate arguments y: classes containing a De Bruijn variable
        // (every known chain abstracts over a loop index), or every class
        // in exhaustive mode.
        let exhaustive = self.config.intro_lambda == CandidateSet::All;
        let ys: Vec<Id> = egraph
            .class_ids()
            .into_iter()
            .filter(|&id| exhaustive || egraph.data(id).has_var)
            .collect();
        if ys.is_empty() {
            return vec![];
        }
        let mut out = Vec::new();
        let mut total = 0;
        for e in egraph.class_ids() {
            if total >= limit {
                break;
            }
            if !intro_lambda_candidate(egraph, e, self.config.intro_lambda) {
                continue;
            }
            let mut substs = Vec::new();
            for &y in &ys {
                if total >= limit {
                    break;
                }
                let mut s = Subst::default();
                s.insert(Var::new("y"), Binding::Class(y));
                substs.push(s);
                total += 1;
            }
            if !substs.is_empty() {
                out.push(SearchMatches { class: e, substs });
            }
        }
        out
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("y")]
    }
}

struct IntroLambdaApplier;

impl Applier<ArrayLang, ArrayAnalysis> for IntroLambdaApplier {
    fn apply(&self, egraph: &mut AEGraph, class: Id, subst: &Subst<ArrayLang>) -> Vec<Id> {
        let mut y = match subst.get(&Var::new("y")).expect("y bound") {
            Binding::Class(id) => *id,
            Binding::Expr(e) => egraph.add_expr(e),
        };
        let explained = egraph.are_explanations_enabled();
        if explained {
            // Precise provenance for the argument: prefer the class's De
            // Bruijn variable member (that is what made it a candidate),
            // so the recorded proof term spells `(λ e↑) %i` and the step
            // replays against the searcher's `has_var` gate.
            let var = egraph[y].iter().find(|n| matches!(n, ArrayLang::Var(_))).cloned();
            if let Some(var) = var {
                y = egraph.add(var);
            }
        }
        // (λ e↑): abstract over a parameter the body ignores.
        let repr = std::sync::Arc::clone(&egraph.data(class).repr);
        let body = shift_up(&repr, 1);
        let lam = {
            let mut e = Expr::default();
            let root = e.append_subtree(&body, body.root());
            e.add(ArrayLang::Lam(root));
            e
        };
        let lam_id = egraph.add_expr(&lam);
        let app_id = egraph.add(ArrayLang::App([lam_id, y]));
        let lhs = if explained {
            // The abstracted body is the class *representative*: record the
            // edge from that exact term (it is a member of `class`).
            egraph.add_expr(&repr)
        } else {
            class
        };
        let (id, changed) = egraph.union(lhs, app_id);
        if changed {
            vec![id]
        } else {
            vec![]
        }
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("y")]
    }
}

/// R-IntroIndexBuild: `f i → (build N f)[i]` for every extent `N` present
/// in the e-graph.
struct IntroIndexBuildSearcher;

impl Searcher<ArrayLang, ArrayAnalysis> for IntroIndexBuildSearcher {
    fn search(&self, egraph: &AEGraph, limit: usize) -> Vec<SearchMatches<ArrayLang>> {
        let dims: Vec<Id> = egraph
            .class_ids()
            .into_iter()
            .filter(|&id| egraph.data(id).dim.is_some())
            .collect();
        let mut out = Vec::new();
        let mut total = 0;
        for class in egraph.class_ids() {
            if total >= limit {
                break;
            }
            let mut substs = Vec::new();
            for node in &egraph[class].nodes {
                let ArrayLang::App([f, i]) = node else { continue };
                for &n in &dims {
                    if total >= limit {
                        break;
                    }
                    let mut s = Subst::default();
                    s.insert(Var::new("f"), Binding::Class(*f));
                    s.insert(Var::new("i"), Binding::Class(*i));
                    s.insert(Var::new("n"), Binding::Class(n));
                    substs.push(s);
                    total += 1;
                }
            }
            if !substs.is_empty() {
                out.push(SearchMatches { class, substs });
            }
        }
        out
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("f"), Var::new("i"), Var::new("n")]
    }
}

/// Applier for R-IntroIndexBuild. Without explanations it behaves exactly
/// like its right-hand-side pattern `(get (build ?n ?f) ?i)`; with
/// explanations it builds both sides from the bound classes directly so
/// the recorded edge connects `(app f i)` — the precise matched instance —
/// to the indexed build, with the extent spelled as its `#n` literal.
struct IntroIndexBuildApplier {
    rhs: Pattern<ArrayLang>,
}

impl Applier<ArrayLang, ArrayAnalysis> for IntroIndexBuildApplier {
    fn apply(&self, egraph: &mut AEGraph, class: Id, subst: &Subst<ArrayLang>) -> Vec<Id> {
        if !egraph.are_explanations_enabled() {
            return self.rhs.apply(egraph, class, subst);
        }
        let bound = |egraph: &mut AEGraph, name: &str| match subst
            .get(&Var::new(name))
            .expect("searcher binds f, i and n")
        {
            Binding::Class(id) => *id,
            Binding::Expr(e) => egraph.add_expr(e),
        };
        let f = bound(egraph, "f");
        let i = bound(egraph, "i");
        let mut n = bound(egraph, "n");
        if let Some(d) = egraph.data(n).dim {
            // Spell the extent as its literal so the proof term replays.
            n = egraph.add(ArrayLang::Dim(d));
        }
        let lhs = egraph.add(ArrayLang::App([f, i]));
        let build = egraph.add(ArrayLang::Build([n, f]));
        let get = egraph.add(ArrayLang::Get([build, i]));
        let (id, changed) = egraph.union(lhs, get);
        if changed {
            vec![id]
        } else {
            vec![]
        }
    }

    fn bound_vars(&self) -> Vec<Var> {
        self.rhs.vars()
    }
}

/// Searcher for the tuple intro rules: pairs every class `a` with candidate
/// second components `b` (classes already occurring under tuples by
/// default; all classes in exhaustive mode).
struct IntroTupleSearcher {
    config: RuleConfig,
}

impl Searcher<ArrayLang, ArrayAnalysis> for IntroTupleSearcher {
    fn search(&self, egraph: &AEGraph, limit: usize) -> Vec<SearchMatches<ArrayLang>> {
        let mut candidates: Vec<Id> = if self.config.exhaustive_tuples {
            egraph.class_ids()
        } else {
            let mut c = Vec::new();
            for class in egraph.classes_sorted() {
                for node in &class.nodes {
                    if let ArrayLang::Tuple([x, y]) = node {
                        c.push(egraph.find(*x));
                        c.push(egraph.find(*y));
                    }
                }
            }
            c
        };
        candidates.sort();
        candidates.dedup();
        if candidates.is_empty() {
            return vec![];
        }
        let mut out = Vec::new();
        let mut total = 0;
        for a in egraph.class_ids() {
            if total >= limit {
                break;
            }
            let mut substs = Vec::new();
            for &b in &candidates {
                if total >= limit {
                    break;
                }
                let mut s = Subst::default();
                s.insert(Var::new("b"), Binding::Class(b));
                substs.push(s);
                total += 1;
            }
            out.push(SearchMatches { class: a, substs });
        }
        out
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("b")]
    }
}

/// Applier for the tuple intro rules: `a → fst/snd (tuple … )`, where the
/// matched class supplies the kept component.
struct IntroTupleApplier {
    first: bool,
}

impl Applier<ArrayLang, ArrayAnalysis> for IntroTupleApplier {
    fn apply(&self, egraph: &mut AEGraph, class: Id, subst: &Subst<ArrayLang>) -> Vec<Id> {
        let b = match subst.get(&Var::new("b")).expect("b bound") {
            Binding::Class(id) => *id,
            Binding::Expr(e) => egraph.add_expr(e),
        };
        let tuple = if self.first {
            egraph.add(ArrayLang::Tuple([class, b]))
        } else {
            egraph.add(ArrayLang::Tuple([b, class]))
        };
        let proj = if self.first {
            egraph.add(ArrayLang::Fst(tuple))
        } else {
            egraph.add(ArrayLang::Snd(tuple))
        };
        let (id, changed) = egraph.union(class, proj);
        if changed {
            vec![id]
        } else {
            vec![]
        }
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("b")]
    }
}

/// The eight core rules of listing 2.
pub fn core_rules(config: &RuleConfig) -> Vec<ArrayRewrite> {
    let config = *config;
    vec![
        Rewrite::new(
            "beta-reduce",
            "(app (lam ?b) ?y)".parse::<Pattern<ArrayLang>>().unwrap(),
            BetaReduceApplier,
        ),
        Rewrite::new(
            "intro-lambda",
            IntroLambdaSearcher { config },
            IntroLambdaApplier,
        ),
        Rewrite::from_patterns("elim-index-build", "(get (build ?n ?f) ?i)", "(app ?f ?i)"),
        Rewrite::new(
            "intro-index-build",
            IntroIndexBuildSearcher,
            IntroIndexBuildApplier {
                rhs: "(get (build ?n ?f) ?i)".parse::<Pattern<ArrayLang>>().unwrap(),
            },
        ),
        Rewrite::from_patterns("elim-fst-tuple", "(fst (tuple ?a ?b))", "?a"),
        Rewrite::new(
            "intro-fst-tuple",
            IntroTupleSearcher { config },
            IntroTupleApplier { first: true },
        ),
        Rewrite::from_patterns("elim-snd-tuple", "(snd (tuple ?a ?b))", "?b"),
        Rewrite::new(
            "intro-snd-tuple",
            IntroTupleSearcher { config },
            IntroTupleApplier { first: false },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use liar_egraph::Runner;
    use liar_ir::ArrayEGraph;

    fn e(s: &str) -> Expr {
        s.parse().unwrap()
    }

    fn saturate(expr: &Expr, iters: usize) -> (Runner<ArrayLang, ArrayAnalysis>, Id) {
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(expr);
        let mut runner = Runner::new(eg).with_iter_limit(iters).with_node_limit(100_000);
        let rules = core_rules(&RuleConfig::default());
        runner.run(&rules);
        (runner, root)
    }

    #[test]
    fn beta_reduction_fires() {
        let (runner, root) = saturate(&e("(app (lam (+ %0 1)) x)"), 3);
        let reduced = runner.egraph.lookup_expr(&e("(+ x 1)"));
        assert_eq!(reduced, Some(runner.egraph.find(root)));
    }

    #[test]
    fn elim_index_build_plus_beta_is_map_access() {
        // (build n (λ xs[•0] + 1))[i] → xs[i] + 1  (paper §IV.C.1).
        let (runner, root) = saturate(&e("(get (build #8 (lam (+ (get xs %0) 1))) i)"), 4);
        let fused = runner.egraph.lookup_expr(&e("(+ (get xs i) 1)"));
        assert_eq!(fused, Some(runner.egraph.find(root)));
    }

    #[test]
    fn map_fusion_example() {
        // build n (λ f (build n (λ g xs[•0]))[•0]) fuses to
        // build n (λ f (g xs[•0])) — §IV.C.1 with f = +1, g = *2.
        let two_maps = e(
            "(build #8 (lam (+ (get (build #8 (lam (* (get xs %0) 2))) %0) 1)))",
        );
        let fused = e("(build #8 (lam (+ (* (get xs %0) 2) 1)))");
        let (runner, root) = saturate(&two_maps, 4);
        assert_eq!(
            runner.egraph.lookup_expr(&fused),
            Some(runner.egraph.find(root)),
            "maps should fuse"
        );
    }

    #[test]
    fn intro_lambda_builds_constant_arrays() {
        // §IV.C.2: a constant under a loop index becomes an indexed
        // constant array: 42 = (build n (λ 42))[•0].
        let expr = e("(build #8 (lam (+ (get xs %0) 42)))");
        let (runner, root) = saturate(&expr, 4);
        let as_vadd = e(
            "(build #8 (lam (+ (get xs %0) (get (build #8 (lam 42)) %0))))",
        );
        assert_eq!(
            runner.egraph.lookup_expr(&as_vadd),
            Some(runner.egraph.find(root)),
            "constant array form should be discovered"
        );
    }

    #[test]
    fn tuple_rules_roundtrip() {
        let (runner, root) = saturate(&e("(fst (tuple x y))"), 3);
        assert_eq!(
            runner.egraph.lookup_expr(&e("x")),
            Some(runner.egraph.find(root))
        );
        let (runner, root) = saturate(&e("(snd (tuple x y))"), 3);
        assert_eq!(
            runner.egraph.lookup_expr(&e("y")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn intro_tuple_uses_existing_tuple_components() {
        // With a tuple in the graph, x also equals fst (tuple x y).
        let (runner, root) = saturate(&e("(tuple (+ x 0) y)"), 3);
        let _ = root;
        let x = runner.egraph.lookup_expr(&e("(+ x 0)")).unwrap();
        let wrapped = runner.egraph.lookup_expr(&e("(fst (tuple (+ x 0) y))"));
        assert_eq!(wrapped, Some(runner.egraph.find(x)));
    }

    #[test]
    fn saturation_is_sound_for_invariants() {
        let (runner, _) = saturate(&e("(build #4 (lam (+ (get xs %0) 1)))"), 3);
        runner.egraph.assert_invariants();
    }
}
