//! The eight language-semantics rewrite rules (paper listing 2).
//!
//! The elimination rules are plain pattern pairs. β-reduction and the four
//! *intro* rules need code:
//!
//! * **R-BetaReduce** applies the substitution operator to representatives
//!   extracted from the body and argument e-classes (§IV.B.3, the
//!   "second approach" of Koehler et al.);
//! * **R-IntroLambda**, **R-IntroIndexBuild**, **R-IntroFstTuple** and
//!   **R-IntroSndTuple** have unbound variables on their right-hand sides
//!   (§IV.B.4); their searchers enumerate candidate e-classes for those
//!   variables — every class under [`RuleConfig::exhaustive`], a bounded
//!   candidate set by default.

use std::sync::{Arc, Mutex, PoisonError};

use liar_egraph::{
    Applier, Binding, EGraph, Id, Language, Pattern, Rewrite, SearchMatches, Searcher, Subst, Var,
};
use liar_ir::debruijn::{shift_up, subst as debruijn_subst};
use liar_ir::{ArrayAnalysis, ArrayLang, ArrayRewrite, Expr};

use super::{CandidateSet, RuleConfig};

type AEGraph = EGraph<ArrayLang, ArrayAnalysis>;

/// One-slot memo for an intro searcher's auxiliary candidate list, keyed
/// on the e-graph snapshot. On a clean e-graph every change either bumps
/// the delta version (sealed by `rebuild`) or the class count (adds), so
/// `(version, classes)` identifies the snapshot and per-class search
/// reuses one O(classes) computation instead of paying it per class.
#[derive(Default)]
pub(super) struct AuxMemo {
    slot: Mutex<MemoSlot>,
}

/// `(delta version, class count, candidate list)` — one [`AuxMemo`] entry.
type MemoSlot = Option<(u64, usize, Arc<Vec<Id>>)>;

impl AuxMemo {
    pub(super) fn get(&self, egraph: &AEGraph, compute: impl FnOnce() -> Vec<Id>) -> Arc<Vec<Id>> {
        let key = (egraph.delta_version(), egraph.num_classes());
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some((v, c, list)) = &*slot {
            if (*v, *c) == key {
                return Arc::clone(list);
            }
        }
        let list = Arc::new(compute());
        *slot = Some((key.0, key.1, Arc::clone(&list)));
        list
    }
}

/// FNV-1a over an id list: the intro searchers' semi-naive
/// [`delta_fingerprint`](Searcher::delta_fingerprint). Their per-class
/// match lists pair the class with this auxiliary list, so any change to
/// it changes every class's matches and must flush the frontier cache.
fn fingerprint_ids(ids: &[Id]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &id in ids {
        for byte in (id.index() as u64).to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Whole-graph search expressed exactly as the [`Searcher`] per-class
/// contract requires: `search_class` over ascending class ids with the
/// limit applied across classes in that order.
fn search_per_class<S: Searcher<ArrayLang, ArrayAnalysis>>(
    searcher: &S,
    egraph: &AEGraph,
    limit: usize,
) -> Vec<SearchMatches<ArrayLang>> {
    let mut total = 0;
    let mut out = Vec::new();
    for class in egraph.class_ids() {
        if total >= limit {
            break;
        }
        let substs = searcher.search_class(egraph, class, limit - total);
        if !substs.is_empty() {
            total += substs.len();
            out.push(SearchMatches::new(class, substs));
        }
    }
    out
}

fn resolve_expr(egraph: &AEGraph, binding: &Binding<ArrayLang>) -> Expr {
    match binding {
        Binding::Class(id) => (*egraph.data(*id).repr).clone(),
        Binding::Expr(e) => (**e).clone(),
    }
}

/// R-BetaReduce: `(λ e) y → subst(e, y)`.
struct BetaReduceApplier;

impl Applier<ArrayLang, ArrayAnalysis> for BetaReduceApplier {
    fn apply(&self, egraph: &mut AEGraph, class: Id, subst: &Subst<ArrayLang>) -> Vec<Id> {
        let body = resolve_expr(egraph, subst.get(&Var::new("b")).expect("b bound"));
        let arg = resolve_expr(egraph, subst.get(&Var::new("y")).expect("y bound"));
        let result = debruijn_subst(&body, &arg);
        let new_id = egraph.add_expr(&result);
        let lhs = if egraph.are_explanations_enabled() {
            // Precise provenance: the substitution operator ran on the
            // class *representatives*, so the recorded redex must spell
            // out those same representatives — `(λ body) arg` — rather
            // than whatever term created the matched class's id. The term
            // is already in the matched class (its nodes hash-cons onto
            // the matched redex), so this changes no equalities.
            let mut redex = Expr::default();
            let b_root = redex.append_subtree(&body, body.root());
            let lam = redex.add(ArrayLang::Lam(b_root));
            let a_root = redex.append_subtree(&arg, arg.root());
            redex.add(ArrayLang::App([lam, a_root]));
            egraph.add_expr(&redex)
        } else {
            class
        };
        let (id, changed) = egraph.union(lhs, new_id);
        if changed {
            vec![id]
        } else {
            vec![]
        }
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("b"), Var::new("y")]
    }
}

/// Whether a class is a candidate for λ-abstraction under the configured
/// [`CandidateSet`]: the constant-array chains of §IV.C.2 and §V.A abstract
/// over constants; wider sets are available for experimentation.
fn intro_lambda_candidate(egraph: &AEGraph, id: Id, set: CandidateSet) -> bool {
    intro_lambda_candidate_class(&egraph[id], set)
}

fn intro_lambda_candidate_class(
    class: &liar_egraph::EClass<ArrayLang, liar_ir::ClassData>,
    set: CandidateSet,
) -> bool {
    match set {
        CandidateSet::All => true,
        CandidateSet::ConstantsAndCalls => {
            class.data.constant.is_some()
                || class.iter().any(|n| matches!(n, ArrayLang::Call(..)))
        }
        CandidateSet::ValueLike => class.iter().any(|n| {
            matches!(
                n,
                ArrayLang::Const(_) | ArrayLang::Sym(_) | ArrayLang::Get(_) | ArrayLang::Call(..)
            )
        }),
    }
}

/// R-IntroLambda: `e → (λ e↑) y` for every candidate argument class `y`.
struct IntroLambdaSearcher {
    config: RuleConfig,
    ys: AuxMemo,
    cands: AuxMemo,
}

impl IntroLambdaSearcher {
    /// Candidate arguments y: classes containing a De Bruijn variable
    /// (every known chain abstracts over a loop index), or every class in
    /// exhaustive mode. Memoized per snapshot.
    fn ys(&self, egraph: &AEGraph) -> Arc<Vec<Id>> {
        let exhaustive = self.config.intro_lambda == CandidateSet::All;
        self.ys.get(egraph, || {
            let mut out: Vec<Id> = egraph
                .classes()
                .filter(|c| exhaustive || c.data.has_var)
                .map(|c| c.id)
                .collect();
            out.sort_unstable();
            out
        })
    }
}

impl Searcher<ArrayLang, ArrayAnalysis> for IntroLambdaSearcher {
    fn search(&self, egraph: &AEGraph, limit: usize) -> Vec<SearchMatches<ArrayLang>> {
        search_per_class(self, egraph, limit)
    }

    fn can_search_per_class(&self) -> bool {
        true
    }

    fn search_class(&self, egraph: &AEGraph, class: Id, limit: usize) -> Vec<Subst<ArrayLang>> {
        if !intro_lambda_candidate(egraph, class, self.config.intro_lambda) {
            return vec![];
        }
        self.ys(egraph)
            .iter()
            .take(limit)
            .map(|&y| {
                let mut s = Subst::default();
                s.insert(Var::new("y"), Binding::Class(y));
                s
            })
            .collect()
    }

    fn candidate_class_ids(&self, egraph: &AEGraph) -> Option<Vec<Id>> {
        if self.config.intro_lambda == CandidateSet::All || !egraph.is_clean() {
            return None;
        }
        // Classes passing the candidate check, memoized per snapshot —
        // sound because `search_class` is empty everywhere else. A class
        // only enters this set through recorded dirt: gaining a node
        // (add/union) or an analysis refinement (constant discovered).
        let set = self.config.intro_lambda;
        Some(
            self.cands
                .get(egraph, || {
                    let mut out: Vec<Id> = egraph
                        .classes()
                        .filter(|c| intro_lambda_candidate_class(c, set))
                        .map(|c| c.id)
                        .collect();
                    out.sort_unstable();
                    out
                })
                .to_vec(),
        )
    }

    fn delta_depth(&self) -> Option<u32> {
        // A class's matches depend on its own nodes and analysis data
        // (the candidate check) plus the global `ys` list, covered by
        // the fingerprint. Exhaustive mode pairs every class with every
        // class — stay whole-graph there.
        (self.config.intro_lambda != CandidateSet::All).then_some(1)
    }

    fn delta_fingerprint(&self, egraph: &AEGraph) -> u64 {
        fingerprint_ids(&self.ys(egraph))
    }

    fn min_class_yield(&self, egraph: &AEGraph) -> usize {
        if self.config.intro_lambda == CandidateSet::All {
            return 0;
        }
        // The candidate universe lists exactly the classes passing the
        // check, and each of those yields one substitution per `y`.
        self.ys(egraph).len()
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("y")]
    }
}

struct IntroLambdaApplier;

impl Applier<ArrayLang, ArrayAnalysis> for IntroLambdaApplier {
    fn apply(&self, egraph: &mut AEGraph, class: Id, subst: &Subst<ArrayLang>) -> Vec<Id> {
        let mut y = match subst.get(&Var::new("y")).expect("y bound") {
            Binding::Class(id) => *id,
            Binding::Expr(e) => egraph.add_expr(e),
        };
        let explained = egraph.are_explanations_enabled();
        if explained {
            // Precise provenance for the argument: prefer the class's De
            // Bruijn variable member (that is what made it a candidate),
            // so the recorded proof term spells `(λ e↑) %i` and the step
            // replays against the searcher's `has_var` gate.
            let var = egraph[y].iter().find(|n| matches!(n, ArrayLang::Var(_))).cloned();
            if let Some(var) = var {
                y = egraph.add(var);
            }
        }
        // (λ e↑): abstract over a parameter the body ignores.
        let repr = std::sync::Arc::clone(&egraph.data(class).repr);
        let body = shift_up(&repr, 1);
        let lam = {
            let mut e = Expr::default();
            let root = e.append_subtree(&body, body.root());
            e.add(ArrayLang::Lam(root));
            e
        };
        let lam_id = egraph.add_expr(&lam);
        let app_id = egraph.add(ArrayLang::App([lam_id, y]));
        let lhs = if explained {
            // The abstracted body is the class *representative*: record the
            // edge from that exact term (it is a member of `class`).
            egraph.add_expr(&repr)
        } else {
            class
        };
        let (id, changed) = egraph.union(lhs, app_id);
        if changed {
            vec![id]
        } else {
            vec![]
        }
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("y")]
    }
}

/// R-IntroIndexBuild: `f i → (build N f)[i]` for every extent `N` present
/// in the e-graph.
#[derive(Default)]
struct IntroIndexBuildSearcher {
    dims: AuxMemo,
}

impl IntroIndexBuildSearcher {
    /// Classes carrying a known extent, memoized per snapshot.
    fn dims(&self, egraph: &AEGraph) -> Arc<Vec<Id>> {
        self.dims.get(egraph, || {
            let mut out: Vec<Id> = egraph
                .classes()
                .filter(|c| c.data.dim.is_some())
                .map(|c| c.id)
                .collect();
            out.sort_unstable();
            out
        })
    }
}

impl Searcher<ArrayLang, ArrayAnalysis> for IntroIndexBuildSearcher {
    fn search(&self, egraph: &AEGraph, limit: usize) -> Vec<SearchMatches<ArrayLang>> {
        search_per_class(self, egraph, limit)
    }

    fn can_search_per_class(&self) -> bool {
        true
    }

    fn search_class(&self, egraph: &AEGraph, class: Id, limit: usize) -> Vec<Subst<ArrayLang>> {
        let dims = self.dims(egraph);
        let mut substs = Vec::new();
        for node in &egraph[class].nodes {
            let ArrayLang::App([f, i]) = node else { continue };
            for &n in dims.iter() {
                if substs.len() >= limit {
                    return substs;
                }
                let mut s = Subst::default();
                s.insert(Var::new("f"), Binding::Class(*f));
                s.insert(Var::new("i"), Binding::Class(*i));
                s.insert(Var::new("n"), Binding::Class(n));
                substs.push(s);
            }
        }
        substs
    }

    fn candidate_class_ids(&self, egraph: &AEGraph) -> Option<Vec<Id>> {
        if !egraph.is_clean() {
            return None;
        }
        // Only classes containing an `app` node can match: the operator
        // index answers exactly that (sorted, canonical on a clean graph).
        let key = ArrayLang::App([Id::from_index(0); 2]).op_key();
        Some(egraph.classes_with_op(key).to_vec())
    }

    fn delta_depth(&self) -> Option<u32> {
        // A class's matches depend on its own `app` nodes plus the global
        // extent list, covered by the fingerprint.
        Some(1)
    }

    fn delta_fingerprint(&self, egraph: &AEGraph) -> u64 {
        fingerprint_ids(&self.dims(egraph))
    }

    fn min_class_yield(&self, egraph: &AEGraph) -> usize {
        // Every class in the `app` bucket holds at least one `app` node,
        // each yielding one substitution per known extent.
        self.dims(egraph).len()
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("f"), Var::new("i"), Var::new("n")]
    }
}

/// Applier for R-IntroIndexBuild. Without explanations it behaves exactly
/// like its right-hand-side pattern `(get (build ?n ?f) ?i)`; with
/// explanations it builds both sides from the bound classes directly so
/// the recorded edge connects `(app f i)` — the precise matched instance —
/// to the indexed build, with the extent spelled as its `#n` literal.
struct IntroIndexBuildApplier {
    rhs: Pattern<ArrayLang>,
}

impl Applier<ArrayLang, ArrayAnalysis> for IntroIndexBuildApplier {
    fn apply(&self, egraph: &mut AEGraph, class: Id, subst: &Subst<ArrayLang>) -> Vec<Id> {
        if !egraph.are_explanations_enabled() {
            return self.rhs.apply(egraph, class, subst);
        }
        let bound = |egraph: &mut AEGraph, name: &str| match subst
            .get(&Var::new(name))
            .expect("searcher binds f, i and n")
        {
            Binding::Class(id) => *id,
            Binding::Expr(e) => egraph.add_expr(e),
        };
        let f = bound(egraph, "f");
        let i = bound(egraph, "i");
        let mut n = bound(egraph, "n");
        if let Some(d) = egraph.data(n).dim {
            // Spell the extent as its literal so the proof term replays.
            n = egraph.add(ArrayLang::Dim(d));
        }
        let lhs = egraph.add(ArrayLang::App([f, i]));
        let build = egraph.add(ArrayLang::Build([n, f]));
        let get = egraph.add(ArrayLang::Get([build, i]));
        let (id, changed) = egraph.union(lhs, get);
        if changed {
            vec![id]
        } else {
            vec![]
        }
    }

    fn bound_vars(&self) -> Vec<Var> {
        self.rhs.vars()
    }
}

/// Searcher for the tuple intro rules: pairs every class `a` with candidate
/// second components `b` (classes already occurring under tuples by
/// default; all classes in exhaustive mode).
struct IntroTupleSearcher {
    config: RuleConfig,
    candidates: Arc<AuxMemo>,
}

impl IntroTupleSearcher {
    /// Candidate second components, memoized per snapshot.
    fn candidates(&self, egraph: &AEGraph) -> Arc<Vec<Id>> {
        self.candidates.get(egraph, || {
            let mut c: Vec<Id> = if self.config.exhaustive_tuples {
                egraph.class_ids()
            } else {
                let mut c = Vec::new();
                for class in egraph.classes() {
                    for node in &class.nodes {
                        if let ArrayLang::Tuple([x, y]) = node {
                            c.push(egraph.find(*x));
                            c.push(egraph.find(*y));
                        }
                    }
                }
                c
            };
            c.sort();
            c.dedup();
            c
        })
    }
}

impl Searcher<ArrayLang, ArrayAnalysis> for IntroTupleSearcher {
    fn search(&self, egraph: &AEGraph, limit: usize) -> Vec<SearchMatches<ArrayLang>> {
        search_per_class(self, egraph, limit)
    }

    fn can_search_per_class(&self) -> bool {
        true
    }

    fn search_class(&self, egraph: &AEGraph, _class: Id, limit: usize) -> Vec<Subst<ArrayLang>> {
        self.candidates(egraph)
            .iter()
            .take(limit)
            .map(|&b| {
                let mut s = Subst::default();
                s.insert(Var::new("b"), Binding::Class(b));
                s
            })
            .collect()
    }

    fn delta_depth(&self) -> Option<u32> {
        // Per-class substs depend only on the global candidate list, which
        // the fingerprint covers; exhaustive mode pairs every class with
        // every class, so it stays on the whole-graph path.
        (!self.config.exhaustive_tuples).then_some(1)
    }

    fn delta_fingerprint(&self, egraph: &AEGraph) -> u64 {
        fingerprint_ids(&self.candidates(egraph))
    }

    fn min_class_yield(&self, egraph: &AEGraph) -> usize {
        // Every class yields exactly one substitution per candidate — the
        // guaranteed floor that lets the semi-naive planner truncate a
        // whole-universe plan to the prefix a match limit can reach.
        self.candidates(egraph).len()
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("b")]
    }
}

/// Applier for the tuple intro rules: `a → fst/snd (tuple … )`, where the
/// matched class supplies the kept component.
struct IntroTupleApplier {
    first: bool,
}

impl Applier<ArrayLang, ArrayAnalysis> for IntroTupleApplier {
    fn apply(&self, egraph: &mut AEGraph, class: Id, subst: &Subst<ArrayLang>) -> Vec<Id> {
        let b = match subst.get(&Var::new("b")).expect("b bound") {
            Binding::Class(id) => *id,
            Binding::Expr(e) => egraph.add_expr(e),
        };
        let tuple = if self.first {
            egraph.add(ArrayLang::Tuple([class, b]))
        } else {
            egraph.add(ArrayLang::Tuple([b, class]))
        };
        let proj = if self.first {
            egraph.add(ArrayLang::Fst(tuple))
        } else {
            egraph.add(ArrayLang::Snd(tuple))
        };
        let (id, changed) = egraph.union(class, proj);
        if changed {
            vec![id]
        } else {
            vec![]
        }
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("b")]
    }
}

/// The eight core rules of listing 2.
pub fn core_rules(config: &RuleConfig) -> Vec<ArrayRewrite> {
    let config = *config;
    // One memo for the two tuple intro rules: they scan the same universe.
    let tuple_memo = Arc::new(AuxMemo::default());
    vec![
        Rewrite::new(
            "beta-reduce",
            "(app (lam ?b) ?y)".parse::<Pattern<ArrayLang>>().unwrap(),
            BetaReduceApplier,
        ),
        Rewrite::new(
            "intro-lambda",
            IntroLambdaSearcher { config, ys: AuxMemo::default(), cands: AuxMemo::default() },
            IntroLambdaApplier,
        ),
        Rewrite::from_patterns("elim-index-build", "(get (build ?n ?f) ?i)", "(app ?f ?i)"),
        Rewrite::new(
            "intro-index-build",
            IntroIndexBuildSearcher::default(),
            IntroIndexBuildApplier {
                rhs: "(get (build ?n ?f) ?i)".parse::<Pattern<ArrayLang>>().unwrap(),
            },
        ),
        Rewrite::from_patterns("elim-fst-tuple", "(fst (tuple ?a ?b))", "?a"),
        Rewrite::new(
            "intro-fst-tuple",
            IntroTupleSearcher { config, candidates: Arc::clone(&tuple_memo) },
            IntroTupleApplier { first: true },
        ),
        Rewrite::from_patterns("elim-snd-tuple", "(snd (tuple ?a ?b))", "?b"),
        Rewrite::new(
            "intro-snd-tuple",
            IntroTupleSearcher { config, candidates: tuple_memo },
            IntroTupleApplier { first: false },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use liar_egraph::Runner;
    use liar_ir::ArrayEGraph;

    fn e(s: &str) -> Expr {
        s.parse().unwrap()
    }

    fn saturate(expr: &Expr, iters: usize) -> (Runner<ArrayLang, ArrayAnalysis>, Id) {
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(expr);
        let mut runner = Runner::new(eg).with_iter_limit(iters).with_node_limit(100_000);
        let rules = core_rules(&RuleConfig::default());
        runner.run(&rules);
        (runner, root)
    }

    #[test]
    fn beta_reduction_fires() {
        let (runner, root) = saturate(&e("(app (lam (+ %0 1)) x)"), 3);
        let reduced = runner.egraph.lookup_expr(&e("(+ x 1)"));
        assert_eq!(reduced, Some(runner.egraph.find(root)));
    }

    #[test]
    fn elim_index_build_plus_beta_is_map_access() {
        // (build n (λ xs[•0] + 1))[i] → xs[i] + 1  (paper §IV.C.1).
        let (runner, root) = saturate(&e("(get (build #8 (lam (+ (get xs %0) 1))) i)"), 4);
        let fused = runner.egraph.lookup_expr(&e("(+ (get xs i) 1)"));
        assert_eq!(fused, Some(runner.egraph.find(root)));
    }

    #[test]
    fn map_fusion_example() {
        // build n (λ f (build n (λ g xs[•0]))[•0]) fuses to
        // build n (λ f (g xs[•0])) — §IV.C.1 with f = +1, g = *2.
        let two_maps = e(
            "(build #8 (lam (+ (get (build #8 (lam (* (get xs %0) 2))) %0) 1)))",
        );
        let fused = e("(build #8 (lam (+ (* (get xs %0) 2) 1)))");
        let (runner, root) = saturate(&two_maps, 4);
        assert_eq!(
            runner.egraph.lookup_expr(&fused),
            Some(runner.egraph.find(root)),
            "maps should fuse"
        );
    }

    #[test]
    fn intro_lambda_builds_constant_arrays() {
        // §IV.C.2: a constant under a loop index becomes an indexed
        // constant array: 42 = (build n (λ 42))[•0].
        let expr = e("(build #8 (lam (+ (get xs %0) 42)))");
        let (runner, root) = saturate(&expr, 4);
        let as_vadd = e(
            "(build #8 (lam (+ (get xs %0) (get (build #8 (lam 42)) %0))))",
        );
        assert_eq!(
            runner.egraph.lookup_expr(&as_vadd),
            Some(runner.egraph.find(root)),
            "constant array form should be discovered"
        );
    }

    #[test]
    fn tuple_rules_roundtrip() {
        let (runner, root) = saturate(&e("(fst (tuple x y))"), 3);
        assert_eq!(
            runner.egraph.lookup_expr(&e("x")),
            Some(runner.egraph.find(root))
        );
        let (runner, root) = saturate(&e("(snd (tuple x y))"), 3);
        assert_eq!(
            runner.egraph.lookup_expr(&e("y")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn intro_tuple_uses_existing_tuple_components() {
        // With a tuple in the graph, x also equals fst (tuple x y).
        let (runner, root) = saturate(&e("(tuple (+ x 0) y)"), 3);
        let _ = root;
        let x = runner.egraph.lookup_expr(&e("(+ x 0)")).unwrap();
        let wrapped = runner.egraph.lookup_expr(&e("(fst (tuple (+ x 0) y))"));
        assert_eq!(wrapped, Some(runner.egraph.find(x)));
    }

    #[test]
    fn saturation_is_sound_for_invariants() {
        let (runner, _) = saturate(&e("(build #4 (lam (+ (get xs %0) 1)))"), 3);
        runner.egraph.assert_invariants();
    }
}
