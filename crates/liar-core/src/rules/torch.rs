//! PyTorch idiom rules (paper listing 5), in the recognition direction.
//!
//! `add` and `mul` are polymorphic in PyTorch: an array of `mul` calls is a
//! single higher-dimensional `mul`. The lift rules (I-LIFTADD, I-LIFTMUL)
//! express this; their appliers compute the product extent `n·m` for the
//! lifted call, which a plain pattern cannot do.

use liar_egraph::{
    Applier, Binding, EGraph, Id, Pattern, Rewrite, Subst, Var,
};
use liar_ir::{ArrayAnalysis, ArrayLang, ArrayRewrite, LibFn};

use super::guard::{checks_pass, Check, GuardedPattern};

type AEGraph = EGraph<ArrayLang, ArrayAnalysis>;

fn rw(name: &str, lhs: &str, rhs: &str, checks: Vec<Check>) -> ArrayRewrite {
    let lhs: Pattern<ArrayLang> = lhs.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
    let rhs: Pattern<ArrayLang> = rhs.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
    Rewrite::new(name, lhs, GuardedPattern::new(rhs, checks))
}

fn class_of(egraph: &mut AEGraph, binding: &Binding<ArrayLang>) -> Id {
    match binding {
        Binding::Class(id) => *id,
        Binding::Expr(e) => egraph.add_expr(e),
    }
}

/// Applier for the lift rules: builds `f(#(n·m), args…)` where `n` and `m`
/// are the extents bound by the pattern.
struct LiftApplier {
    fun: LibFn,
    /// Variables for the two extents to multiply.
    n: &'static str,
    m: &'static str,
    /// Variables for the value arguments, in call order.
    args: Vec<&'static str>,
}

impl Applier<ArrayLang, ArrayAnalysis> for LiftApplier {
    fn apply(&self, egraph: &mut AEGraph, class: Id, subst: &Subst<ArrayLang>) -> Vec<Id> {
        // The lifted array(s) must actually have `n` rows.
        let checks: Vec<Check> = self
            .args
            .iter()
            .filter(|a| **a != "alpha")
            .map(|a| Check::arr(a, self.n))
            .collect();
        if !checks_pass(egraph, subst, &checks) {
            return vec![];
        }
        let dim_of = |egraph: &AEGraph, v: &str| -> Option<usize> {
            match subst.get(&Var::new(v))? {
                Binding::Class(id) => egraph.data(*id).dim,
                Binding::Expr(e) => e.node(e.root()).as_dim(),
            }
        };
        let (Some(n), Some(m)) = (dim_of(egraph, self.n), dim_of(egraph, self.m)) else {
            return vec![]; // Extent unknown: the match was not well-formed.
        };
        let dim_id = egraph.add(ArrayLang::Dim(n * m));
        let mut children = vec![dim_id];
        for a in &self.args {
            let b = subst.get(&Var::new(a)).expect("arg bound").clone();
            children.push(class_of(egraph, &b));
        }
        debug_assert_eq!(children.len(), self.fun.arity());
        let call = egraph.add(ArrayLang::Call(self.fun, children));
        let (id, changed) = egraph.union(class, call);
        if changed {
            vec![id]
        } else {
            vec![]
        }
    }

    fn bound_vars(&self) -> Vec<Var> {
        let mut vars = vec![Var::new(self.n), Var::new(self.m)];
        vars.extend(self.args.iter().map(Var::new));
        vars
    }
}

/// The PyTorch idiom set: dot, sum, mv, mm, transpose (+ involution), add,
/// mul, the two lift rules, and full.
pub fn torch_rules() -> Vec<ArrayRewrite> {
    vec![
        // I-DOT (same definition as BLAS; shared `dot` call).
        rw(
            "idiom-dot",
            "(ifold ?n 0 (lam (lam (+ (* (get (sh2 ?a) %1) (get (sh2 ?b) %1)) %0))))",
            "(dot ?n ?a ?b)",
            vec![Check::arr("a", "n"), Check::arr("b", "n")],
        ),
        // I-VECSUM: sum(A) = ifold N 0 (λ λ A↑↑[•1] + •0)
        rw(
            "idiom-sum",
            "(ifold ?n 0 (lam (lam (+ (get (sh2 ?a) %1) %0))))",
            "(sum ?n ?a)",
            vec![Check::arr("a", "n")],
        ),
        // I-MATVEC: mv(A, B) = build N (λ dot(A↑[•0], B↑))
        rw(
            "idiom-mv",
            "(build ?n (lam (dot ?m (get (sh1 ?a) %0) (sh1 ?b))))",
            "(mv ?n ?m ?a ?b)",
            vec![Check::arr("a", "n"), Check::arr("b", "m")],
        ),
        // I-MATMAT: mm(A, B) = build N (λ mv(B↑, A↑[•0]))
        rw(
            "idiom-mm",
            "(build ?n (lam (mv ?m ?k (sh1 ?b) (get (sh1 ?a) %0))))",
            "(mm ?n ?m ?k ?a ?b)",
            vec![Check::arr("a", "n"), Check::arr("b", "m")],
        ),
        // I-TRANSPOSE (shared with BLAS).
        rw(
            "idiom-transpose",
            "(build ?n (lam (build ?m (lam (get (get (sh2 ?a) %0) %1)))))",
            "(transpose ?m ?n ?a)",
            vec![Check::arr("a", "m")],
        ),
        // I-TRANSPOSETWICE: transpose(transpose(A)) = A
        rw(
            "idiom-transpose-twice",
            "(transpose ?n ?m (transpose ?m2 ?n2 ?a))",
            "?a",
            vec![
                Check::dims("n", "n2"),
                Check::dims("m", "m2"),
                Check::arr("a", "m2"),
            ],
        ),
        // I-ADDVEC: add(A, B) = build N (λ A↑[•0] + B↑[•0])
        rw(
            "idiom-add",
            "(build ?n (lam (+ (get (sh1 ?a) %0) (get (sh1 ?b) %0))))",
            "(add ?n ?a ?b)",
            vec![Check::arr("a", "n"), Check::arr("b", "n")],
        ),
        // I-LIFTADD: add(A, B) = build N (λ add(A↑[•0], B↑[•0]))
        Rewrite::new(
            "idiom-lift-add",
            "(build ?n (lam (add ?m (get (sh1 ?a) %0) (get (sh1 ?b) %0))))"
                .parse::<Pattern<ArrayLang>>()
                .unwrap(),
            LiftApplier {
                fun: LibFn::TAdd,
                n: "n",
                m: "m",
                args: vec!["a", "b"],
            },
        ),
        // I-MULSCALARANDVEC: mul(α, A) = build N (λ α * A↑[•0])
        rw(
            "idiom-mul",
            "(build ?n (lam (* (sh1 ?alpha) (get (sh1 ?a) %0))))",
            "(mul ?n ?alpha ?a)",
            vec![Check::scalar("alpha"), Check::arr("a", "n")],
        ),
        // I-LIFTMUL: mul(α, A) = build N (λ mul(α, A↑[•0]))
        Rewrite::new(
            "idiom-lift-mul",
            "(build ?n (lam (mul ?m (sh1 ?alpha) (get (sh1 ?a) %0))))"
                .parse::<Pattern<ArrayLang>>()
                .unwrap(),
            LiftApplier {
                fun: LibFn::TMul,
                n: "n",
                m: "m",
                args: vec!["alpha", "a"],
            },
        ),
        // I-FULLVEC: full(c) = build N (λ c↑)
        rw("idiom-full", "(build ?n (lam (sh1 ?c)))", "(full ?n ?c)", vec![]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{core_rules, scalar_rules, RuleConfig};
    use liar_egraph::Runner;
    use liar_ir::{dsl, ArrayEGraph, Expr};

    fn e(s: &str) -> Expr {
        s.parse().unwrap()
    }

    fn saturate(
        expr: &Expr,
        iters: usize,
    ) -> (Runner<ArrayLang, ArrayAnalysis>, liar_egraph::Id) {
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(expr);
        let config = RuleConfig::default();
        let mut rules = core_rules(&config);
        rules.extend(scalar_rules(&config));
        rules.extend(torch_rules());
        let mut runner = Runner::new(eg).with_iter_limit(iters).with_node_limit(200_000);
        runner.run(&rules);
        (runner, root)
    }

    #[test]
    fn sum_recognized_in_vsum() {
        let expr = dsl::vsum(8, dsl::sym("xs"));
        let (runner, root) = saturate(&expr, 2);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(sum #8 xs)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn mv_recognized_from_matvec() {
        let expr = dsl::matvec(4, 8, dsl::sym("A"), dsl::sym("B"));
        let (runner, root) = saturate(&expr, 3);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(mv #4 #8 A B)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn mm_recognized_from_matmat() {
        // matmat composes A·B as rows of A dotted with rows of Bᵀ; the
        // engine should find mm(A, transpose(B)).
        let expr = dsl::matmat(2, 3, 4, dsl::sym("A"), dsl::sym("B"));
        let (runner, root) = saturate(&expr, 4);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(mm #2 #3 #4 A (transpose #4 #3 B))")),
            Some(runner.egraph.find(root)),
            "matmat should become mm(A, transpose(B))"
        );
    }

    #[test]
    fn add_recognized_from_vadd() {
        let expr = dsl::vadd(8, dsl::sym("A"), dsl::sym("B"));
        let (runner, root) = saturate(&expr, 2);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(add #8 A B)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn lift_add_computes_product_extent() {
        // A matrix addition is a vector of vector additions, which lifts
        // to a single add over n·m elements.
        let expr = dsl::madd(4, 8, dsl::sym("A"), dsl::sym("B"));
        let (runner, root) = saturate(&expr, 3);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(add #32 A B)")),
            Some(runner.egraph.find(root)),
            "lifted add over 4·8 elements"
        );
    }

    #[test]
    fn lift_mul_computes_product_extent() {
        let expr = dsl::mscale(4, 8, dsl::sym("alpha"), dsl::sym("A"));
        let (runner, root) = saturate(&expr, 3);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(mul #32 alpha A)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn full_recognized_from_constvec() {
        let expr = dsl::constvec(8, dsl::num(0.33333));
        let (runner, root) = saturate(&expr, 2);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(full #8 0.33333)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn transpose_twice_cancels() {
        let expr = e("(transpose #3 #4 (transpose #4 #3 A))");
        let (runner, root) = saturate(&expr, 2);
        assert_eq!(
            runner.egraph.lookup_expr(&e("A")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn torch_shift_rules_match_identically_under_vm_and_oracle() {
        // The torch idioms lean on sh1/sh2 shift patterns; after a couple
        // of saturation steps the graph contains real Downshift work, and
        // the compiled matcher must agree with the oracle on all of it.
        let expr = dsl::vsum(8, dsl::sym("xs"));
        let (runner, _) = saturate(&expr, 2);
        let eg = &runner.egraph;
        for rule in torch_rules() {
            let Some(pattern) = rule.searcher_pattern() else { continue };
            for class in eg.class_ids() {
                let vm = pattern.match_class(eg, class);
                let oracle = pattern.match_class_oracle(eg, class);
                assert_eq!(vm.len(), oracle.len(), "rule {}", rule.name());
                let find = |id| eg.find(id);
                for (a, b) in vm.iter().zip(&oracle) {
                    assert!(a.same_as(b, &find), "rule {}", rule.name());
                }
            }
        }
    }
}
