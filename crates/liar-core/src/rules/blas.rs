//! BLAS idiom rules (paper listing 4), in the recognition direction.
//!
//! Shift patterns `(sh1 ?x)` / `(sh2 ?x)` correspond to the `↑` / `↑↑`
//! applications in the listing: they match classes whose terms do not use
//! the enclosing binders and bind the variable to the downshifted term.

use liar_egraph::{Pattern, Rewrite};
use liar_ir::{ArrayLang, ArrayRewrite};

use super::guard::{Check, GuardedPattern};

fn rw(name: &str, lhs: &str, rhs: &str, checks: Vec<Check>) -> ArrayRewrite {
    let lhs: Pattern<ArrayLang> = lhs.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
    let rhs: Pattern<ArrayLang> = rhs.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
    Rewrite::new(name, lhs, GuardedPattern::new(rhs, checks))
}

/// The BLAS idiom set: dot, axpy, gemv (both orientations), gemm (all four
/// orientations via transpose-hoisting), transpose, the dot/mul hoist, and
/// memset.
pub fn blas_rules() -> Vec<ArrayRewrite> {
    let mut rules = vec![
        // I-DOT: dot(A, B) = ifold N 0 (λ λ A↑↑[•1] * B↑↑[•1] + •0)
        rw(
            "idiom-dot",
            "(ifold ?n 0 (lam (lam (+ (* (get (sh2 ?a) %1) (get (sh2 ?b) %1)) %0))))",
            "(dot ?n ?a ?b)",
            vec![Check::arr("a", "n"), Check::arr("b", "n")],
        ),
        // I-AXPY: axpy(α, A, B) = build N (λ α↑ * A↑[•0] + B↑[•0])
        rw(
            "idiom-axpy",
            "(build ?n (lam (+ (* (sh1 ?alpha) (get (sh1 ?a) %0)) (get (sh1 ?b) %0))))",
            "(axpy ?n ?alpha ?a ?b)",
            vec![
                Check::scalar("alpha"),
                Check::arr("a", "n"),
                Check::arr("b", "n"),
            ],
        ),
        // I-GEMV: gemvF(α, A, B, β, C)
        //       = build N (λ α↑ * dot(A↑[•0], B↑) + β↑ * C↑[•0])
        rw(
            "idiom-gemv",
            "(build ?n (lam (+ (* (sh1 ?alpha) (dot ?m (get (sh1 ?a) %0) (sh1 ?b))) \
                              (* (sh1 ?beta) (get (sh1 ?c) %0)))))",
            "(gemv ?n ?m ?alpha ?a ?b ?beta ?c)",
            vec![
                Check::scalar("alpha"),
                Check::scalar("beta"),
                Check::arr("a", "n"),
                Check::arr("b", "m"),
                Check::arr("c", "n"),
            ],
        ),
        // I-GEMM: gemmF,T(α, A, B, β, C)
        //       = build N (λ gemvF(α↑, B↑, A↑[•0], β↑, C↑[•0]))
        rw(
            "idiom-gemm",
            "(build ?n (lam (gemv ?m ?k (sh1 ?alpha) (sh1 ?b) (get (sh1 ?a) %0) \
                                  (sh1 ?beta) (get (sh1 ?c) %0))))",
            "(gemmFT ?n ?m ?k ?alpha ?a ?b ?beta ?c)",
            vec![
                Check::scalar("alpha"),
                Check::scalar("beta"),
                Check::arr("a", "n"),
                Check::arr("b", "m"),
                Check::arr("c", "n"),
            ],
        ),
        // I-TRANSPOSE: transpose(A) = build N (λ build M (λ A↑↑[•0][•1]))
        rw(
            "idiom-transpose",
            "(build ?n (lam (build ?m (lam (get (get (sh2 ?a) %0) %1)))))",
            "(transpose ?m ?n ?a)",
            vec![Check::arr("a", "m")],
        ),
        // I-HOISTMULFROMDOT: dot(build N (λ α * A[•0]), B) = α * dot(A, B)
        rw(
            "idiom-hoist-mul-from-dot",
            "(dot ?n (build ?n2 (lam (* (sh1 ?alpha) (get (sh1 ?a) %0)))) ?b)",
            "(* ?alpha (dot ?n ?a ?b))",
            vec![
                Check::scalar("alpha"),
                Check::dims("n", "n2"),
                Check::arr("a", "n"),
                Check::arr("b", "n"),
            ],
        ),
        // I-MEMSETZERO: memset(0) = build N (λ 0)
        rw("idiom-memset-zero", "(build ?n (lam 0))", "(memset ?n 0)", vec![]),
    ];

    // I-TRANSPOSEINGEMV: gemvX(α, transpose(A), B, β, c) = gemv¬X(α, A, B, β, c)
    for (x, notx) in [("gemv", "gemvT"), ("gemvT", "gemv")] {
        // gemv's A is n×m (or m×n stored when transposed); a transpose in
        // the A slot must have matching dims to hoist.
        let checks = if x == "gemv" {
            vec![Check::dims("m2", "n"), Check::dims("n2", "m")]
        } else {
            vec![Check::dims("m2", "m"), Check::dims("n2", "n")]
        };
        rules.push(rw(
            &format!("idiom-transpose-in-{x}"),
            &format!("({x} ?n ?m ?alpha (transpose ?n2 ?m2 ?a) ?b ?beta ?c)"),
            &format!("({notx} ?n ?m ?alpha ?a ?b ?beta ?c)"),
            checks,
        ));
    }
    // I-TRANSPOSEAINGEMM / I-TRANSPOSEBINGEMM: flip one transpose flag.
    for ta in ["F", "T"] {
        for tb in ["F", "T"] {
            let not = |f: &str| if f == "F" { "T" } else { "F" };
            // In the FF orientation A is stored n×k and B m×k; a set flag
            // means the stored matrix is transposed. A transpose call in a
            // slot must produce the orientation that slot expects.
            let a_checks = if ta == "F" {
                vec![Check::dims("m2", "n"), Check::dims("n2", "k")]
            } else {
                vec![Check::dims("m2", "k"), Check::dims("n2", "n")]
            };
            rules.push(rw(
                &format!("idiom-transpose-a-in-gemm{ta}{tb}"),
                &format!(
                    "(gemm{ta}{tb} ?n ?m ?k ?alpha (transpose ?n2 ?m2 ?a) ?b ?beta ?c)"
                ),
                &format!("(gemm{}{tb} ?n ?m ?k ?alpha ?a ?b ?beta ?c)", not(ta)),
                a_checks,
            ));
            let b_checks = if tb == "F" {
                vec![Check::dims("m2", "m"), Check::dims("n2", "k")]
            } else {
                vec![Check::dims("m2", "k"), Check::dims("n2", "m")]
            };
            rules.push(rw(
                &format!("idiom-transpose-b-in-gemm{ta}{tb}"),
                &format!(
                    "(gemm{ta}{tb} ?n ?m ?k ?alpha ?a (transpose ?n2 ?m2 ?b) ?beta ?c)"
                ),
                &format!("(gemm{ta}{} ?n ?m ?k ?alpha ?a ?b ?beta ?c)", not(tb)),
                b_checks,
            ));
        }
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{core_rules, scalar_rules, RuleConfig};
    use liar_egraph::Runner;
    use liar_ir::{dsl, ArrayEGraph, Expr};

    fn e(s: &str) -> Expr {
        s.parse().unwrap()
    }

    fn saturate(expr: &Expr, iters: usize) -> (Runner<liar_ir::ArrayLang, liar_ir::ArrayAnalysis>, liar_egraph::Id) {
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(expr);
        let config = RuleConfig::default();
        let mut rules = core_rules(&config);
        rules.extend(scalar_rules(&config));
        rules.extend(blas_rules());
        let mut runner = Runner::new(eg).with_iter_limit(iters).with_node_limit(200_000);
        runner.run(&rules);
        (runner, root)
    }

    #[test]
    fn dot_recognized_directly() {
        let expr = dsl::dot(8, dsl::sym("a"), dsl::sym("b"));
        let (runner, root) = saturate(&expr, 2);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(dot #8 a b)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn axpy_recognized_from_vadd_vscale() {
        // axpy kernel: vadd(vscale(α, A), B).
        let expr = dsl::vadd(
            8,
            dsl::vscale(8, dsl::sym("alpha"), dsl::sym("A")),
            dsl::sym("B"),
        );
        let (runner, root) = saturate(&expr, 4);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(axpy #8 alpha A B)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn latent_dot_in_vector_sum() {
        // §V.A: vsum = ifold n 0 (λλ xs[•1] + •0) hides dot(xs, ones).
        let expr = dsl::vsum(8, dsl::sym("xs"));
        let (runner, root) = saturate(&expr, 4);
        let as_dot = e("(dot #8 xs (build #8 (lam 1)))");
        assert_eq!(
            runner.egraph.lookup_expr(&as_dot),
            Some(runner.egraph.find(root)),
            "vector sum should expose dot(xs, build n (λ 1))"
        );
    }

    #[test]
    fn transpose_recognized() {
        let expr = dsl::transposeb(4, 8, dsl::sym("A"));
        let (runner, root) = saturate(&expr, 2);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(transpose #4 #8 A)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn gemv_recognized_from_composition() {
        // gemv kernel: vadd(vscale(α, matvec(A, B)), vscale(β, C)).
        let expr = dsl::vadd(
            4,
            dsl::vscale(4, dsl::sym("alpha"), dsl::matvec(4, 8, dsl::sym("A"), dsl::sym("B"))),
            dsl::vscale(4, dsl::sym("beta"), dsl::sym("C")),
        );
        let (runner, root) = saturate(&expr, 6);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(gemv #4 #8 alpha A B beta C)")),
            Some(runner.egraph.find(root)),
            "gemv should be recognized"
        );
    }

    #[test]
    fn hoist_mul_from_dot() {
        let expr = e("(dot #8 (build #8 (lam (* alpha (get A %0)))) B)");
        let (runner, root) = saturate(&expr, 2);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(* alpha (dot #8 A B))")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn memset_zero_recognized() {
        let expr = dsl::constvec(16, dsl::num(0.0));
        let (runner, root) = saturate(&expr, 2);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(memset #16 0)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn transpose_hoists_out_of_gemv() {
        let expr = e("(gemv #4 #8 alpha (transpose #8 #4 A) B beta C)");
        let (runner, root) = saturate(&expr, 2);
        assert_eq!(
            runner.egraph.lookup_expr(&e("(gemvT #4 #8 alpha A B beta C)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn shift_rules_compile_to_downshift_instructions() {
        use liar_egraph::machine::Instr;
        // Every BLAS idiom whose LHS carries a `(sh<k> …)` pattern must
        // exercise the VM's Downshift instruction family; the rest must
        // still get an operator-index entry point from their root node.
        let mut shift_rules = 0;
        for rule in blas_rules() {
            let pattern = rule.searcher_pattern().expect("blas searchers are patterns");
            let program = pattern.compiled();
            assert!(
                program.root_op_key().is_some(),
                "{}: LHS root should be indexable",
                rule.name()
            );
            let has_shift = pattern
                .to_string()
                .contains("(sh");
            let has_downshift = program.instructions().iter().any(|i| {
                matches!(
                    i,
                    Instr::Downshift { .. }
                        | Instr::DownshiftCompare { .. }
                        | Instr::DownshiftCompareClass { .. }
                )
            });
            assert_eq!(
                has_shift,
                has_downshift,
                "{}: shift syntax and Downshift instructions must coincide",
                rule.name()
            );
            shift_rules += usize::from(has_shift);
        }
        assert!(shift_rules >= 6, "expected most BLAS idioms to use shifts");
    }
}
