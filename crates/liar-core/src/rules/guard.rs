//! Dimension guards for idiom appliers.
//!
//! The IR is untyped, and the intro rules deliberately over-approximate:
//! `0 = (build 5 (λ 0))[i]` is installed even in contexts where `i` ranges
//! over 8 (the paper's SHIR rules this out with typed index variables).
//! Those equalities are harmless until an idiom rule captures an array of
//! the wrong extent as a call argument. Each idiom applier therefore
//! checks, before building the call, that the extents of its array
//! bindings agree with the extents bound from the pattern — rejecting the
//! match when both sides are known and disagree.

use liar_egraph::{Applier, Binding, EGraph, Id, Pattern, Subst, Var};
use liar_ir::analysis::node_extent;
use liar_ir::{ArrayAnalysis, ArrayLang, Expr};

type AEGraph = EGraph<ArrayLang, ArrayAnalysis>;

/// One dimension-consistency requirement.
#[derive(Debug, Clone)]
pub enum Check {
    /// The leading extent of array variable `.0` must equal the extent
    /// bound by dim variable `.1`.
    ArrExtent(Var, Var),
    /// Two dim variables must bind equal extents.
    DimEq(Var, Var),
    /// The variable must not bind a value with a known array extent
    /// (scalar positions such as gemv's α and β).
    NotArray(Var),
}

impl Check {
    /// Shorthand: `arr("a", "n")`.
    pub fn arr(a: &str, n: &str) -> Check {
        Check::ArrExtent(Var::new(a), Var::new(n))
    }

    /// Shorthand: `dims("n", "n2")`.
    pub fn dims(a: &str, b: &str) -> Check {
        Check::DimEq(Var::new(a), Var::new(b))
    }

    /// Shorthand: `scalar("alpha")`.
    pub fn scalar(a: &str) -> Check {
        Check::NotArray(Var::new(a))
    }
}

/// The extent a `#n` binding denotes, if known.
fn dim_of(egraph: &AEGraph, b: &Binding<ArrayLang>) -> Option<usize> {
    match b {
        Binding::Class(id) => egraph.data(*id).dim,
        Binding::Expr(e) => e.node(e.root()).as_dim(),
    }
}

/// The leading array extent of a binding's value, if known.
fn extent_of(egraph: &AEGraph, b: &Binding<ArrayLang>) -> Option<usize> {
    match b {
        Binding::Class(id) => egraph.data(*id).extent,
        Binding::Expr(e) => expr_extent(e),
    }
}

/// Leading extent of a standalone expression.
pub fn expr_extent(e: &Expr) -> Option<usize> {
    node_extent(e.node(e.root()), &mut |c| e.node(c).as_dim())
}

/// Evaluate all checks against a substitution; `true` means the match may
/// proceed (unknown extents are permissive).
pub fn checks_pass(egraph: &AEGraph, subst: &Subst<ArrayLang>, checks: &[Check]) -> bool {
    checks.iter().all(|check| match check {
        Check::ArrExtent(a, n) => {
            let (Some(binding), Some(dim_binding)) = (subst.get(a), subst.get(n)) else {
                return true;
            };
            match (extent_of(egraph, binding), dim_of(egraph, dim_binding)) {
                (Some(e), Some(d)) => e == d,
                _ => true,
            }
        }
        Check::DimEq(x, y) => {
            let (Some(bx), Some(by)) = (subst.get(x), subst.get(y)) else {
                return true;
            };
            match (dim_of(egraph, bx), dim_of(egraph, by)) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }
        }
        Check::NotArray(v) => subst
            .get(v)
            .is_none_or(|b| extent_of(egraph, b).is_none()),
    })
}

/// A pattern applier that only fires when its dimension checks pass.
pub struct GuardedPattern {
    pattern: Pattern<ArrayLang>,
    checks: Vec<Check>,
}

impl GuardedPattern {
    /// Guard `pattern` with `checks`.
    pub fn new(pattern: Pattern<ArrayLang>, checks: Vec<Check>) -> Self {
        GuardedPattern { pattern, checks }
    }
}

impl Applier<ArrayLang, ArrayAnalysis> for GuardedPattern {
    fn apply(&self, egraph: &mut AEGraph, class: Id, subst: &Subst<ArrayLang>) -> Vec<Id> {
        if !checks_pass(egraph, subst, &self.checks) {
            return vec![];
        }
        self.pattern.apply(egraph, class, subst)
    }

    fn bound_vars(&self) -> Vec<Var> {
        let mut vars = self.pattern.vars();
        for c in &self.checks {
            let vs: Vec<&Var> = match c {
                Check::ArrExtent(a, b) | Check::DimEq(a, b) => vec![a, b],
                Check::NotArray(a) => vec![a],
            };
            for v in vs {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
        }
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liar_ir::ArrayEGraph;

    fn e(s: &str) -> Expr {
        s.parse().unwrap()
    }

    #[test]
    fn extent_of_builds_and_calls() {
        let mut eg = ArrayEGraph::default();
        let b = eg.add_expr(&e("(build #5 (lam 0))"));
        assert_eq!(eg.data(b).extent, Some(5));
        let m = eg.add_expr(&e("(memset #8 0)"));
        assert_eq!(eg.data(m).extent, Some(8));
        let t = eg.add_expr(&e("(transpose #2 #3 A)"));
        assert_eq!(eg.data(t).extent, Some(3));
        let s = eg.add_expr(&e("(dot #4 A B)"));
        assert_eq!(eg.data(s).extent, None);
    }

    #[test]
    fn expr_extent_works_standalone() {
        assert_eq!(expr_extent(&e("(build #5 (lam 0))")), Some(5));
        assert_eq!(expr_extent(&e("(get A i)")), None);
    }

    #[test]
    fn mismatched_extent_blocks_apply() {
        let mut eg = ArrayEGraph::default();
        let zeros5 = eg.add_expr(&e("(build #5 (lam 0))"));
        let n8 = eg.add_expr(&e("#8"));
        let mut subst = Subst::default();
        subst.insert(Var::new("c"), Binding::Class(zeros5));
        subst.insert(Var::new("n"), Binding::Class(n8));
        assert!(!checks_pass(&eg, &subst, &[Check::arr("c", "n")]));
        // Same extent passes.
        let n5 = eg.add_expr(&e("#5"));
        let mut ok = Subst::default();
        ok.insert(Var::new("c"), Binding::Class(zeros5));
        ok.insert(Var::new("n"), Binding::Class(n5));
        assert!(checks_pass(&eg, &ok, &[Check::arr("c", "n")]));
    }

    #[test]
    fn unknown_extents_are_permissive() {
        let mut eg = ArrayEGraph::default();
        let sym = eg.add_expr(&e("A"));
        let n8 = eg.add_expr(&e("#8"));
        let mut subst = Subst::default();
        subst.insert(Var::new("c"), Binding::Class(sym));
        subst.insert(Var::new("n"), Binding::Class(n8));
        assert!(checks_pass(&eg, &subst, &[Check::arr("c", "n")]));
    }

    #[test]
    fn dim_eq_check() {
        let mut eg = ArrayEGraph::default();
        let n8 = eg.add_expr(&e("#8"));
        let n5 = eg.add_expr(&e("#5"));
        let mut subst = Subst::default();
        subst.insert(Var::new("n"), Binding::Class(n8));
        subst.insert(Var::new("m"), Binding::Class(n5));
        assert!(!checks_pass(&eg, &subst, &[Check::dims("n", "m")]));
        let mut same = Subst::default();
        same.insert(Var::new("n"), Binding::Class(n8));
        same.insert(Var::new("m"), Binding::Class(n8));
        assert!(checks_pass(&eg, &same, &[Check::dims("n", "m")]));
    }
}
