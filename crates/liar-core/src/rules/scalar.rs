//! Scalar arithmetic identities (paper listing 3).
//!
//! Each identity is a pair of rules (left-to-right and right-to-left);
//! commutativity is its own inverse, so four identities yield seven rules.
//!
//! The inflating directions (`x → x+0`, `x → 1*x`, `x → x*1`) have a bare
//! variable on the left-hand side. Applied literally they would match
//! every e-class (including λs and extents); the paper scopes them to
//! numbers ("x and y are numbers"). Without a type system we scope them to
//! *scalar-like* classes: classes containing a constant, an array element,
//! a parameter use, a scalar operator, or a scalar-returning library call.

use std::sync::Arc;

use liar_egraph::{
    Applier, Binding, EGraph, Id, Pattern, Rewrite, SearchMatches, Searcher, Subst, Var,
};
use liar_ir::{ArrayAnalysis, ArrayLang, ArrayRewrite, LibFn};

use super::core_rules::AuxMemo;
use super::RuleConfig;

type AEGraph = EGraph<ArrayLang, ArrayAnalysis>;

/// A node spelling that evidences its class is a scalar (the predicate
/// [`scalar_like`] matches on, and the spelling [`ScalarIntroApplier`]
/// records on explained proof edges — one definition so the two can
/// never drift apart).
fn is_scalar_member(n: &ArrayLang) -> bool {
    match n {
        ArrayLang::Const(_)
        | ArrayLang::Var(_)
        | ArrayLang::Get(_)
        | ArrayLang::Add(_)
        | ArrayLang::Sub(_)
        | ArrayLang::Mul(_)
        | ArrayLang::Div(_) => true,
        ArrayLang::Call(f, _) => matches!(f, LibFn::Dot | LibFn::TSum),
        _ => false,
    }
}

fn scalar_like(egraph: &AEGraph, id: Id) -> bool {
    // A class whose value has a known array extent is definitely not a
    // scalar, whatever nodes congruence has pulled into it.
    if egraph.data(id).extent.is_some() {
        return false;
    }
    egraph[id].iter().any(is_scalar_member)
}

/// Matches every scalar-like e-class, binding `?x` to it.
///
/// The candidate universe is the memoized list of scalar-like classes —
/// shared across the three intro rules, which gate on the same predicate.
/// Universe membership can change in both directions (a class gains a
/// scalar member through a merge, or stops being scalar-like when its
/// extent is refined), but either change is recorded as delta-index dirt,
/// so a cached class that leaves the universe is always simultaneously
/// re-dirtied and its stale entry evicted rather than replayed.
struct ScalarClassSearcher {
    cands: Arc<AuxMemo>,
}

impl ScalarClassSearcher {
    fn candidates(&self, egraph: &AEGraph) -> Arc<Vec<Id>> {
        self.cands.get(egraph, || {
            // One pass over the class table (avoiding a by-id lookup per
            // class), sorted afterwards: this runs every iteration.
            let mut out: Vec<Id> = egraph
                .classes()
                .filter(|c| c.data.extent.is_none() && c.iter().any(is_scalar_member))
                .map(|c| c.id)
                .collect();
            out.sort_unstable();
            out
        })
    }
}

impl Searcher<ArrayLang, ArrayAnalysis> for ScalarClassSearcher {
    fn search(&self, egraph: &AEGraph, limit: usize) -> Vec<SearchMatches<ArrayLang>> {
        let mut out = Vec::new();
        let mut total = 0;
        for id in egraph.class_ids() {
            if total >= limit {
                break;
            }
            let substs = self.search_class(egraph, id, limit - total);
            if substs.is_empty() {
                continue;
            }
            total += substs.len();
            out.push(SearchMatches::new(id, substs));
        }
        out
    }

    fn can_search_per_class(&self) -> bool {
        true
    }

    fn search_class(&self, egraph: &AEGraph, class: Id, limit: usize) -> Vec<Subst<ArrayLang>> {
        if limit == 0 || !scalar_like(egraph, class) {
            return vec![];
        }
        let mut s = Subst::default();
        s.insert(Var::new("x"), Binding::Class(class));
        vec![s]
    }

    fn candidate_class_ids(&self, egraph: &AEGraph) -> Option<Vec<Id>> {
        if !egraph.is_clean() {
            return None;
        }
        Some(self.candidates(egraph).to_vec())
    }

    fn delta_depth(&self) -> Option<u32> {
        // `scalar_like` inspects only the class's own nodes and analysis
        // data; both kinds of change are recorded as delta-index dirt.
        Some(1)
    }

    fn min_class_yield(&self, _egraph: &AEGraph) -> usize {
        // Every class in the candidate universe is scalar-like on the
        // snapshot the plan is built against, so each scan yields exactly
        // one substitution.
        1
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("x")]
    }
}

/// Right-hand-side shape of one inflating scalar identity.
#[derive(Clone, Copy)]
enum IntroShape {
    /// `x → x + 0`.
    AddZero,
    /// `x → 1 * x`.
    MulOneL,
    /// `x → x * 1`.
    MulOneR,
}

/// Applier for the inflating identities. Without explanations it is
/// exactly the right-hand-side pattern; with explanations it spells the
/// matched class as one of its *scalar-like* member nodes — the evidence
/// the searcher matched on — so the recorded proof step replays against
/// [`ScalarClassSearcher`]'s gate (the class's creation term may well be a
/// non-scalar spelling such as an `ifold`).
struct ScalarIntroApplier {
    shape: IntroShape,
    rhs: Pattern<ArrayLang>,
}

impl Applier<ArrayLang, ArrayAnalysis> for ScalarIntroApplier {
    fn apply(&self, egraph: &mut AEGraph, class: Id, subst: &Subst<ArrayLang>) -> Vec<Id> {
        if !egraph.are_explanations_enabled() {
            return self.rhs.apply(egraph, class, subst);
        }
        let member = egraph[class].iter().find(|n| is_scalar_member(n)).cloned();
        let lhs = match member {
            Some(node) => egraph.add(node),
            None => class,
        };
        let rhs = match self.shape {
            IntroShape::AddZero => {
                let zero = egraph.add(ArrayLang::num(0.0));
                egraph.add(ArrayLang::Add([lhs, zero]))
            }
            IntroShape::MulOneL => {
                let one = egraph.add(ArrayLang::num(1.0));
                egraph.add(ArrayLang::Mul([one, lhs]))
            }
            IntroShape::MulOneR => {
                let one = egraph.add(ArrayLang::num(1.0));
                egraph.add(ArrayLang::Mul([lhs, one]))
            }
        };
        let (id, changed) = egraph.union(lhs, rhs);
        if changed {
            vec![id]
        } else {
            vec![]
        }
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("x")]
    }
}

fn intro(name: &str, shape: IntroShape, rhs: &str, cands: Arc<AuxMemo>) -> ArrayRewrite {
    Rewrite::new(
        name,
        ScalarClassSearcher { cands },
        ScalarIntroApplier {
            shape,
            rhs: rhs.parse::<Pattern<ArrayLang>>().unwrap(),
        },
    )
}

/// The scalar rules of listing 3 (E-ADDZERO, E-MULONEL, E-MULONER,
/// E-COMMUTEMUL as directional rewrites).
pub fn scalar_rules(config: &RuleConfig) -> Vec<ArrayRewrite> {
    let mut rules = vec![
        Rewrite::from_patterns("add-zero", "(+ ?x 0)", "?x"),
        Rewrite::from_patterns("mul-one-l", "(* 1 ?x)", "?x"),
        Rewrite::from_patterns("mul-one-r", "(* ?x 1)", "?x"),
        Rewrite::from_patterns("commute-mul", "(* ?x ?y)", "(* ?y ?x)"),
    ];
    if config.scalar_intro {
        // One memo for the three rules: they scan the same universe.
        let cands = Arc::new(AuxMemo::default());
        let rule = |name, shape, rhs| intro(name, shape, rhs, Arc::clone(&cands));
        rules.push(rule("intro-add-zero", IntroShape::AddZero, "(+ ?x 0)"));
        rules.push(rule("intro-mul-one-l", IntroShape::MulOneL, "(* 1 ?x)"));
        rules.push(rule("intro-mul-one-r", IntroShape::MulOneR, "(* ?x 1)"));
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use liar_egraph::Runner;
    use liar_ir::{ArrayEGraph, Expr};

    fn e(s: &str) -> Expr {
        s.parse().unwrap()
    }

    #[test]
    fn add_zero_simplifies() {
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(&e("(+ (get xs i) 0)"));
        let mut runner = Runner::new(eg).with_iter_limit(3);
        runner.run(&scalar_rules(&RuleConfig::default()));
        assert_eq!(
            runner.egraph.lookup_expr(&e("(get xs i)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn mul_one_both_sides() {
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(&e("(* 1 (* (get xs i) 1))"));
        let mut runner = Runner::new(eg).with_iter_limit(3);
        runner.run(&scalar_rules(&RuleConfig::default()));
        assert_eq!(
            runner.egraph.lookup_expr(&e("(get xs i)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn intro_creates_latent_forms() {
        // The §V.A chain starts by rewriting xs[•1] to xs[•1] * 1.
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(&e("(get xs %1)"));
        let mut runner = Runner::new(eg).with_iter_limit(2);
        runner.run(&scalar_rules(&RuleConfig::default()));
        assert_eq!(
            runner.egraph.lookup_expr(&e("(* (get xs %1) 1)")),
            Some(runner.egraph.find(root))
        );
        assert_eq!(
            runner.egraph.lookup_expr(&e("(+ (get xs %1) 0)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn intro_skips_non_scalar_classes() {
        let mut eg = ArrayEGraph::default();
        let lam = eg.add_expr(&e("(lam %0)"));
        let dim = eg.add_expr(&e("#8"));
        let mut runner = Runner::new(eg).with_iter_limit(2);
        runner.run(&scalar_rules(&RuleConfig::default()));
        // λ and extent classes must not grow scalar wrappers.
        for id in [lam, dim] {
            let class = &runner.egraph[id];
            assert!(
                class.iter().all(|n| !matches!(n, ArrayLang::Add(_) | ArrayLang::Mul(_))),
                "non-scalar class got scalar nodes"
            );
        }
    }

    #[test]
    fn commutativity_saturates() {
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(&e("(* (get a i) (get b i))"));
        let mut runner = Runner::new(eg).with_iter_limit(4);
        runner.run(&scalar_rules(&RuleConfig {
            scalar_intro: false,
            ..RuleConfig::default()
        }));
        assert_eq!(
            runner.egraph.lookup_expr(&e("(* (get b i) (get a i))")),
            Some(runner.egraph.find(root))
        );
        assert_eq!(runner.stop_reason, Some(liar_egraph::StopReason::Saturated));
    }
}
