//! Scalar arithmetic identities (paper listing 3).
//!
//! Each identity is a pair of rules (left-to-right and right-to-left);
//! commutativity is its own inverse, so four identities yield seven rules.
//!
//! The inflating directions (`x → x+0`, `x → 1*x`, `x → x*1`) have a bare
//! variable on the left-hand side. Applied literally they would match
//! every e-class (including λs and extents); the paper scopes them to
//! numbers ("x and y are numbers"). Without a type system we scope them to
//! *scalar-like* classes: classes containing a constant, an array element,
//! a parameter use, a scalar operator, or a scalar-returning library call.

use liar_egraph::{
    Binding, EGraph, Id, Pattern, Rewrite, SearchMatches, Searcher, Subst, Var,
};
use liar_ir::{ArrayAnalysis, ArrayLang, ArrayRewrite, LibFn};

use super::RuleConfig;

type AEGraph = EGraph<ArrayLang, ArrayAnalysis>;

fn scalar_like(egraph: &AEGraph, id: Id) -> bool {
    // A class whose value has a known array extent is definitely not a
    // scalar, whatever nodes congruence has pulled into it.
    if egraph.data(id).extent.is_some() {
        return false;
    }
    egraph[id].iter().any(|n| match n {
        ArrayLang::Const(_)
        | ArrayLang::Var(_)
        | ArrayLang::Get(_)
        | ArrayLang::Add(_)
        | ArrayLang::Sub(_)
        | ArrayLang::Mul(_)
        | ArrayLang::Div(_) => true,
        ArrayLang::Call(f, _) => matches!(f, LibFn::Dot | LibFn::TSum),
        _ => false,
    })
}

/// Matches every scalar-like e-class, binding `?x` to it.
struct ScalarClassSearcher;

impl Searcher<ArrayLang, ArrayAnalysis> for ScalarClassSearcher {
    fn search(&self, egraph: &AEGraph, limit: usize) -> Vec<SearchMatches<ArrayLang>> {
        let mut out = Vec::new();
        let mut total = 0;
        for id in egraph.class_ids() {
            if total >= limit {
                break;
            }
            if !scalar_like(egraph, id) {
                continue;
            }
            let mut s = Subst::default();
            s.insert(Var::new("x"), Binding::Class(id));
            out.push(SearchMatches {
                class: id,
                substs: vec![s],
            });
            total += 1;
        }
        out
    }

    fn bound_vars(&self) -> Vec<Var> {
        vec![Var::new("x")]
    }
}

fn intro(name: &str, rhs: &str) -> ArrayRewrite {
    Rewrite::new(
        name,
        ScalarClassSearcher,
        rhs.parse::<Pattern<ArrayLang>>().unwrap(),
    )
}

/// The scalar rules of listing 3 (E-ADDZERO, E-MULONEL, E-MULONER,
/// E-COMMUTEMUL as directional rewrites).
pub fn scalar_rules(config: &RuleConfig) -> Vec<ArrayRewrite> {
    let mut rules = vec![
        Rewrite::from_patterns("add-zero", "(+ ?x 0)", "?x"),
        Rewrite::from_patterns("mul-one-l", "(* 1 ?x)", "?x"),
        Rewrite::from_patterns("mul-one-r", "(* ?x 1)", "?x"),
        Rewrite::from_patterns("commute-mul", "(* ?x ?y)", "(* ?y ?x)"),
    ];
    if config.scalar_intro {
        rules.push(intro("intro-add-zero", "(+ ?x 0)"));
        rules.push(intro("intro-mul-one-l", "(* 1 ?x)"));
        rules.push(intro("intro-mul-one-r", "(* ?x 1)"));
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use liar_egraph::Runner;
    use liar_ir::{ArrayEGraph, Expr};

    fn e(s: &str) -> Expr {
        s.parse().unwrap()
    }

    #[test]
    fn add_zero_simplifies() {
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(&e("(+ (get xs i) 0)"));
        let mut runner = Runner::new(eg).with_iter_limit(3);
        runner.run(&scalar_rules(&RuleConfig::default()));
        assert_eq!(
            runner.egraph.lookup_expr(&e("(get xs i)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn mul_one_both_sides() {
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(&e("(* 1 (* (get xs i) 1))"));
        let mut runner = Runner::new(eg).with_iter_limit(3);
        runner.run(&scalar_rules(&RuleConfig::default()));
        assert_eq!(
            runner.egraph.lookup_expr(&e("(get xs i)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn intro_creates_latent_forms() {
        // The §V.A chain starts by rewriting xs[•1] to xs[•1] * 1.
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(&e("(get xs %1)"));
        let mut runner = Runner::new(eg).with_iter_limit(2);
        runner.run(&scalar_rules(&RuleConfig::default()));
        assert_eq!(
            runner.egraph.lookup_expr(&e("(* (get xs %1) 1)")),
            Some(runner.egraph.find(root))
        );
        assert_eq!(
            runner.egraph.lookup_expr(&e("(+ (get xs %1) 0)")),
            Some(runner.egraph.find(root))
        );
    }

    #[test]
    fn intro_skips_non_scalar_classes() {
        let mut eg = ArrayEGraph::default();
        let lam = eg.add_expr(&e("(lam %0)"));
        let dim = eg.add_expr(&e("#8"));
        let mut runner = Runner::new(eg).with_iter_limit(2);
        runner.run(&scalar_rules(&RuleConfig::default()));
        // λ and extent classes must not grow scalar wrappers.
        for id in [lam, dim] {
            let class = &runner.egraph[id];
            assert!(
                class.iter().all(|n| !matches!(n, ArrayLang::Add(_) | ArrayLang::Mul(_))),
                "non-scalar class got scalar nodes"
            );
        }
    }

    #[test]
    fn commutativity_saturates() {
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(&e("(* (get a i) (get b i))"));
        let mut runner = Runner::new(eg).with_iter_limit(4);
        runner.run(&scalar_rules(&RuleConfig {
            scalar_intro: false,
            ..RuleConfig::default()
        }));
        assert_eq!(
            runner.egraph.lookup_expr(&e("(* (get b i) (get a i))")),
            Some(runner.egraph.find(root))
        );
        assert_eq!(runner.stop_reason, Some(liar_egraph::StopReason::Saturated));
    }
}
