//! Rule sets: language semantics (listing 2), scalar arithmetic
//! (listing 3), and library idioms (listings 4–5).

pub mod guard;
mod blas;
mod core_rules;
mod scalar;
mod torch;

pub use blas::blas_rules;
pub use core_rules::core_rules;
pub use scalar::scalar_rules;
pub use torch::torch_rules;

pub use self::CandidateSet as IntroCandidates;

use liar_ir::ArrayRewrite;

/// The three rule-set targets evaluated in the paper (§VI, "targets").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Target {
    /// Core and scalar rules only; extraction never selects library calls.
    PureC,
    /// Core, scalar and BLAS idiom rules.
    Blas,
    /// Core, scalar and PyTorch idiom rules.
    Torch,
}

impl Target {
    /// All targets, in the paper's order.
    pub const ALL: [Target; 3] = [Target::PureC, Target::Blas, Target::Torch];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Target::PureC => "pure-c",
            Target::Blas => "blas",
            Target::Torch => "pytorch",
        }
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Configuration for the rules whose right-hand sides contain free
/// variables (paper §IV.B.4).
///
/// The paper instantiates such rules with *every* e-class; that semantics
/// is available via [`RuleConfig::exhaustive`], while the default bounds
/// the candidate sets to the classes that can actually participate in the
/// idiom chains (see ARCHITECTURE.md, "Engineering deviations").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleConfig {
    /// Which classes `R-IntroLambda` abstracts over.
    pub intro_lambda: CandidateSet,
    /// Instantiate the tuple intro rules over all classes rather than the
    /// components already occurring under tuples.
    pub exhaustive_tuples: bool,
    /// Enable the expression-inflating directions of the scalar identities
    /// (`x → x+0`, `x → 1*x`, `x → x*1`).
    pub scalar_intro: bool,
}

/// Candidate sets for `R-IntroLambda`'s matched class `e` (the expression
/// being wrapped in `(λ e↑) y`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateSet {
    /// Classes containing a float constant or a library call — the
    /// §IV.C.2 / §V.A constant-array chains (`1 → (build n (λ 1))[i]`)
    /// plus the zero-matrix rows that gemm recognition needs
    /// (`memset(0) → (build n (λ memset(0)↑))[i]`, the paper's doitgen
    /// solution). The fast default.
    #[default]
    ConstantsAndCalls,
    /// Constants plus inputs, array elements and library calls.
    ValueLike,
    /// Every e-class (the paper's §IV.B.4 semantics; explosive).
    All,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            intro_lambda: CandidateSet::ConstantsAndCalls,
            exhaustive_tuples: false,
            scalar_intro: true,
        }
    }
}

impl RuleConfig {
    /// The paper-faithful, unbounded instantiation strategy.
    pub fn exhaustive() -> Self {
        RuleConfig {
            intro_lambda: CandidateSet::All,
            exhaustive_tuples: true,
            scalar_intro: true,
        }
    }

    /// A stable hash of this configuration — the "which rules were
    /// enabled, instantiated how" component of a request fingerprint
    /// (see [`crate::fingerprint`]).
    ///
    /// Together with a target list this pins the ruleset
    /// [`rules_for_targets`] would build: rule *definitions* are part of
    /// the crate itself, so within one process (the lifetime of the
    /// in-memory saturation cache) equal fingerprints imply identical
    /// rulesets.
    pub fn fingerprint(&self) -> u64 {
        let mut h = liar_ir::StableHasher::new();
        h.byte(match self.intro_lambda {
            CandidateSet::ConstantsAndCalls => 0,
            CandidateSet::ValueLike => 1,
            CandidateSet::All => 2,
        });
        h.byte(self.exhaustive_tuples as u8);
        h.byte(self.scalar_intro as u8);
        h.finish() as u64
    }
}

/// The complete rule set for a target: core + scalar (+ idioms).
pub fn rules_for(target: Target, config: &RuleConfig) -> Vec<ArrayRewrite> {
    let mut rules = core_rules(config);
    rules.extend(scalar_rules(config));
    match target {
        Target::PureC => {}
        Target::Blas => rules.extend(blas_rules()),
        Target::Torch => rules.extend(torch_rules()),
    }
    rules
}

/// The union of several targets' rule sets, deduplicated by rule name —
/// the rule set of the "saturate once, extract everywhere" pipeline
/// ([`crate::Liar::optimize_multi`]).
///
/// Core and scalar rules are shared by every target, and the idiom sets
/// deliberately share some rules under the same name (`idiom-dot`,
/// `idiom-transpose` are identical in BLAS and PyTorch); keeping one copy
/// of each name preserves the backoff scheduler's per-rule match budgets,
/// so a union run treats a shared rule exactly as a single-target run
/// does.
pub fn rules_for_targets(targets: &[Target], config: &RuleConfig) -> Vec<ArrayRewrite> {
    let mut rules = core_rules(config);
    rules.extend(scalar_rules(config));
    for &target in targets {
        let idioms = match target {
            Target::PureC => Vec::new(),
            Target::Blas => blas_rules(),
            Target::Torch => torch_rules(),
        };
        for rule in idioms {
            if rules.iter().all(|r| r.name() != rule.name()) {
                rules.push(rule);
            }
        }
    }
    rules
}

/// Every shipped ruleset, individually named — the enumeration the
/// e-matching differential tests sweep so that the compiled VM is proven
/// equivalent to the oracle matcher on each of them. The guard module's
/// dimension checks ride along inside the blas/torch rules' appliers
/// (their searchers are ordinary patterns).
pub fn named_rulesets(config: &RuleConfig) -> Vec<(&'static str, Vec<ArrayRewrite>)> {
    vec![
        ("core", core_rules(config)),
        ("scalar", scalar_rules(config)),
        ("blas", blas_rules()),
        ("torch", torch_rules()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_counts_match_the_paper() {
        let config = RuleConfig::default();
        // Listing 2: eight core rules.
        assert_eq!(core_rules(&config).len(), 8);
        // Listing 3: four identities, two directions each — minus the
        // self-inverse commutativity pair collapsing into one rule.
        assert_eq!(scalar_rules(&config).len(), 7);
    }

    #[test]
    fn rule_names_are_unique_per_target() {
        for target in Target::ALL {
            let rules = rules_for(target, &RuleConfig::default());
            let mut names: Vec<_> = rules.iter().map(|r| r.name().to_string()).collect();
            names.sort();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate rule names in {target}");
        }
    }

    #[test]
    fn union_ruleset_dedupes_shared_idioms() {
        let config = RuleConfig::default();
        let union = rules_for_targets(&Target::ALL, &config);
        let mut names: Vec<_> = union.iter().map(|r| r.name().to_string()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "union ruleset has duplicate names");
        // The union contains every single-target rule…
        for target in Target::ALL {
            for rule in rules_for(target, &config) {
                assert!(
                    union.iter().any(|r| r.name() == rule.name()),
                    "union is missing {}",
                    rule.name()
                );
            }
        }
        // …and nothing else: shared idioms are counted once.
        let blas = rules_for(Target::Blas, &config).len();
        let torch_only = torch_rules()
            .iter()
            .filter(|t| blas_rules().iter().all(|b| b.name() != t.name()))
            .count();
        assert_eq!(union.len(), blas + torch_only);
    }

    #[test]
    fn scalar_intro_can_be_disabled() {
        let config = RuleConfig {
            scalar_intro: false,
            ..RuleConfig::default()
        };
        assert_eq!(scalar_rules(&config).len(), 4);
    }
}
