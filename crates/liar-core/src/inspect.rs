//! Growth introspection: who built the e-graph, and what is it made of.
//!
//! An [`InspectReport`] is the pipeline's answer to "where did all these
//! e-nodes come from?". It folds two deterministic data sources into one
//! set of tables:
//!
//! - the **per-rule funnel** — candidates scheduled → substitutions
//!   found → applications that changed the graph, summed from the
//!   runner's per-step [`Iteration::searched`](liar_egraph::Iteration)
//!   / `applied` columns — joined with the e-graph's
//!   [`Attribution`](liar_egraph::Attribution) ledger (e-nodes and
//!   e-classes created, classes merged, per originating rule);
//! - the **composition by operator** — for every operator spelling in
//!   the final graph, how many e-nodes carry it and how many e-classes
//!   contain at least one such node.
//!
//! The report also re-states the attribution **conservation invariant**
//! ([`InspectReport::check`]): per-rule creations minus retirements and
//! merges must reproduce the final graph's node and class totals
//! *exactly*. Both inputs are bit-identical under the serial and
//! parallel engines, so the report is too.

use std::collections::BTreeMap;

use liar_egraph::{Analysis, Language, Runner};

/// One row of the per-rule growth funnel. Builtin origins
/// ([`Attribution::INIT`](liar_egraph::Attribution::INIT),
/// [`CONGRUENCE`](liar_egraph::Attribution::CONGRUENCE),
/// [`DIRECT`](liar_egraph::Attribution::DIRECT)) appear as rows with an
/// empty search funnel (they never search).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleRow {
    /// Rule name, or a parenthesized builtin origin.
    pub name: String,
    /// Candidate e-classes scheduled for matching, summed over steps.
    pub candidates: u64,
    /// Substitutions the search phase produced (post-limit, pre-apply).
    pub matches: u64,
    /// Applications that changed the e-graph.
    pub applied: u64,
    /// E-nodes this origin added (hash-cons hits charge nothing).
    pub nodes_created: u64,
    /// E-classes this origin created.
    pub classes_created: u64,
    /// Merges of two previously-distinct classes this origin caused.
    pub classes_merged: u64,
}

/// One row of the composition-by-operator table.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRow {
    /// The operator's display spelling ([`Language::display_op`]).
    pub op: String,
    /// E-nodes in the final graph carrying this operator.
    pub nodes: u64,
    /// E-classes containing at least one such node.
    pub classes: u64,
}

/// The introspection tables for one saturation — see the [module
/// docs](self). Built by [`InspectReport::from_runner`] after a run whose
/// e-graph had attribution enabled
/// ([`Liar::with_attribution`](crate::Liar::with_attribution)).
#[derive(Debug, Clone, PartialEq)]
pub struct InspectReport {
    /// The growth funnel, heaviest creators first (nodes created desc,
    /// then applications desc, then name) — a deterministic order.
    pub rules: Vec<RuleRow>,
    /// Final-graph composition, largest operators first (nodes desc,
    /// then name).
    pub ops: Vec<OpRow>,
    /// E-nodes in the final e-graph.
    pub n_nodes: usize,
    /// E-classes in the final e-graph.
    pub n_classes: usize,
    /// E-nodes retired by rebuild deduplication over the whole run.
    pub nodes_retired: u64,
    /// Saturation steps that ran.
    pub steps: usize,
}

impl InspectReport {
    /// Fold a saturated runner's iteration log and its e-graph's
    /// attribution ledger into the introspection tables.
    ///
    /// The funnel columns come from the runner's per-step records and are
    /// present even when attribution is disabled; the growth columns
    /// (`nodes_created` …) and the conservation identities need the
    /// ledger, so without it they are zero and [`check`](Self::check)
    /// reports the mismatch. Callers gate on
    /// [`EGraph::is_attribution_enabled`](liar_egraph::EGraph::is_attribution_enabled).
    pub fn from_runner<L: Language, A: Analysis<L>>(runner: &Runner<L, A>) -> InspectReport {
        let mut rows: BTreeMap<String, RuleRow> = BTreeMap::new();
        for iter in &runner.iterations {
            for (i, (name, applied)) in iter.applied.iter().enumerate() {
                let (candidates, matches) = iter.searched.get(i).copied().unwrap_or((0, 0));
                let row = rows.entry(name.clone()).or_insert_with(|| RuleRow {
                    name: name.clone(),
                    ..RuleRow::default()
                });
                row.candidates += candidates as u64;
                row.matches += matches as u64;
                row.applied += *applied as u64;
            }
        }

        let mut nodes_retired = 0;
        if let Some(attr) = runner.egraph.attribution() {
            nodes_retired = attr.nodes_retired();
            for (origin, counters) in attr.rows() {
                let row = rows.entry(origin.to_string()).or_insert_with(|| RuleRow {
                    name: origin.to_string(),
                    ..RuleRow::default()
                });
                row.nodes_created = counters.nodes_created;
                row.classes_created = counters.classes_created;
                row.classes_merged = counters.classes_merged;
            }
        }

        let mut rules: Vec<RuleRow> = rows.into_values().collect();
        rules.sort_by(|a, b| {
            b.nodes_created
                .cmp(&a.nodes_created)
                .then(b.applied.cmp(&a.applied))
                .then(a.name.cmp(&b.name))
        });

        let mut ops: BTreeMap<String, OpRow> = BTreeMap::new();
        for class in runner.egraph.classes() {
            let mut in_class: Vec<String> = Vec::new();
            for node in &class.nodes {
                let op = node.display_op();
                ops.entry(op.clone())
                    .or_insert_with(|| OpRow {
                        op: op.clone(),
                        nodes: 0,
                        classes: 0,
                    })
                    .nodes += 1;
                if !in_class.contains(&op) {
                    in_class.push(op);
                }
            }
            for op in in_class {
                ops.get_mut(&op).expect("op row just inserted").classes += 1;
            }
        }
        let mut ops: Vec<OpRow> = ops.into_values().collect();
        ops.sort_by(|a, b| b.nodes.cmp(&a.nodes).then(a.op.cmp(&b.op)));

        let report = InspectReport {
            rules,
            ops,
            n_nodes: runner.egraph.num_nodes(),
            n_classes: runner.egraph.num_classes(),
            nodes_retired,
            steps: runner.iterations.len(),
        };
        debug_assert!(
            runner.egraph.attribution().is_none() || report.check().is_ok(),
            "attribution conservation violated: {:?}",
            report.check()
        );
        report
    }

    /// Verify the conservation invariant from the report's own numbers:
    ///
    /// - `n_nodes + nodes_retired == Σ nodes_created`
    /// - `n_classes + Σ classes_merged == Σ classes_created`
    ///
    /// Every e-node and e-class in the final graph is charged to exactly
    /// one origin; nothing appears or disappears unaccounted.
    pub fn check(&self) -> Result<(), String> {
        let nodes_created: u64 = self.rules.iter().map(|r| r.nodes_created).sum();
        let classes_created: u64 = self.rules.iter().map(|r| r.classes_created).sum();
        let classes_merged: u64 = self.rules.iter().map(|r| r.classes_merged).sum();
        if self.n_nodes as u64 + self.nodes_retired != nodes_created {
            return Err(format!(
                "node conservation violated: {} live + {} retired != {} created",
                self.n_nodes, self.nodes_retired, nodes_created
            ));
        }
        if self.n_classes as u64 + classes_merged != classes_created {
            return Err(format!(
                "class conservation violated: {} live + {} merged != {} created",
                self.n_classes, classes_merged, classes_created
            ));
        }
        Ok(())
    }

    /// The funnel row for `name`, if present.
    pub fn rule(&self, name: &str) -> Option<&RuleRow> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// The composition row for operator spelling `op`, if present.
    pub fn op(&self, op: &str) -> Option<&OpRow> {
        self.ops.iter().find(|r| r.op == op)
    }

    /// Total e-nodes created across all origins.
    pub fn total_nodes_created(&self) -> u64 {
        self.rules.iter().map(|r| r.nodes_created).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, nodes_created: u64, classes_created: u64, classes_merged: u64) -> RuleRow {
        RuleRow {
            name: name.to_string(),
            nodes_created,
            classes_created,
            classes_merged,
            ..RuleRow::default()
        }
    }

    #[test]
    fn check_accepts_conserved_and_rejects_drift() {
        let mut report = InspectReport {
            rules: vec![row("(init)", 6, 6, 0), row("comm-add", 1, 1, 2)],
            ops: Vec::new(),
            n_nodes: 5,
            n_classes: 5,
            nodes_retired: 2,
            steps: 1,
        };
        report.check().expect("6+1 created = 5 live + 2 retired; 7 classes = 5 live + 2 merged");
        report.nodes_retired = 3;
        assert!(report.check().unwrap_err().contains("node conservation"));
        report.nodes_retired = 2;
        report.n_classes = 4;
        assert!(report.check().unwrap_err().contains("class conservation"));
    }

    #[test]
    fn lookup_helpers_find_rows() {
        let report = InspectReport {
            rules: vec![row("comm-add", 1, 1, 0)],
            ops: vec![OpRow {
                op: "+".to_string(),
                nodes: 3,
                classes: 2,
            }],
            n_nodes: 1,
            n_classes: 1,
            nodes_retired: 0,
            steps: 0,
        };
        assert_eq!(report.rule("comm-add").unwrap().nodes_created, 1);
        assert!(report.rule("nope").is_none());
        assert_eq!(report.op("+").unwrap().classes, 2);
        assert_eq!(report.total_nodes_created(), 1);
    }
}
