//! Machine profiles: per-request cost-model parameter sets.
//!
//! The paper's discount factors (listings 7–8) describe one nominal
//! machine. A [`MachineProfile`] re-weights the same model for different
//! hardware — scalar loops vs. vector calls vs. matrix calls, plus a
//! fixed per-call overhead — so one saturated e-graph can be *extracted*
//! under many machines ("saturate once, extract everywhere"): saturation
//! is profile-independent, only extraction reads the profile.
//!
//! The built-in profiles' factors are semi-arbitrary in the same spirit
//! as the paper's: chosen to order the alternatives plausibly, not
//! measured.

/// A named cost-model parameter set. The [`default`](MachineProfile::default)
/// profile is the identity: every factor 1, overhead 0, so costs are
/// bit-identical to the unprofiled model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// Stable name; the serve protocol and the fingerprint key on it.
    pub name: &'static str,
    /// Multiplier on the base model's scalar unit (loop iterations,
    /// scalar ops — every unit charge of listing 6).
    pub loop_scale: f64,
    /// Multiplier on vector library calls (`memset`, `dot`, `axpy`,
    /// `add`, `mul`, `sum`, `full`).
    pub vector_scale: f64,
    /// Multiplier on matrix library calls (`gemv`, `gemm`, `transpose`,
    /// `mv`, `mm`).
    pub matrix_scale: f64,
    /// Fixed cost added to every library call (dispatch / kernel-launch
    /// overhead), independent of the discount scale.
    pub call_overhead: f64,
}

impl Default for MachineProfile {
    fn default() -> Self {
        MachineProfile {
            name: "default",
            loop_scale: 1.0,
            vector_scale: 1.0,
            matrix_scale: 1.0,
            call_overhead: 0.0,
        }
    }
}

impl MachineProfile {
    /// All built-in profiles, in fingerprint-stable order.
    pub const ALL_NAMES: [&'static str; 3] = ["default", "gpu", "simd"];

    /// A GPU-ish machine: matrix kernels very cheap, vector kernels
    /// cheap, but every call pays a launch overhead and scalar host
    /// loops are dear.
    pub fn gpu() -> Self {
        MachineProfile {
            name: "gpu",
            loop_scale: 2.0,
            vector_scale: 0.5,
            matrix_scale: 0.25,
            call_overhead: 5.0,
        }
    }

    /// A SIMD CPU: vector calls cheap, matrix calls mildly cheaper,
    /// small call overhead, scalar loops at the nominal rate.
    pub fn simd() -> Self {
        MachineProfile {
            name: "simd",
            loop_scale: 1.0,
            vector_scale: 0.6,
            matrix_scale: 0.9,
            call_overhead: 0.5,
        }
    }

    /// Look up a built-in profile by its stable name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "default" => Some(MachineProfile::default()),
            "gpu" => Some(MachineProfile::gpu()),
            "simd" => Some(MachineProfile::simd()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_the_identity() {
        let p = MachineProfile::default();
        assert_eq!(p.loop_scale, 1.0);
        assert_eq!(p.vector_scale, 1.0);
        assert_eq!(p.matrix_scale, 1.0);
        assert_eq!(p.call_overhead, 0.0);
    }

    #[test]
    fn by_name_round_trips_every_builtin() {
        for name in MachineProfile::ALL_NAMES {
            let p = MachineProfile::by_name(name).unwrap();
            assert_eq!(p.name, name);
        }
        assert_eq!(MachineProfile::by_name("tpu"), None);
    }
}
